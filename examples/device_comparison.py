"""Compile one algorithm to every registered device and compare the outcomes.

Run with::

    python examples/device_comparison.py [--benchmark qaoa] [--qubits 6]

Shows how the same circuit fares on each of the five devices (IBM Montreal /
Washington, Rigetti Aspen-M-2, IonQ Harmony, OQC Lucy) when compiled with the
Qiskit-style O3 baseline, and what an RL compiler that is free to pick its
own device chooses.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    Predictor,
    benchmark_circuit,
    benchmark_suite,
    compile_qiskit_style,
    expected_fidelity,
    get_device,
    list_devices,
)
from repro.reward import critical_depth_reward
from repro.rl import PPOConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="qaoa")
    parser.add_argument("--qubits", type=int, default=6)
    parser.add_argument("--steps", type=int, default=4000)
    args = parser.parse_args()

    circuit = benchmark_circuit(args.benchmark, args.qubits)
    print(f"Benchmark circuit: {circuit.summary()}\n")

    print(f"{'device':<22}{'qubits':>8}{'2q gates':>10}{'depth':>8}{'fidelity':>10}{'1-critdep':>11}")
    for device_name in list_devices():
        device = get_device(device_name)
        if device.num_qubits < args.qubits:
            print(f"{device_name:<22}{device.num_qubits:>8}{'too small':>30}")
            continue
        compiled = compile_qiskit_style(circuit, device, optimization_level=3).circuit
        print(
            f"{device_name:<22}{device.num_qubits:>8}"
            f"{compiled.num_two_qubit_gates():>10}{compiled.depth():>8}"
            f"{expected_fidelity(compiled, device):>10.4f}"
            f"{critical_depth_reward(compiled, device):>11.4f}"
        )

    print("\nTraining an RL compiler that may pick its own device...")
    predictor = Predictor(
        reward="fidelity",
        max_steps=25,
        ppo_config=PPOConfig(n_steps=128, batch_size=64, n_epochs=4),
        seed=1,
    )
    predictor.train(benchmark_suite(2, args.qubits, step=2), total_timesteps=args.steps)
    result = predictor.compile(circuit)
    print(
        f"RL choice: {result.device.name} "
        f"(fidelity reward {result.reward:.4f}) via {len(result.actions)} actions"
    )
    print("  actions:", " -> ".join(result.actions))


if __name__ == "__main__":
    main()
