"""Compile one algorithm to every registered device and compare the outcomes.

Run with::

    python examples/device_comparison.py [--benchmark qaoa] [--qubits 6]

Uses the batch compilation service to sweep the circuit over all five devices
(IBM Montreal / Washington, Rigetti Aspen-M-2, IonQ Harmony, OQC Lucy) with
the ``qiskit-o3`` backend, then trains an RL compiler that is free to pick its
own device and compiles through the same unified facade.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro import Predictor, benchmark_circuit, benchmark_suite, get_device, list_devices
from repro.rl import PPOConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="qaoa")
    parser.add_argument("--qubits", type=int, default=6)
    parser.add_argument("--steps", type=int, default=4000)
    args = parser.parse_args()

    circuit = benchmark_circuit(args.benchmark, args.qubits)
    print(f"Benchmark circuit: {circuit.summary()}\n")

    print(f"{'device':<22}{'qubits':>8}{'2q gates':>10}{'depth':>8}{'fidelity':>10}{'1-critdep':>11}")
    for device_name in list_devices():
        device = get_device(device_name)
        if device.num_qubits < args.qubits:
            print(f"{device_name:<22}{device.num_qubits:>8}{'too small':>30}")
            continue
        result = repro.compile(circuit, backend="qiskit-o3", device=device)
        compiled = result.circuit
        print(
            f"{device_name:<22}{device.num_qubits:>8}"
            f"{compiled.num_two_qubit_gates():>10}{compiled.depth():>8}"
            f"{result.scores['fidelity']:>10.4f}"
            f"{result.scores['critical_depth']:>11.4f}"
        )

    print("\nTraining an RL compiler that may pick its own device...")
    predictor = Predictor(
        reward="fidelity",
        max_steps=25,
        ppo_config=PPOConfig(n_steps=128, batch_size=64, n_epochs=4),
        seed=1,
    )
    predictor.train(benchmark_suite(2, args.qubits, step=2), total_timesteps=args.steps)
    result = repro.compile(circuit, backend=predictor)
    print(
        f"RL choice: {result.device.name} "
        f"(fidelity reward {result.reward:.4f}) via {len(result.actions)} actions"
    )
    print("  actions:", " -> ".join(result.actions))


if __name__ == "__main__":
    main()
