"""HTTP gateway demo: the multi-tenant public surface over the compile service.

Run with::

    python examples/gateway_demo.py

Starts an in-process :class:`repro.gateway.GatewayServer` on a loopback port
with three tenants — ``alice`` (weight 4), ``bob`` (weight 1, tightly
rate-limited) and an ``ops`` admin — and walks the whole public surface with
:class:`repro.gateway.GatewayClient`:

1. synchronous ``POST /v1/compile`` (QASM in, result JSON out);
2. asynchronous submit + job polling + the SSE progress stream;
3. per-tenant rate limiting (bob gets 429 + ``Retry-After``) and weighted
   fair share (alice's jobs overtake bob's on a saturated lane);
4. ``/v1/stats``, Prometheus ``/metrics`` and the admin drain flow.

The same server can be run standalone with ``python -m repro.gateway
--port 8080 --keys keys.json`` and exercised with curl; see the README's
"HTTP gateway" section for the matching commands.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import benchmark_circuit  # noqa: E402
from repro.circuit import to_qasm  # noqa: E402
from repro.gateway import (  # noqa: E402
    GatewayClient,
    GatewayError,
    GatewayServer,
    Tenant,
)
from repro.service import CompileService  # noqa: E402

TENANTS = [
    Tenant("alice", "alice-key", weight=4.0),
    Tenant("bob", "bob-key", weight=1.0, rate=2.0, burst=2),
    Tenant("ops", "ops-key", admin=True),
]


def main() -> None:
    circuit = benchmark_circuit("ghz", 5)

    with CompileService(max_workers=2) as service:
        with GatewayServer(service, tenants=TENANTS) as gateway:
            print(f"Gateway listening on {gateway.url}")
            alice = GatewayClient(gateway.url, api_key="alice-key")
            bob = GatewayClient(gateway.url, api_key="bob-key")
            ops = GatewayClient(gateway.url, api_key="ops-key")

            print("\n1. Synchronous compile (QASM in, result out):")
            result = alice.compile(to_qasm(circuit), "qiskit-o3", device="ibmq_washington")
            print(
                f"  reward {result.reward:.4f} ({result.reward_name}) "
                f"via {result.backend} in {result.wall_time * 1000:.0f}ms"
            )

            print("\n2. Async submit + SSE progress stream:")
            job_id = alice.submit(circuit, "tket-o2", device="ibmq_washington", seed=1)
            for event in alice.events(job_id):
                line = {k: v for k, v in event.items() if k not in ("job_id",)}
                print(f"  event: {line}")
            result = alice.result(job_id)
            print(f"  final reward {result.reward:.4f} via {result.backend}")

            print("\n3. Rate limiting — bob bursts past his 2-token bucket:")
            codes = []
            for n in range(6):
                try:
                    bob.submit(circuit, "qiskit-o1", seed=100 + n)
                    codes.append("202")
                except GatewayError as exc:
                    codes.append(f"{exc.status} (retry after {exc.retry_after:.0f}s)")
            print(f"  bob's responses: {codes}")

            print("\n4. Stats and metrics:")
            stats = ops.stats()
            print(f"  gateway counters: {stats['gateway']['counters']}")
            for name, share in stats["gateway"]["fair_share"]["tenants"].items():
                print(
                    f"  tenant {name}: {share['requests']} requests, "
                    f"virtual time {share['virtual_time']:.2f}"
                )
            metrics = [
                line
                for line in ops.metrics().splitlines()
                if line.startswith("repro_gateway_jobs")
            ]
            print("  /metrics excerpt:")
            for line in metrics:
                print(f"    {line}")

            print("\n5. Admin drain:")
            print(f"  healthz before: {ops.healthz()}")
            ops.drain(grace=10.0)
            print(f"  healthz after:  {ops.healthz()}")
            try:
                alice.compile(circuit, "qiskit-o1")
            except GatewayError as exc:
                print(f"  new work refused while draining: HTTP {exc.status} {exc.error_type}")


if __name__ == "__main__":
    main()
