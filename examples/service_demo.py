"""Compile-service demo: many clients, per-backend pools, one shared cache.

Run with::

    python examples/service_demo.py

Starts an in-process :class:`repro.service.CompileService`, has three
concurrent clients submit overlapping work, and prints the service metrics —
the overlap is served by the shared cache and in-flight coalescing instead of
being recompiled.  The second half shows the QoS surface (priorities,
deadlines, autoscale events) and the server-backed shared cache: two
*separate* services (as two processes would) share compilation results
through one :class:`repro.service.CacheServer`.

For a standalone server, run ``python -m repro.service --port 7707`` and
connect with ``ServiceClient(address=("127.0.0.1", 7707), authkey=...)`` —
the client code below is identical in both shapes.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import benchmark_suite  # noqa: E402
from repro.service import CacheServer, CompileService, ServiceClient  # noqa: E402

BACKENDS = ["qiskit-o3", "tket-o2", "qiskit-o3-iter"]


def run_client(service: CompileService, circuits, label: str) -> None:
    client = ServiceClient(service)
    futures = client.submit_many(circuits, backend=BACKENDS[0], device="ibmq_washington")
    for backend in BACKENDS[1:]:
        futures += client.submit_many(circuits, backend=backend, device="ibmq_washington")
    results = [future.result() for future in futures]
    best = max(results, key=lambda r: r.reward)
    print(
        f"  client {label}: {len(results)} results, "
        f"best {best.reward:.4f} via {best.backend} on {best.circuit.name}"
    )


def main() -> None:
    circuits = benchmark_suite(3, 5, step=1, names=["ghz", "qft", "wstate"])
    print(f"Workload: {len(circuits)} circuits x {len(BACKENDS)} backends x 3 clients")

    print("\n1. One service, three concurrent clients:")
    with CompileService(max_workers=2) as service:
        threads = [
            threading.Thread(target=run_client, args=(service, circuits, str(i)))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats()
        print(
            f"  service: {stats['submitted']} submitted, "
            f"{stats['cache_hits']} cache hits, {stats['coalesced']} coalesced, "
            f"mean latency {stats['latency']['mean_seconds'] * 1000:.1f}ms"
        )
        print(f"  lanes: {stats['lanes']}")
        print(f"  cache: {stats['cache']}")

    print("\n2. Quality of service — priorities, deadlines, autoscaling:")
    with CompileService(max_workers=4, autoscale_interval=0.05) as service:
        client = ServiceClient(service)
        batch = client.submit_many(
            circuits, backend="qiskit-o3", device="ibmq_washington", priority=0
        )
        urgent = client.submit(
            circuits[-1], "tket-o2", device="ibmq_washington", priority=10
        )
        cached_only = client.submit(
            circuits[0], "qiskit-o3-iter", device="ibmq_washington", deadline=0
        )
        expired = cached_only.result()
        print(
            f"  deadline=0 request expired without compiling: "
            f"succeeded={expired.succeeded}, "
            f"deadline_exceeded={expired.metadata.get('deadline_exceeded', False)}"
        )
        print(f"  urgent (priority 10) reward: {urgent.result().reward:.4f}")
        for future in batch:
            future.result()
        stats = service.stats()
        scaler = stats["autoscaler"]
        print(
            f"  autoscaler: {scaler['scale_ups']} scale-ups, "
            f"{scaler['scale_downs']} scale-downs, "
            f"{stats['deadline_exceeded']} deadline expiries"
        )

    print("\n3. Two services sharing one cache server (as two processes would):")
    with CacheServer(maxsize=1024) as server:
        with CompileService(store=server.store()) as first:
            first.submit(circuits[0], "qiskit-o3", device="ibmq_washington").result()
        with CompileService(store=server.store()) as second:
            result = second.submit(circuits[0], "qiskit-o3", device="ibmq_washington").result()
            print(
                f"  second service served from the cache server: "
                f"cached={result.metadata.get('cached', False)}"
            )
        print(f"  cache server counters: {server.stats()}")


if __name__ == "__main__":
    main()
