"""Reproduce the paper's Fig. 3-style comparison at a configurable scale.

Run with::

    python examples/train_and_compare.py [--steps 8000] [--max-qubits 8]

Trains one model per reward function, compares each against the Qiskit-O3 /
TKET-O2 baselines on the benchmark suite, and prints the headline
percentages, the reward-difference histograms (Figs. 3a-c) and the
per-benchmark tables (Figs. 3d-f), plus the Table I cross-model matrix.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.evaluation import (
    ExperimentConfig,
    format_histogram,
    format_per_benchmark,
    format_table1,
    run_experiment,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=6000, help="PPO timesteps per model")
    parser.add_argument("--min-qubits", type=int, default=2)
    parser.add_argument("--max-qubits", type=int, default=6)
    parser.add_argument("--qubit-step", type=int, default=2)
    args = parser.parse_args()

    config = ExperimentConfig(
        train_timesteps=args.steps,
        min_qubits=args.min_qubits,
        max_qubits=args.max_qubits,
        qubit_step=args.qubit_step,
    )
    print(
        f"Running experiment: {config.train_timesteps} timesteps/model, "
        f"{config.min_qubits}-{config.max_qubits} qubit circuits"
    )
    results = run_experiment(config)

    for reward_name, summary in results.summaries.items():
        print(f"\n{'=' * 70}\n{summary.format_table()}")
        print(format_histogram(results.histograms[reward_name]))
        print(format_per_benchmark(results.per_benchmark[reward_name]))

    print(f"\n{'=' * 70}")
    print(format_table1(results.table1))


if __name__ == "__main__":
    main()
