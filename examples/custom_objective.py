"""Train compilers for different optimization objectives and cross-evaluate them.

Run with::

    python examples/custom_objective.py [--steps 4000]

Reproduces the idea behind the paper's Table I at a small scale: train one
model per reward function (expected fidelity, critical depth, combination)
and evaluate every model under every metric.  The model trained for a metric
should be the best model for that metric.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import benchmark_circuit, benchmark_suite
from repro.core.training import TrainingConfig, train_all_models
from repro.evaluation import cross_model_rewards, format_table1
from repro.rl import PPOConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=4000)
    args = parser.parse_args()

    training_circuits = benchmark_suite(2, 5, step=1, names=["ghz", "dj", "qft", "wstate", "qaoa", "vqe"])
    print(f"Training 3 models ({args.steps} timesteps each) on {len(training_circuits)} circuits...")
    models = train_all_models(
        training_circuits,
        TrainingConfig(
            total_timesteps=args.steps,
            max_steps=25,
            seed=0,
            ppo=PPOConfig(n_steps=128, batch_size=64, n_epochs=4),
        ),
    )

    evaluation_circuits = [benchmark_circuit(name, 5) for name in ["ghz", "qft", "qaoa", "dj", "wstate"]]
    table = cross_model_rewards(models, evaluation_circuits)
    print()
    print(format_table1(table))

    print("\nPer-model compilation of a 5-qubit QAOA circuit:")
    circuit = benchmark_circuit("qaoa", 5)
    for reward_name, model in models.items():
        result = model.compile(circuit)
        print(
            f"  trained for {reward_name:<15}: device={result.device.name:<18} "
            f"reward={result.reward:.4f} 2q-gates={result.circuit.num_two_qubit_gates()}"
        )


if __name__ == "__main__":
    main()
