"""Quickstart: train a small RL compiler and compile a benchmark circuit.

Run with::

    python examples/quickstart.py

Trains a fidelity-optimized compiler with a small budget (about a minute),
then compiles a 5-qubit QFT and reports the chosen device, the applied pass
sequence, and the achieved expected fidelity compared against the
Qiskit-style and TKET-style baseline flows.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    Predictor,
    benchmark_circuit,
    benchmark_suite,
    compile_qiskit_style,
    compile_tket_style,
    expected_fidelity,
    get_device,
)
from repro.rl import PPOConfig


def main() -> None:
    print("Building training suite (2-6 qubit MQT-Bench-style circuits)...")
    training_circuits = benchmark_suite(2, 6, step=2)
    print(f"  {len(training_circuits)} circuits")

    print("Training the fidelity-optimized compiler (PPO, 5000 timesteps)...")
    predictor = Predictor(
        reward="fidelity",
        max_steps=25,
        ppo_config=PPOConfig(n_steps=128, batch_size=64, n_epochs=4),
        seed=0,
    )
    summary = predictor.train(training_circuits, total_timesteps=5000)
    print(
        f"  trained on {summary.episodes} episodes, "
        f"mean episode reward {summary.mean_episode_reward:.3f}"
    )

    circuit = benchmark_circuit("qft", 5)
    print(f"\nCompiling {circuit.name}: {circuit.summary()}")
    result = predictor.compile(circuit)
    print(f"  RL flow      : device={result.device.name}, reward={result.reward:.4f}")
    print(f"  pass sequence: {' -> '.join(result.actions)}")
    print(f"  compiled     : {result.circuit.summary()}")

    washington = get_device("ibmq_washington")
    qiskit = compile_qiskit_style(circuit, washington, optimization_level=3)
    tket = compile_tket_style(circuit, washington, optimization_level=2)
    print("\nBaselines (targeting ibmq_washington):")
    print(f"  Qiskit-style O3: fidelity={expected_fidelity(qiskit.circuit, washington):.4f}")
    print(f"  TKET-style  O2: fidelity={expected_fidelity(tket.circuit, washington):.4f}")


if __name__ == "__main__":
    main()
