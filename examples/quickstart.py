"""Quickstart: train a small RL compiler and compile through the unified facade.

Run with::

    python examples/quickstart.py

Trains a fidelity-optimized compiler with a small budget (about a minute),
registers it as the ``rl`` backend, then compiles a 5-qubit QFT with the RL
model, both highest-level preset backends, and the ``best-of`` meta-backend —
all through the same ``repro.compile()`` entry point.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro import Predictor, benchmark_circuit, benchmark_suite
from repro.rl import PPOConfig


def main() -> None:
    print("Building training suite (2-6 qubit MQT-Bench-style circuits)...")
    training_circuits = benchmark_suite(2, 6, step=2)
    print(f"  {len(training_circuits)} circuits")

    print("Training the fidelity-optimized compiler (PPO, 5000 timesteps)...")
    predictor = Predictor(
        reward="fidelity",
        max_steps=25,
        ppo_config=PPOConfig(n_steps=128, batch_size=64, n_epochs=4),
        seed=0,
    )
    summary = predictor.train(training_circuits, total_timesteps=5000)
    print(
        f"  trained on {summary.episodes} episodes, "
        f"mean episode reward {summary.mean_episode_reward:.3f}"
    )
    repro.register_backend("rl", predictor.as_backend(), overwrite=True)
    print(f"  registered backends: {', '.join(repro.list_backends())}")

    circuit = benchmark_circuit("qft", 5)
    print(f"\nCompiling {circuit.name}: {circuit.summary()}")
    for backend in ("rl", "qiskit-o3", "tket-o2", "best-of"):
        result = repro.compile(circuit, backend=backend, device="ibmq_washington")
        print(
            f"  {backend:<10}: device={result.device.name:<18} "
            f"fidelity={result.scores['fidelity']:.4f} "
            f"passes={len(result.actions)} wall={result.wall_time * 1000:.0f}ms"
        )

    result = repro.compile(circuit, backend="rl")
    print(f"\nRL pass sequence: {' -> '.join(result.actions)}")
    print(f"compiled circuit: {result.circuit.summary()}")


if __name__ == "__main__":
    main()
