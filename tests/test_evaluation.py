"""Unit tests for the evaluation harness (comparison, figures, tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import benchmark_suite
from repro.evaluation import (
    ComparisonRecord,
    compare_predictor,
    cross_model_rewards,
    format_histogram,
    format_per_benchmark,
    format_table1,
    per_benchmark_differences,
    reward_difference_histogram,
    summarize,
)
from repro.evaluation.experiment import ExperimentConfig, build_suite, default_config_from_env


def _synthetic_records() -> list[ComparisonRecord]:
    rng = np.random.default_rng(0)
    records = []
    for i, family in enumerate(["ghz", "qft", "dj"]):
        for width in (3, 5):
            rl = float(rng.uniform(0.5, 1.0))
            records.append(
                ComparisonRecord(
                    circuit_name=f"{family}_{width}",
                    benchmark=family,
                    num_qubits=width,
                    metric="fidelity",
                    rl_reward=rl,
                    qiskit_reward=rl - 0.1,
                    tket_reward=rl - 0.05 * (i + 1),
                )
            )
    return records


class TestComparisonRecords:
    def test_diffs(self):
        record = ComparisonRecord("ghz_3", "ghz", 3, "fidelity", 0.9, 0.7, 0.8)
        assert record.diff_vs_qiskit == pytest.approx(0.2)
        assert record.diff_vs_tket == pytest.approx(0.1)

    def test_summarize_fractions(self):
        records = _synthetic_records()
        summary = summarize(records)
        assert summary.num_circuits == len(records)
        assert summary.fraction_better_or_equal_qiskit == 1.0
        assert summary.fraction_better_or_equal_tket == 1.0
        assert summary.mean_diff_qiskit == pytest.approx(0.1)
        assert "Qiskit-O3" in summary.format_table()

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_compare_predictor_produces_record_per_circuit(self, trained_predictor):
        circuits = benchmark_suite(3, 3, step=1, names=["ghz", "dj"])
        records = compare_predictor(trained_predictor, circuits, baseline_device="ibmq_washington")
        assert len(records) == len(circuits)
        for record in records:
            assert 0.0 <= record.rl_reward <= 1.0
            assert 0.0 <= record.qiskit_reward <= 1.0
            assert 0.0 <= record.tket_reward <= 1.0
            assert record.metric == "fidelity"


class TestFigureData:
    def test_histogram_frequencies_sum_to_one(self):
        data = reward_difference_histogram(_synthetic_records(), bins=11)
        assert data.qiskit_frequencies.sum() == pytest.approx(1.0)
        assert data.tket_frequencies.sum() == pytest.approx(1.0)
        assert len(data.bin_centers) == 11

    def test_histogram_is_centered_on_positive_diffs(self):
        data = reward_difference_histogram(_synthetic_records(), bins=11)
        mean_center = float(np.sum(data.bin_centers * data.qiskit_frequencies))
        assert mean_center > 0

    def test_per_benchmark_means(self):
        data = per_benchmark_differences(_synthetic_records())
        assert data.benchmarks == ["dj", "ghz", "qft"]
        assert np.allclose(data.mean_diff_qiskit, 0.1)

    def test_format_histogram_text(self):
        text = format_histogram(reward_difference_histogram(_synthetic_records()))
        assert "qiskit" in text and "tket" in text

    def test_format_per_benchmark_text(self):
        text = format_per_benchmark(per_benchmark_differences(_synthetic_records()))
        assert "ghz" in text and "average" in text


class TestTable1:
    def test_cross_model_matrix_shape(self, trained_predictor):
        circuits = benchmark_suite(3, 3, step=1, names=["ghz"])
        table = cross_model_rewards({"fidelity": trained_predictor}, circuits)
        assert table.values.shape == (1, 1)
        assert 0.0 <= table.value("fidelity", "fidelity") <= 1.0
        assert "Model trained for" in format_table1(table)

    def test_diagonal_is_best_detection(self):
        from repro.evaluation.tables import CrossModelTable

        good = CrossModelTable(
            ["fidelity", "critical_depth"],
            ["fidelity", "critical_depth"],
            np.array([[0.9, 0.2], [0.5, 0.8]]),
        )
        bad = CrossModelTable(
            ["fidelity", "critical_depth"],
            ["fidelity", "critical_depth"],
            np.array([[0.4, 0.2], [0.5, 0.8]]),
        )
        assert good.diagonal_is_best()
        assert not bad.diagonal_is_best()


class TestExperimentConfig:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_STEPS", "1234")
        monkeypatch.setenv("REPRO_MAX_QUBITS", "9")
        config = default_config_from_env()
        assert config.train_timesteps == 1234
        assert config.max_qubits == 9

    def test_explicit_overrides_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_STEPS", "1234")
        config = default_config_from_env(train_timesteps=55)
        assert config.train_timesteps == 55

    def test_build_suite_respects_config(self):
        config = ExperimentConfig(min_qubits=3, max_qubits=4, qubit_step=1, benchmark_names=["ghz", "qft"])
        suite = build_suite(config)
        assert {c.metadata["benchmark"] for c in suite} == {"ghz", "qft"}
        assert all(3 <= c.num_qubits <= 4 for c in suite)
