"""Tests for the pipeline layer: PassManager scheduling and the AnalysisCache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.compilers import preset_pass_manager
from repro.core import CompilationEnv
from repro.features import feature_vector
from repro.passes import (
    BasePass,
    CXCancellation,
    DenseLayout,
    InverseCancellation,
    Optimize1qGatesDecomposition,
    PassContext,
)
from repro.passes.base import AnalysisDomain
from repro.pipeline import (
    AnalysisCache,
    PassManager,
    PassRunner,
    RepeatUntilStable,
    Stage,
)


class _CountingPass(BasePass):
    """Test pass: appends an X on qubit 0 up to ``limit`` times, then no-ops."""

    name = "counting"

    def __init__(self, limit: int):
        self.limit = limit
        self.calls = 0

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        self.calls += 1
        if circuit.size() >= self.limit:
            return circuit.copy()
        out = circuit.copy()
        out.x(0)
        return out


class TestFingerprint:
    def test_equal_structure_equal_fingerprint(self, bell_circuit):
        other = QuantumCircuit(2, name="differently-named")
        other.h(0)
        other.cx(0, 1)
        assert bell_circuit.fingerprint() == other.fingerprint()

    def test_mutation_invalidates(self, bell_circuit):
        before = bell_circuit.fingerprint()
        bell_circuit.x(1)
        assert bell_circuit.fingerprint() != before

    def test_copy_shares_fingerprint(self, bell_circuit):
        fp = bell_circuit.fingerprint()
        assert bell_circuit.copy().fingerprint() == fp

    def test_params_matter(self):
        a = QuantumCircuit(1)
        a.rz(0.5, 0)
        b = QuantumCircuit(1)
        b.rz(0.75, 0)
        assert a.fingerprint() != b.fingerprint()

    def test_batch_fingerprint_includes_name(self, bell_circuit):
        from repro.api.batch import circuit_fingerprint

        renamed = bell_circuit.copy(name="other")
        assert circuit_fingerprint(bell_circuit) != circuit_fingerprint(renamed)
        assert bell_circuit.fingerprint() == renamed.fingerprint()


class TestPassContext:
    def test_with_device_does_not_share_properties(self, washington):
        base = PassContext(properties={"layout_valid": True})
        derived = base.with_device(washington)
        derived.properties["layout_valid"] = False
        derived.properties["new_key"] = 1
        assert base.properties == {"layout_valid": True}

    def test_with_device_keeps_existing_entries(self, washington):
        base = PassContext(properties={"a": 1})
        assert base.with_device(washington).properties == {"a": 1}


class TestAnalysisCache:
    def test_feature_vector_cached_and_copied(self, ghz5):
        cache = AnalysisCache()
        first = cache.feature_vector(ghz5)
        second = cache.feature_vector(ghz5)
        assert cache.hits == 1 and cache.misses == 1
        assert np.array_equal(first, second)
        assert first is not second  # callers must not alias the cached array
        np.testing.assert_allclose(first, feature_vector(ghz5))

    def test_structurally_equal_circuits_share_entries(self, ghz5):
        cache = AnalysisCache()
        cache.feature_vector(ghz5)
        cache.feature_vector(ghz5.copy(name="twin"))
        assert cache.hits == 1

    def test_device_checks_keyed_per_device(self, ghz5, washington, montreal):
        cache = AnalysisCache()
        assert cache.gates_native(ghz5, washington) == washington.gates_native(ghz5)
        assert cache.gates_native(ghz5, montreal) == montreal.gates_native(ghz5)
        assert cache.misses == 2  # one entry per device
        cache.gates_native(ghz5, washington)
        assert cache.hits == 1

    def test_lru_eviction(self):
        cache = AnalysisCache(maxsize=2)
        circuits = []
        for i in range(3):
            c = QuantumCircuit(1, name=f"c{i}")
            c.rz(0.1 * (i + 1), 0)
            circuits.append(c)
            cache.active_qubits(c)
        assert len(cache) == 2
        cache.active_qubits(circuits[0])  # evicted → recomputed
        assert cache.misses == 4

    def test_carry_forward_preserved_domain(self, ghz5, washington):
        cache = AnalysisCache()
        runner = PassRunner(cache)
        assert cache.gates_native(ghz5, washington) is False  # h/cx are not native
        misses_before = cache.misses
        placed = runner.apply(DenseLayout(), ghz5, PassContext(device=washington))
        assert placed.fingerprint() != ghz5.fingerprint()
        # The layout pass declares NATIVE_GATES preserved: the check must be
        # served from the carried-forward entry without a recompute.
        assert cache.gates_native(placed, washington) is False
        assert cache.misses == misses_before
        assert washington.gates_native(placed) is False  # and it is actually true

    def test_carry_forward_not_applied_for_invalidated_domain(self, ghz5, washington):
        cache = AnalysisCache()
        runner = PassRunner(cache)
        cache.mapping_satisfied(ghz5, washington)
        misses_before = cache.misses
        placed = runner.apply(DenseLayout(), ghz5, PassContext(device=washington))
        cache.mapping_satisfied(placed, washington)  # MAPPING is invalidated by layout
        assert cache.misses == misses_before + 1

    def test_reward_cached_per_terminal_state(self, ghz5, washington):
        cache = AnalysisCache()
        calls = []

        def reward_fn(circuit, device):
            calls.append(circuit.fingerprint())
            return 0.75

        first = cache.reward(ghz5, washington, "fidelity", reward_fn)
        second = cache.reward(ghz5.copy(name="twin"), washington, "fidelity", reward_fn)
        assert first == second == 0.75
        assert len(calls) == 1  # fingerprint-keyed: the twin is a hit
        stats = cache.stats()
        assert stats["reward_evaluations"] == 1
        assert stats["reward_hits"] == 1

    def test_reward_keyed_by_name_and_device(self, ghz5, washington, montreal):
        cache = AnalysisCache()
        cache.reward(ghz5, washington, "fidelity", lambda c, d: 0.5)
        cache.reward(ghz5, washington, "critical_depth", lambda c, d: 0.6)
        cache.reward(ghz5, montreal, "fidelity", lambda c, d: 0.7)
        assert cache.stats()["reward_evaluations"] == 3
        assert cache.stats()["reward_hits"] == 0
        assert cache.reward(ghz5, washington, "fidelity", lambda c, d: -1.0) == 0.5

    def test_invalidates_is_complement_of_preserves(self):
        layout = DenseLayout()
        assert AnalysisDomain.NATIVE_GATES in layout.preserves
        assert AnalysisDomain.NATIVE_GATES not in layout.invalidates
        assert layout.preserves | layout.invalidates == AnalysisDomain.ALL
        assert AnalysisDomain.MAPPING not in Optimize1qGatesDecomposition().invalidates
        # Default: a pass preserves nothing, so it invalidates every domain.
        assert InverseCancellation().invalidates == AnalysisDomain.ALL

    def test_pass_sequence_preserves_intersection(self):
        from repro.passes import PassSequence

        seq = PassSequence([DenseLayout(), Optimize1qGatesDecomposition()])
        assert seq.preserves == frozenset()  # {NATIVE_GATES} ∩ {MAPPING}
        only_layouts = PassSequence([DenseLayout(), DenseLayout()])
        assert only_layouts.preserves == frozenset({AnalysisDomain.NATIVE_GATES})

    def test_preserves_declarations_are_sound(self, random_4q, washington):
        # Spot-check the two non-trivial declarations against ground truth.
        context = PassContext(device=washington, seed=3)
        placed = DenseLayout().run(random_4q, context)
        assert washington.gates_native(placed) == washington.gates_native(random_4q)
        optimized = Optimize1qGatesDecomposition().run(placed, context)
        assert washington.mapping_satisfied(optimized) == washington.mapping_satisfied(placed)


class TestPassManager:
    def test_runs_stages_in_order_and_records_trace(self, random_4q):
        manager = PassManager(
            [
                Stage("one", (InverseCancellation(),)),
                Stage("two", (CXCancellation(),)),
            ]
        )
        trace: list[str] = []
        out = manager.run(random_4q, trace=trace)
        assert trace == ["inverse_cancellation", "cx_cancellation"]
        assert isinstance(out, QuantumCircuit)

    def test_conditional_stage_skipped(self, random_4q):
        manager = PassManager(
            [Stage("never", (InverseCancellation(),), condition=lambda c, ctx: False)]
        )
        trace: list[str] = []
        out = manager.run(random_4q, trace=trace)
        assert trace == []
        assert out is random_4q  # nothing ran

    def test_untraced_stage_executes_but_stays_off_trace(self):
        counting = _CountingPass(limit=100)
        manager = PassManager([Stage("hidden", (counting,), record_trace=False)])
        circuit = QuantumCircuit(1)
        trace: list[str] = []
        out = manager.run(circuit, trace=trace)
        assert trace == []
        assert counting.calls == 1
        assert out.size() == 1

    def test_describe_is_declarative_data(self):
        manager = preset_pass_manager("qiskit", 3)
        schedule = manager.describe()
        assert [entry["stage"] for entry in schedule] == [
            "pre_optimization",
            "synthesis",
            "layout",
            "routing",
            "post_optimization",
            "finalise",
        ]
        assert schedule[-1]["conditional"] and not schedule[-1]["record_trace"]
        assert "sabre_layout" in schedule[2]["passes"]

    def test_invalid_style_and_level_rejected(self):
        with pytest.raises(ValueError):
            preset_pass_manager("cirq", 1)
        with pytest.raises(ValueError):
            preset_pass_manager("tket", 3)

    def test_shared_manager_reproducible_across_calls(self, ghz5, washington):
        # One manager instance must give identical results for identical seeds
        # (passes draw RNG state from the context, never from instance state).
        manager = preset_pass_manager("qiskit", 3)
        runs = [
            manager.run(ghz5.copy(), PassContext(device=washington, seed=7))
            for _ in range(2)
        ]
        assert runs[0].fingerprint() == runs[1].fingerprint()


class TestRepeatUntilStable:
    def test_stops_at_fixed_point(self):
        counting = _CountingPass(limit=3)
        controller = RepeatUntilStable([counting], max_iterations=10)
        manager = PassManager([Stage("loop", (controller,))])
        circuit = QuantumCircuit(1)
        trace: list[str] = []
        out = manager.run(circuit, trace=trace)
        # 3 growth iterations + 1 confirming iteration, then stable.
        assert out.size() == 3
        assert counting.calls == 4
        assert trace == ["counting"] * 4

    def test_respects_max_iterations(self):
        counting = _CountingPass(limit=1000)
        controller = RepeatUntilStable([counting], max_iterations=2)
        controller.execute(QuantumCircuit(1), PassContext(), lambda p, c: p.run(c, PassContext()))
        assert counting.calls == 2

    def test_reaches_quiescence_on_real_passes(self, random_4q):
        controller = RepeatUntilStable(
            [InverseCancellation(), CXCancellation()], max_iterations=8
        )
        manager = PassManager([Stage("opt", (controller,))])
        out = manager.run(random_4q)
        once_more = InverseCancellation().run(out, PassContext())
        once_more = CXCancellation().run(once_more, PassContext())
        assert once_more.fingerprint() == out.fingerprint()

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            RepeatUntilStable([InverseCancellation()], max_iterations=0)


class TestEnvironmentCacheEquivalence:
    """The analysis cache must change speed only — never observations or flow."""

    def _rollout(self, circuit, *, use_cache: bool, actions=None):
        env = CompilationEnv(
            [circuit],
            reward="fidelity",
            device_name="ibmq_washington",
            max_steps=12,
            seed=5,
            use_analysis_cache=use_cache,
        )
        observation, _ = env.reset(seed=5)
        observations = [observation]
        rewards = []
        names = actions or [
            "synthesis_basis_translator",
            "optimize_optimize_1q_gates",
            "map_dense_layout_sabre_routing",
            "optimize_cx_cancellation",
            "terminate",
        ]
        for name in names:
            action = env.action_by_name(name)
            observation, reward, terminated, truncated, _info = env.step(action.index)
            observations.append(observation)
            rewards.append(reward)
            if terminated or truncated:
                break
        return observations, rewards, list(env.state.applied_actions)

    def test_observations_and_rewards_identical(self, ghz5):
        cached = self._rollout(ghz5, use_cache=True)
        uncached = self._rollout(ghz5, use_cache=False)
        for obs_cached, obs_uncached in zip(cached[0], uncached[0]):
            np.testing.assert_array_equal(obs_cached, obs_uncached)
        assert cached[1] == uncached[1]
        assert cached[2] == uncached[2]

    def test_cache_hits_accumulate_across_episodes(self, ghz5):
        env = CompilationEnv([ghz5], device_name="ibmq_washington", seed=1)
        for _ in range(3):
            env.reset()
            env.step(env.action_by_name("synthesis_basis_translator").index)
        assert env.analysis_cache is not None
        assert env.analysis_cache.hits > 0
        # The same initial circuit is re-analysed from cache on later episodes.
        assert env.analysis_cache.hit_rate > 0.3


class TestGreedyPolicyInvariance:
    def test_saved_predictor_greedy_sequence_unchanged_by_cache(
        self, trained_predictor, tmp_path, ghz5
    ):
        from repro.core import Predictor

        path = tmp_path / "model.json"
        trained_predictor.save(path)
        loaded = Predictor.load(path)

        def greedy_actions(use_cache: bool) -> list[str]:
            env = CompilationEnv(
                [ghz5],
                reward=loaded.reward_name,
                max_steps=loaded.max_steps,
                seed=loaded.seed,
                use_analysis_cache=use_cache,
            )
            observation, _ = env.reset(seed=loaded.seed)
            terminated = truncated = False
            while not (terminated or truncated):
                mask = env.action_masks()
                action = loaded._agent.predict(observation, mask, deterministic=True)
                if not mask[action]:
                    action = int(np.flatnonzero(mask)[0])
                observation, _reward, terminated, truncated, _info = env.step(action)
            return list(env.state.applied_actions)

        assert greedy_actions(True) == greedy_actions(False)
