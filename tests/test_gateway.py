"""Functional tests for the HTTP/JSON gateway subsystem."""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.bench import benchmark_circuit
from repro.circuit import to_qasm
from repro.gateway import (
    FairShareScheduler,
    GatewayClient,
    GatewayError,
    GatewayServer,
    Tenant,
    TenantRegistry,
    TokenBucket,
)
from repro.gateway.auth import AuthError, RateLimited
from repro.gateway.metrics import quantile
from repro.service import CompileService


@pytest.fixture(scope="module")
def ghz3():
    return benchmark_circuit("ghz", 3)


@pytest.fixture()
def service():
    with CompileService(max_workers=2) as svc:
        yield svc


TENANTS = [
    Tenant("alice", "alice-key", weight=4, rate=100.0, burst=100),
    Tenant("bob", "bob-key", weight=1, rate=100.0, burst=100),
    Tenant("ops", "ops-key", admin=True),
]


@pytest.fixture()
def gateway(service):
    with GatewayServer(service, tenants=list(TENANTS), sample_interval=0.2) as gw:
        yield gw


class TestAuthUnit:
    def test_registry_rejects_duplicate_names_and_keys(self):
        with pytest.raises(ValueError, match="duplicate tenant"):
            TenantRegistry([Tenant("a", "k1"), Tenant("a", "k2")])
        with pytest.raises(ValueError, match="reuses the API key"):
            TenantRegistry([Tenant("a", "k1"), Tenant("b", "k1")])

    def test_authenticate_unknown_key(self):
        registry = TenantRegistry([Tenant("a", "k1")])
        assert registry.authenticate("k1").name == "a"
        with pytest.raises(AuthError):
            registry.authenticate("k2")
        with pytest.raises(AuthError):
            registry.authenticate(None)

    def test_keyfile_round_trip(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            json.dumps(
                {
                    "tenants": [
                        {"name": "a", "key": "ka", "weight": 2, "rate": 5, "burst": 3},
                        {"name": "ops", "key": "kops", "admin": True},
                    ]
                }
            )
        )
        registry = TenantRegistry.from_file(path)
        assert registry.authenticate("ka").weight == 2
        assert registry.authenticate("kops").admin

    def test_keyfile_unknown_field_rejected(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps([{"name": "a", "key": "k", "color": "red"}]))
        with pytest.raises(ValueError, match="unknown keyfile fields"):
            TenantRegistry.from_file(path)

    def test_token_bucket_drains_and_refills(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2, clock=lambda: clock[0])
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        retry = bucket.acquire()
        assert retry > 0.0
        clock[0] += retry  # exactly one token refilled
        assert bucket.acquire() == 0.0

    def test_rate_limited_carries_retry_after(self):
        registry = TenantRegistry([Tenant("a", "k", rate=1.0, burst=1)])
        tenant = registry.authenticate("k")
        registry.check_rate(tenant)
        with pytest.raises(RateLimited) as excinfo:
            registry.check_rate(tenant)
        assert excinfo.value.retry_after > 0
        assert int(excinfo.value.header_value()) >= 1


class TestFairShareUnit:
    def test_heavy_tenant_gets_more_early_slots(self):
        sched = FairShareScheduler()
        order = []
        for _ in range(12):
            order.append(("heavy", sched.next_priority("heavy", 3.0)))
            order.append(("light", sched.next_priority("light", 1.0)))
        ranked = sorted(order, key=lambda pair: -pair[1])
        first_eight = [name for name, _ in ranked[:8]]
        assert first_eight.count("heavy") >= 5

    def test_equal_weights_alternate(self):
        sched = FairShareScheduler()
        a = [sched.next_priority("a", 1.0) for _ in range(3)]
        b = [sched.next_priority("b", 1.0) for _ in range(3)]
        # Same weights, same arrival counts: same priorities step for step.
        assert a == b

    def test_newcomer_overtakes_queued_backlog(self):
        # A hot tenant pre-queues a deep backlog; nothing has completed, so
        # the system clock is still 0 and a newcomer starts at the front,
        # not behind 100 queued requests — that is the no-starvation core.
        sched = FairShareScheduler()
        backlog = [sched.next_priority("hot", 1.0) for _ in range(100)]
        newcomer = sched.next_priority("fresh", 1.0)
        assert newcomer > min(backlog)
        assert newcomer == backlog[0]  # ties with the hot tenant's *first*

    def test_returning_idler_banks_no_credit(self):
        sched = FairShareScheduler()
        tickets = [sched.next_ticket("busy", 1.0) for _ in range(10)]
        for _priority, vtime in tickets:
            sched.complete(vtime)  # all of busy's work was served
        late = sched.next_priority("late", 1.0)
        busy_next = sched.next_priority("busy", 1.0)
        # The idler rejoins at the system clock (~vtime 9), tying with the
        # busy tenant's next request instead of jumping ahead of it by 10.
        assert abs(late - busy_next) <= sched.RESOLUTION
        assert late <= -9 * sched.RESOLUTION

    def test_hint_breaks_ties_but_not_shares(self):
        sched = FairShareScheduler()
        plain = sched.next_priority("a", 1.0, hint=0)
        hinted = sched.next_priority("b", 1.0, hint=3)
        assert hinted > plain  # same vtime, hint wins the tie
        far_behind = sched.next_priority("b", 1.0, hint=5)
        assert far_behind < plain  # a full share step dominates any hint

    def test_quantile_helper(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([1.0], 0.95) == 1.0
        assert quantile([1, 2, 3, 4, 5], 0.5) == 3


class TestJobClock:
    """Latency is measured on the monotonic clock, not wall-clock stamps.

    Regression: the gateway's done callback used to compute
    ``time.time() - job.created_at``, which goes negative (and poisons the
    latency histograms) when NTP steps the wall clock between creation and
    completion.
    """

    @staticmethod
    def _job():
        from concurrent.futures import Future

        from repro.gateway.jobs import Job

        return Job("job-test", "alice", "qiskit-o0", Future())

    @staticmethod
    def _result():
        from types import SimpleNamespace

        return SimpleNamespace(succeeded=True, error=None, metadata={})

    def test_elapsed_survives_wall_clock_step(self):
        job = self._job()
        # simulate NTP stepping the wall clock back one hour mid-request:
        # the creation stamp now sits in the future relative to time.time()
        job.created_at = time.time() + 3600.0
        job.finish(self._result())
        assert job.finished_at - job.created_at < 0  # wall-clock math is wrong
        assert 0.0 <= job.elapsed() < 60.0  # monotonic measurement is not
        assert 0.0 <= job.describe()["wall_seconds"] < 60.0

    def test_elapsed_of_unfinished_job_tracks_now(self):
        job = self._job()
        first = job.elapsed()
        time.sleep(0.01)
        assert job.elapsed() >= first >= 0.0

    def test_wall_stamps_remain_for_display(self):
        job = self._job()
        job.finish(self._result())
        described = job.describe()
        assert described["created_at"] == job.created_at
        assert described["finished_at"] == job.finished_at


class TestGatewayHTTP:
    def test_sync_compile_round_trip(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        result = client.compile(ghz3, backend="qiskit-o1", device="ibmq_washington")
        assert result.succeeded
        assert result.backend == "qiskit-o1"
        assert result.device is not None and result.device.name == "ibmq_washington"
        assert result.circuit.num_qubits >= 3

    def test_compile_accepts_raw_qasm(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        result = client.compile(to_qasm(ghz3), backend="qiskit-o0")
        assert result.succeeded

    def test_async_submit_poll_result(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        job_id = client.submit(ghz3, backend="qiskit-o1", device="ibmq_washington", seed=3)
        result = client.result(job_id, timeout=120)
        assert result.succeeded
        job = client.job(job_id)
        assert job["state"] == "done"
        assert job["tenant"] == "alice"
        assert job["wall_seconds"] >= 0

    def test_sse_event_stream(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        job_id = client.submit(ghz3, backend="tket-o1", device="ibmq_washington", seed=11)
        events = list(client.events(job_id, timeout=120))
        names = [event["event"] for event in events]
        assert names[0] == "queued"
        assert names[-1] == "done"
        done = events[-1]
        assert done["succeeded"] is True
        assert done["job_id"] == job_id

    def test_missing_api_key_is_401(self, gateway, ghz3):
        client = GatewayClient(gateway.url)
        with pytest.raises(GatewayError) as excinfo:
            client.compile(ghz3, backend="qiskit-o0")
        assert excinfo.value.status == 401
        assert excinfo.value.error_type == "auth_error"

    def test_bad_qasm_is_400_qasm_error(self, gateway):
        client = GatewayClient(gateway.url, api_key="alice-key")
        bad = 'OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nh q[5];\n'
        with pytest.raises(GatewayError) as excinfo:
            client.compile(bad, backend="qiskit-o0")
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "qasm_error"
        assert "out of range" in str(excinfo.value)

    def test_unknown_backend_is_400(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        with pytest.raises(GatewayError) as excinfo:
            client.compile(ghz3, backend="no-such-compiler")
        assert excinfo.value.status == 400

    def test_unknown_job_and_foreign_job_are_404(self, gateway, ghz3):
        alice = GatewayClient(gateway.url, api_key="alice-key")
        bob = GatewayClient(gateway.url, api_key="bob-key")
        job_id = alice.submit(ghz3, backend="qiskit-o0", seed=21)
        with pytest.raises(GatewayError) as excinfo:
            bob.job(job_id)
        assert excinfo.value.status == 404
        with pytest.raises(GatewayError) as excinfo:
            alice.job("job-999-deadbeef")
        assert excinfo.value.status == 404
        # Admins see every tenant's jobs.
        ops = GatewayClient(gateway.url, api_key="ops-key")
        assert ops.job(job_id)["tenant"] == "alice"

    def test_rate_limit_is_429_with_retry_after(self, service, ghz3):
        tenants = [Tenant("tiny", "tiny-key", rate=1.0, burst=2)]
        with GatewayServer(service, tenants=tenants, sample_interval=0) as gw:
            client = GatewayClient(gw.url, api_key="tiny-key")
            outcomes = []
            for seed in range(4):
                try:
                    client.submit(ghz3, backend="qiskit-o0", seed=seed)
                    outcomes.append("accepted")
                except GatewayError as exc:
                    outcomes.append((exc.status, exc.error_type))
                    assert exc.retry_after is not None and exc.retry_after >= 1
            assert outcomes[:2] == ["accepted", "accepted"]
            assert (429, "rate_limited") in outcomes

    def test_stats_and_metrics_endpoints(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        client.compile(ghz3, backend="qiskit-o1", device="ibmq_washington", priority=2)
        stats = client.stats()
        assert stats["gateway"]["counters"]["jobs_submitted"] >= 1
        assert stats["service"]["submitted"] >= 1
        assert stats["tenants"]["alice"]["served"] >= 1
        assert "tenant:alice" in stats["gateway"]["latency"]
        assert "priority:2" in stats["gateway"]["latency"]
        assert stats["gateway"]["fair_share"]["tenants"]["alice"]["requests"] >= 1
        # The sampler fills the ring-buffer time series.
        gateway.sampler.sample_once()
        series = client.stats()["timeseries"]
        assert series and {"time", "queue_depth", "cache_hit_rate"} <= set(series[-1])

        text = client.metrics()
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_requests_total" in text
        assert 'repro_gateway_tenant_served_total{tenant="alice"}' in text
        assert 'quantile="0.95"' in text
        assert "repro_gateway_ready 1" in text

    def test_healthz_ok(self, gateway):
        client = GatewayClient(gateway.url)
        health = client.healthz()  # healthz needs no auth
        assert health["status"] == "ok"
        assert health["ready"] is True
        assert health["service"]["status"] == "ok"

    def test_drain_flips_healthz_and_refuses_work(self, service, ghz3):
        tenants = [Tenant("a", "ka"), Tenant("ops", "kops", admin=True)]
        with GatewayServer(service, tenants=tenants, sample_interval=0) as gw:
            alice = GatewayClient(gw.url, api_key="ka")
            ops = GatewayClient(gw.url, api_key="kops")
            # Non-admins may not drain.
            with pytest.raises(GatewayError) as excinfo:
                alice.drain()
            assert excinfo.value.status == 403
            # Queue work, then drain: queued work finishes first.
            job_id = alice.submit(ghz3, backend="qiskit-o1", device="ibmq_washington", seed=31)
            status = ops.drain(grace=60)
            assert status["status"] in ("draining", "drained")
            deadline = time.monotonic() + 60
            while gw.state != "drained" and time.monotonic() < deadline:
                time.sleep(0.05)
            assert gw.state == "drained"
            # The queued job completed rather than being dropped.
            assert alice.result(job_id, timeout=60).succeeded
            health = alice.healthz()
            assert health["ready"] is False
            assert health["status"] == "drained"
            with pytest.raises(GatewayError) as excinfo:
                alice.compile(ghz3, backend="qiskit-o0", seed=99)
            assert excinfo.value.status == 503

    def test_open_mode_needs_no_key(self, service, ghz3):
        with GatewayServer(service, sample_interval=0) as gw:
            client = GatewayClient(gw.url)
            assert client.compile(ghz3, backend="qiskit-o0").succeeded
            assert "tenants" not in client.stats()

    def test_not_found_route(self, gateway):
        with pytest.raises(GatewayError) as excinfo:
            GatewayClient(gateway.url, api_key="alice-key")._request("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_bearer_token_auth_works(self, gateway):
        request = urllib.request.Request(gateway.url + "/v1/stats")
        request.add_header("Authorization", "Bearer alice-key")
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200

    def test_deadline_zero_gives_structured_failure(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        result = client.compile(ghz3, backend="qiskit-o1", seed=1234, deadline=0)
        assert not result.succeeded
        assert result.metadata.get("deadline_exceeded") is True


class TestPassCatalogAndOverrides:
    def test_passes_endpoint_serves_the_catalog(self, gateway):
        client = GatewayClient(gateway.url, api_key="alice-key")
        catalog = client.passes()
        names = {entry["name"] for entry in catalog}
        assert {"sabre_swap", "tket_routing", "basis_translator"} <= names
        assert all(
            set(entry) == {"name", "role", "origin", "requires_device"}
            for entry in catalog
        )

    def test_passes_endpoint_role_filter(self, gateway):
        client = GatewayClient(gateway.url, api_key="alice-key")
        routers = client.passes(role="routing")
        assert routers and all(entry["role"] == "routing" for entry in routers)
        with pytest.raises(GatewayError) as excinfo:
            client.passes(role="warp")
        assert excinfo.value.status == 400

    def test_compile_payload_pass_overrides(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        result = client.compile(
            ghz3,
            backend="qiskit-o3",
            pass_overrides={"routing": "tket-routing"},
        )
        assert result.succeeded
        assert "tket_routing" in result.actions
        assert "+routing=tket_routing" in result.backend

    def test_bad_override_is_a_400(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        with pytest.raises(GatewayError) as excinfo:
            client.compile(ghz3, backend="qiskit-o3", pass_overrides={"routing": "warp"})
        assert excinfo.value.status == 400
        assert "warp" in str(excinfo.value)

    def test_non_object_overrides_is_a_400(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        payload = {"qasm": to_qasm(ghz3), "backend": "qiskit-o3", "pass_overrides": ["routing"]}
        with pytest.raises(GatewayError) as excinfo:
            client._request("POST", "/v1/compile", payload)
        assert excinfo.value.status == 400


class TestObservabilityHTTP:
    def test_trace_id_round_trips_to_a_full_span_tree(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        job_id = client.submit(
            ghz3, backend="qiskit-o1", device="ibmq_washington",
            trace_id="trace-gw-0001",
        )
        payload = client.trace(job_id, timeout=60)
        assert payload["job_id"] == job_id
        assert payload["trace_id"] == "trace-gw-0001"
        tree = payload["trace"]
        assert tree["name"] == "gateway.request"
        assert tree["attrs"]["tenant"] == "alice"
        names, stack = set(), [tree]
        while stack:
            node = stack.pop()
            assert node["trace_id"] == "trace-gw-0001"
            names.add(node["name"])
            stack.extend(node.get("children") or [])
        assert {"service.request", "queue.wait", "lane.execute"} <= names
        assert any(name.startswith("stage.") for name in names)
        # The job description carries the id too.
        assert client.job(job_id)["trace_id"] == "trace-gw-0001"

    def test_every_response_echoes_a_trace_id(self, gateway):
        request = urllib.request.Request(gateway.url + "/healthz")
        request.add_header("X-Repro-Trace-Id", "trace-echo-42")
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["X-Repro-Trace-Id"] == "trace-echo-42"
        # A malformed inbound id is replaced with a freshly minted one, never
        # echoed back verbatim.
        request = urllib.request.Request(gateway.url + "/healthz")
        request.add_header("X-Repro-Trace-Id", "bad id with spaces")
        with urllib.request.urlopen(request, timeout=30) as response:
            echoed = response.headers["X-Repro-Trace-Id"]
            assert echoed and echoed != "bad id with spaces"

    def test_dashboard_is_self_contained(self, gateway):
        # No auth required for the static shell: its JS authenticates the
        # /v1/stats polls itself.
        with urllib.request.urlopen(gateway.url + "/dashboard", timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/html")
            html = response.read().decode()
        # Zero external asset fetches: every reference is same-origin.
        assert "http://" not in html and "https://" not in html
        assert "/v1/stats" in html
        assert "<script>" in html and "<style>" in html

    def test_latency_histogram_in_metrics(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        client.compile(ghz3, backend="qiskit-o0", device="ibmq_washington")
        text = client.metrics()
        assert "# TYPE repro_gateway_request_latency_seconds histogram" in text
        inf_counts, totals = {}, {}
        for line in text.splitlines():
            if line.startswith("repro_gateway_request_latency_seconds_bucket") and 'le="+Inf"' in line:
                label = line.split('label="')[1].split('"')[0]
                inf_counts[label] = float(line.rsplit(" ", 1)[1])
            if line.startswith("repro_gateway_request_latency_seconds_count"):
                label = line.split('label="')[1].split('"')[0]
                totals[label] = float(line.rsplit(" ", 1)[1])
        assert "tenant:alice" in inf_counts
        assert inf_counts == totals  # the +Inf bucket is the series total
        # The windowed quantile view survives under its new gauge name.
        assert "# TYPE repro_gateway_request_latency_quantile_seconds gauge" in text
        assert 'quantile="0.95"' in text

    def test_slow_request_log_feeds_stats(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        client.compile(ghz3, backend="qiskit-o0", device="ibmq_washington")
        slow = client.stats()["gateway"]["slow_requests"]
        assert slow, "completed request missing from the slow-request log"
        entry = slow[0]
        assert entry["trace_id"] and entry["tenant"] == "alice"
        assert entry["status"] == "ok"
        rows = entry["breakdown"]
        assert rows and rows[0]["name"] == "gateway.request"
        assert {"service.request", "queue.wait"} <= {row["name"] for row in rows}

    def test_sse_events_carry_the_trace_id(self, gateway, ghz3):
        client = GatewayClient(gateway.url, api_key="alice-key")
        job_id = client.submit(ghz3, backend="qiskit-o0", trace_id="trace-sse-77")
        events = list(client.events(job_id, timeout=60))
        assert events[-1]["event"] == "done"
        assert all(event["trace_id"] == "trace-sse-77" for event in events)
