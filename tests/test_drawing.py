"""Unit tests for the ASCII circuit drawer."""

from __future__ import annotations

from repro.bench import benchmark_circuit
from repro.circuit import QuantumCircuit
from repro.circuit.drawing import draw


class TestDraw:
    def test_empty_circuit(self):
        assert draw(QuantumCircuit(0)) == "(empty circuit)"

    def test_one_row_per_qubit(self, bell_circuit):
        text = draw(bell_circuit)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("q0:")
        assert lines[1].startswith("q1:")

    def test_single_qubit_gate_label(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        assert "[h]" in draw(circuit)

    def test_parametrised_gate_shows_angle(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.5, 0)
        assert "rz(0.5)" in draw(circuit)

    def test_cx_symbols(self, bell_circuit):
        text = draw(bell_circuit)
        assert "●" in text and "X" in text

    def test_measure_symbol(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0)
        assert "M" in draw(circuit)

    def test_parallel_gates_share_column(self):
        sequential = QuantumCircuit(2)
        sequential.h(0)
        sequential.h(0)
        parallel = QuantumCircuit(2)
        parallel.h(0)
        parallel.h(1)
        assert len(draw(parallel).splitlines()[0]) < len(draw(sequential).splitlines()[0])

    def test_width_truncation(self):
        circuit = QuantumCircuit(1)
        for _ in range(200):
            circuit.h(0)
        text = draw(circuit, max_width=60)
        assert all(len(line) <= 60 for line in text.splitlines())
        assert "…" in text

    def test_benchmark_circuit_renders(self):
        text = draw(benchmark_circuit("ghz", 4))
        assert len(text.splitlines()) == 4

    def test_swap_and_barrier_symbols(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.barrier()
        text = draw(circuit)
        assert "x" in text and "░" in text
