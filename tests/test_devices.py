"""Unit tests for device models, topologies, and calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.devices import (
    Calibration,
    CouplingMap,
    Device,
    NativeGateSet,
    all_to_all_map,
    aspen_map,
    devices_for_platform,
    get_device,
    grid_map,
    heavy_hex_map,
    ibm_eagle_127_map,
    ibm_falcon_27_map,
    line_map,
    list_devices,
    list_platforms,
    platform_gate_set,
    ring_map,
)


class TestCouplingMap:
    def test_add_edge_and_neighbors(self):
        cmap = CouplingMap(3, [(0, 1), (1, 2)])
        assert cmap.neighbors(1) == {0, 2}
        assert cmap.degree(0) == 1

    def test_self_loop_rejected(self):
        cmap = CouplingMap(2)
        with pytest.raises(ValueError):
            cmap.add_edge(1, 1)

    def test_out_of_range_edge_rejected(self):
        cmap = CouplingMap(2)
        with pytest.raises(ValueError):
            cmap.add_edge(0, 5)

    def test_are_connected_is_undirected(self):
        cmap = CouplingMap(3, [(0, 1)])
        assert cmap.are_connected(0, 1)
        assert cmap.are_connected(1, 0)
        assert not cmap.are_connected(0, 2)

    def test_distance_matrix_line(self):
        cmap = line_map(4)
        distances = cmap.distance_matrix()
        assert distances[0, 3] == 3
        assert distances[1, 2] == 1
        assert distances[2, 2] == 0

    def test_shortest_path_endpoints(self):
        cmap = line_map(5)
        path = cmap.shortest_path(0, 4)
        assert path[0] == 0 and path[-1] == 4
        assert len(path) == 5

    def test_shortest_path_disconnected_raises(self):
        cmap = CouplingMap(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            cmap.shortest_path(0, 3)

    def test_all_to_all(self):
        cmap = CouplingMap.all_to_all(4)
        assert cmap.is_fully_connected()
        assert len(cmap.edges) == 6

    def test_subgraph_connected(self):
        cmap = line_map(5)
        assert cmap.subgraph_connected({1, 2, 3})
        assert not cmap.subgraph_connected({0, 2})

    def test_is_connected_graph(self):
        assert line_map(6).is_connected_graph()
        assert not CouplingMap(4, [(0, 1)]).is_connected_graph()


class TestTopologies:
    def test_line_ring_grid_sizes(self):
        assert len(line_map(10).edges) == 9
        assert len(ring_map(10).edges) == 10
        assert len(grid_map(3, 4).edges) == 3 * 3 + 2 * 4

    def test_falcon_27(self):
        cmap = ibm_falcon_27_map()
        assert cmap.num_qubits == 27
        assert cmap.is_connected_graph()
        assert max(cmap.degree(q) for q in range(27)) <= 3

    def test_eagle_127(self):
        cmap = ibm_eagle_127_map()
        assert cmap.num_qubits == 127
        assert cmap.is_connected_graph()
        assert max(cmap.degree(q) for q in range(127)) <= 3

    def test_heavy_hex_generic(self):
        cmap = heavy_hex_map(3, 7)
        assert cmap.is_connected_graph()

    def test_aspen_80(self):
        cmap = aspen_map(5, 2)
        assert cmap.num_qubits == 80
        assert cmap.is_connected_graph()

    def test_all_to_all_map(self):
        cmap = all_to_all_map(5)
        assert cmap.is_fully_connected()


class TestNativeGateSet:
    def test_membership(self):
        gate_set = NativeGateSet(("rz", "sx", "x"), ("cx",))
        assert gate_set.is_native("rz")
        assert gate_set.is_native("cx")
        assert not gate_set.is_native("h")

    def test_structural_ops_always_native(self):
        gate_set = NativeGateSet(("rz",), ("cz",))
        assert gate_set.is_native("measure")
        assert gate_set.is_native("barrier")
        assert gate_set.is_native("id")


class TestCalibration:
    def test_synthetic_is_deterministic(self):
        cmap = line_map(5)
        a = Calibration.synthetic(cmap, seed=3, single_qubit_error=1e-3, two_qubit_error=1e-2, readout_error=1e-2)
        b = Calibration.synthetic(cmap, seed=3, single_qubit_error=1e-3, two_qubit_error=1e-2, readout_error=1e-2)
        assert a.single_qubit_error == b.single_qubit_error
        assert a.two_qubit_error == b.two_qubit_error

    def test_gate_error_lookup(self):
        cmap = line_map(3)
        cal = Calibration.synthetic(cmap, seed=1, single_qubit_error=1e-3, two_qubit_error=1e-2, readout_error=2e-2)
        assert 0 < cal.gate_error((0,)) < 0.1
        assert 0 < cal.gate_error((0, 1)) < 0.2
        assert cal.gate_error((0, 1)) == cal.gate_error((1, 0))

    def test_unknown_pair_uses_default(self):
        cal = Calibration(default_two_qubit_error=0.05)
        assert cal.gate_error((3, 7)) == 0.05

    def test_multi_qubit_gate_error_is_pessimistic(self):
        cal = Calibration(default_two_qubit_error=0.01)
        assert cal.gate_error((0, 1, 2)) >= cal.gate_error((0, 1))

    def test_t2_not_more_than_twice_t1(self):
        cmap = line_map(8)
        cal = Calibration.synthetic(cmap, seed=4, single_qubit_error=1e-3, two_qubit_error=1e-2, readout_error=1e-2)
        for q in range(8):
            assert cal.t2_us[q] <= 2 * cal.t1_us[q] + 1e-9


class TestDeviceRegistry:
    def test_all_registered_devices_exist(self):
        names = list_devices()
        assert set(names) == {
            "ibmq_montreal",
            "ibmq_washington",
            "rigetti_aspen_m2",
            "ionq_harmony",
            "oqc_lucy",
        }

    def test_qubit_counts_match_paper(self):
        assert get_device("ibmq_montreal").num_qubits == 27
        assert get_device("ibmq_washington").num_qubits == 127
        assert get_device("rigetti_aspen_m2").num_qubits == 80
        assert get_device("ionq_harmony").num_qubits == 11
        assert get_device("oqc_lucy").num_qubits == 8

    def test_platforms(self):
        assert list_platforms() == ["ibm", "ionq", "oqc", "rigetti"]
        assert {d.name for d in devices_for_platform("ibm")} == {"ibmq_montreal", "ibmq_washington"}

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device("ibmq_atlantis")

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            devices_for_platform("google")
        with pytest.raises(KeyError):
            platform_gate_set("google")

    def test_gate_sets_match_platform_hardware(self):
        assert "cx" in get_device("ibmq_montreal").gate_set.two_qubit
        assert "cz" in get_device("rigetti_aspen_m2").gate_set.two_qubit
        assert "rxx" in get_device("ionq_harmony").gate_set.two_qubit
        assert "ecr" in get_device("oqc_lucy").gate_set.two_qubit

    def test_ionq_all_to_all(self):
        assert get_device("ionq_harmony").coupling_map.is_fully_connected()


class TestDeviceConstraints:
    def test_gates_native(self, montreal):
        circuit = QuantumCircuit(2)
        circuit.rz(0.1, 0)
        circuit.sx(0)
        circuit.cx(0, 1)
        assert montreal.gates_native(circuit)
        circuit.h(1)
        assert not montreal.gates_native(circuit)

    def test_mapping_satisfied_respects_coupling(self, montreal):
        connected = QuantumCircuit(27)
        a, b = montreal.coupling_map.edges[0]
        connected.cx(a, b)
        assert montreal.mapping_satisfied(connected)

        disconnected = QuantumCircuit(27)
        far_a, far_b = 0, 26
        assert not montreal.coupling_map.are_connected(far_a, far_b)
        disconnected.cx(far_a, far_b)
        assert not montreal.mapping_satisfied(disconnected)

    def test_mapping_rejects_three_qubit_gates(self, montreal):
        circuit = QuantumCircuit(27)
        circuit.ccx(0, 1, 2)
        assert not montreal.mapping_satisfied(circuit)

    def test_mapping_rejects_too_wide_circuits(self, montreal):
        circuit = QuantumCircuit(50)
        circuit.h(40)
        assert not montreal.mapping_satisfied(circuit)

    def test_is_executable_combines_both(self, montreal):
        circuit = QuantumCircuit(27)
        a, b = montreal.coupling_map.edges[0]
        circuit.rz(0.3, a)
        circuit.cx(a, b)
        assert montreal.is_executable(circuit)
        circuit.h(a)
        assert not montreal.is_executable(circuit)
