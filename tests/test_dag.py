"""Unit tests for the DAG circuit view."""

from __future__ import annotations

import pytest

from repro.circuit import DAGCircuit, QuantumCircuit


@pytest.fixture
def layered_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.h(1)
    circuit.cx(0, 1)
    circuit.x(2)
    circuit.cx(1, 2)
    return circuit


class TestConstruction:
    def test_node_count(self, layered_circuit):
        dag = DAGCircuit.from_circuit(layered_circuit)
        assert len(dag) == 5

    def test_front_layer(self, layered_circuit):
        dag = DAGCircuit.from_circuit(layered_circuit)
        names = sorted(node.name for node in dag.front_layer())
        assert names == ["h", "h", "x"]

    def test_dependencies_follow_wires(self, layered_circuit):
        dag = DAGCircuit.from_circuit(layered_circuit)
        cx01 = next(n for n in dag.nodes.values() if n.name == "cx" and n.qubits == (0, 1))
        assert len(cx01.predecessors) == 2

    def test_measure_clbit_dependency(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 0)
        dag = DAGCircuit.from_circuit(circuit)
        second = dag.node(1)
        assert 0 in second.predecessors


class TestTopologicalOrder:
    def test_order_respects_dependencies(self, layered_circuit):
        dag = DAGCircuit.from_circuit(layered_circuit)
        seen = set()
        for node in dag.topological_nodes():
            assert node.predecessors <= seen
            seen.add(node.node_id)

    def test_to_circuit_round_trip(self, layered_circuit):
        dag = DAGCircuit.from_circuit(layered_circuit)
        rebuilt = dag.to_circuit()
        assert rebuilt.count_ops() == layered_circuit.count_ops()
        assert rebuilt.depth() == layered_circuit.depth()


class TestAnalysis:
    def test_longest_path_length(self, layered_circuit):
        dag = DAGCircuit.from_circuit(layered_circuit)
        # h(0/1) -> cx(0,1) -> cx(1,2) is the longest chain: 3 gates
        assert dag.longest_path_length() == 3

    def test_longest_path_only_2q(self, layered_circuit):
        dag = DAGCircuit.from_circuit(layered_circuit)
        assert dag.longest_path_length(only_2q=True) == 2

    def test_two_qubit_gates_on_longest_path_ghz(self, ghz5):
        dag = DAGCircuit.from_circuit(ghz5)
        # GHZ chain: all 4 CX gates are sequential on the critical path.
        assert dag.two_qubit_gates_on_longest_path() == 4

    def test_two_qubit_gates_on_longest_path_parallel(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        dag = DAGCircuit.from_circuit(circuit)
        assert dag.two_qubit_gates_on_longest_path() == 1


class TestRemoval:
    def test_remove_front_node_updates_front_layer(self, layered_circuit):
        dag = DAGCircuit.from_circuit(layered_circuit)
        front_ids = {n.node_id for n in dag.front_layer()}
        target = min(front_ids)
        dag.remove_node(target)
        assert target not in dag.nodes
        assert len(dag) == 4
