"""Unit tests for the synthesis passes (BasisTranslator and decomposition rules)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.circuit import Gate, Instruction, QuantumCircuit, random_circuit
from repro.circuit.gates import GATE_SPECS, gate_matrix
from repro.devices import get_device, list_devices
from repro.linalg import allclose_up_to_global_phase, circuit_unitary
from repro.passes import BasisTranslator, PassContext, decompose_to_cx_basis
from repro.passes.synthesis import (
    CX_CONVERSION_RULES,
    _decompose_named_2q,
    _decompose_named_3q,
    controlled_u_instructions,
)

_TWO_QUBIT_NAMED = [
    Instruction(Gate("cz"), (0, 1)),
    Instruction(Gate("cy"), (0, 1)),
    Instruction(Gate("ch"), (0, 1)),
    Instruction(Gate("swap"), (0, 1)),
    Instruction(Gate("iswap"), (0, 1)),
    Instruction(Gate("cp", (0.4,)), (0, 1)),
    Instruction(Gate("crx", (0.7,)), (0, 1)),
    Instruction(Gate("cry", (1.2,)), (0, 1)),
    Instruction(Gate("crz", (-0.9,)), (0, 1)),
    Instruction(Gate("cu", (0.4, 0.3, -0.2, 0.5)), (0, 1)),
    Instruction(Gate("csx"), (0, 1)),
    Instruction(Gate("rxx", (0.8,)), (0, 1)),
    Instruction(Gate("ryy", (0.8,)), (0, 1)),
    Instruction(Gate("rzz", (0.8,)), (0, 1)),
    Instruction(Gate("rzx", (0.8,)), (0, 1)),
]

_THREE_QUBIT_NAMED = [
    Instruction(Gate("ccx"), (0, 1, 2)),
    Instruction(Gate("ccz"), (0, 1, 2)),
    Instruction(Gate("cswap"), (0, 1, 2)),
]


def _instructions_unitary(instructions, num_qubits):
    circuit = QuantumCircuit(num_qubits)
    for instr in instructions:
        circuit.append_instruction(instr)
    return circuit_unitary(circuit)


class TestDecompositionRules:
    @pytest.mark.parametrize("instruction", _TWO_QUBIT_NAMED, ids=lambda i: i.name)
    def test_named_2q_rules_are_exact(self, instruction):
        rule = _decompose_named_2q(instruction)
        assert rule is not None
        assert all(len(i.qubits) <= 2 for i in rule)
        assert all(i.name == "cx" or len(i.qubits) == 1 for i in rule)
        original = _instructions_unitary([instruction], 2)
        decomposed = _instructions_unitary(rule, 2)
        assert allclose_up_to_global_phase(decomposed, original)

    @pytest.mark.parametrize("instruction", _THREE_QUBIT_NAMED, ids=lambda i: i.name)
    def test_named_3q_rules_are_exact(self, instruction):
        rule = _decompose_named_3q(instruction)
        assert rule is not None
        assert all(len(i.qubits) <= 2 for i in rule)
        original = _instructions_unitary([instruction], 3)
        decomposed = _instructions_unitary(rule, 3)
        assert allclose_up_to_global_phase(decomposed, original)

    @pytest.mark.parametrize("seed", range(5))
    def test_controlled_u_generic(self, seed):
        matrix = unitary_group.rvs(2, random_state=np.random.default_rng(seed))
        controlled = np.eye(4, dtype=complex)
        controlled[2:, 2:] = matrix
        instructions = controlled_u_instructions(matrix, 0, 1)
        assert np.allclose(_instructions_unitary(instructions, 2), controlled, atol=1e-7)

    def test_controlled_u_reversed_qubits(self):
        matrix = gate_matrix(Gate("h"))
        instructions = controlled_u_instructions(matrix, 1, 0)
        expected = _instructions_unitary([Instruction(Gate("ch"), (1, 0))], 2)
        assert allclose_up_to_global_phase(_instructions_unitary(instructions, 2), expected)

    @pytest.mark.parametrize("native", sorted(CX_CONVERSION_RULES))
    def test_cx_conversion_rules_are_exact(self, native):
        rule = CX_CONVERSION_RULES[native]
        circuit = QuantumCircuit(2)
        for name, role in rule["pre"]:
            circuit.append(name, [0 if role == "control" else 1])
        if native == "rxx":
            circuit.rxx(np.pi / 2, 0, 1)
        else:
            circuit.append(native, [0, 1])
        for name, role in rule["post"]:
            circuit.append(name, [0 if role == "control" else 1])
        assert allclose_up_to_global_phase(circuit_unitary(circuit), gate_matrix(Gate("cx")))


class TestDecomposeToCxBasis:
    def test_output_only_cx_and_1q(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        circuit.swap(0, 2)
        circuit.cp(0.3, 1, 2)
        out = decompose_to_cx_basis(circuit)
        for instr in out:
            assert len(instr.qubits) == 1 or instr.name == "cx"

    def test_unitary_preserved(self):
        circuit = random_circuit(3, 6, seed=5)
        circuit.ccx(0, 1, 2)
        out = decompose_to_cx_basis(circuit)
        assert allclose_up_to_global_phase(circuit_unitary(out), circuit_unitary(circuit))

    def test_keep_set_preserves_gates(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        out = decompose_to_cx_basis(circuit, keep=frozenset({"cz"}))
        assert out.count_ops()["cz"] == 1

    def test_measure_and_barrier_pass_through(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.barrier()
        circuit.measure_all()
        out = decompose_to_cx_basis(circuit)
        assert out.count_ops()["measure"] == 2
        assert out.count_ops()["barrier"] == 1


class TestBasisTranslator:
    @pytest.mark.parametrize("device_name", list_devices())
    @pytest.mark.parametrize("seed", range(3))
    def test_translates_to_native_and_preserves_unitary(self, device_name, seed):
        device = get_device(device_name)
        circuit = random_circuit(3, 5, seed=seed)
        out = BasisTranslator().run(circuit, PassContext(device=device))
        assert device.gates_native(out)
        assert allclose_up_to_global_phase(circuit_unitary(out), circuit_unitary(circuit))

    @pytest.mark.parametrize("device_name", list_devices())
    def test_handles_three_qubit_gates(self, device_name):
        device = get_device(device_name)
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        out = BasisTranslator().run(circuit, PassContext(device=device))
        assert device.gates_native(out)
        assert allclose_up_to_global_phase(circuit_unitary(out), circuit_unitary(circuit))

    def test_requires_device(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        with pytest.raises(ValueError, match="requires a target device"):
            BasisTranslator().run(circuit, PassContext())

    def test_native_circuit_is_unchanged_in_gate_count(self, montreal):
        circuit = QuantumCircuit(2)
        circuit.rz(0.4, 0)
        circuit.sx(0)
        circuit.cx(0, 1)
        out = BasisTranslator().run(circuit, PassContext(device=montreal))
        assert out.count_ops() == circuit.count_ops()

    def test_measurements_survive_translation(self, montreal):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.measure_all()
        out = BasisTranslator().run(circuit, PassContext(device=montreal))
        assert out.count_ops()["measure"] == 2

    def test_ionq_parametrised_rxx_kept(self):
        device = get_device("ionq_harmony")
        circuit = QuantumCircuit(2)
        circuit.rxx(0.37, 0, 1)
        out = BasisTranslator().run(circuit, PassContext(device=device))
        assert "rxx" in out.gate_names()
        assert device.gates_native(out)
