"""Unit tests for unitary utilities and 1q/2q decompositions."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.circuit import Gate, Instruction, QuantumCircuit
from repro.circuit.gates import gate_matrix
from repro.linalg import (
    allclose_up_to_global_phase,
    circuit_unitary,
    cnot_count_required,
    embed_unitary,
    global_phase_between,
    instruction_unitary,
    is_unitary_matrix,
    kron_factor,
    synthesize_1q,
    synthesize_2q,
    u3_angles,
    weyl_decompose,
    zyz_angles,
)


def _random_unitary(dim: int, seed: int) -> np.ndarray:
    return unitary_group.rvs(dim, random_state=np.random.default_rng(seed))


class TestUnitaryUtilities:
    def test_is_unitary_matrix(self):
        assert is_unitary_matrix(gate_matrix(Gate("h")))
        assert not is_unitary_matrix(np.array([[1, 0], [1, 1]], dtype=complex))
        assert not is_unitary_matrix(np.ones((2, 3)))

    def test_embed_single_qubit_gate(self):
        x_on_1 = embed_unitary(gate_matrix(Gate("x")), (1,), 2)
        expected = np.kron(np.eye(2), gate_matrix(Gate("x")))
        assert np.allclose(x_on_1, expected)

    def test_embed_respects_qubit_order(self):
        # CX with control=1, target=0 differs from control=0, target=1.
        cx_10 = embed_unitary(gate_matrix(Gate("cx")), (1, 0), 2)
        cx_01 = embed_unitary(gate_matrix(Gate("cx")), (0, 1), 2)
        assert not np.allclose(cx_10, cx_01)
        swap = gate_matrix(Gate("swap"))
        assert np.allclose(swap @ cx_01 @ swap, cx_10)

    def test_embed_refuses_large_systems(self):
        with pytest.raises(ValueError, match="refusing"):
            embed_unitary(gate_matrix(Gate("x")), (0,), 20)

    def test_instruction_unitary_measure_rejected(self):
        with pytest.raises(ValueError):
            instruction_unitary(Instruction(Gate("measure"), (0,)), 1)

    def test_circuit_unitary_matches_manual_product(self, bell_circuit):
        manual = embed_unitary(gate_matrix(Gate("cx")), (0, 1), 2) @ embed_unitary(
            gate_matrix(Gate("h")), (0,), 2
        )
        assert np.allclose(circuit_unitary(bell_circuit), manual)

    def test_global_phase_between(self):
        matrix = gate_matrix(Gate("h"))
        phase = np.exp(1j * 0.7)
        assert np.isclose(global_phase_between(phase * matrix, matrix), phase)
        assert global_phase_between(gate_matrix(Gate("x")), matrix) is None

    def test_allclose_up_to_global_phase(self):
        matrix = _random_unitary(4, 0)
        assert allclose_up_to_global_phase(np.exp(1j * 1.3) * matrix, matrix)
        assert not allclose_up_to_global_phase(matrix, _random_unitary(4, 1))


class TestOneQubitDecompositions:
    @pytest.mark.parametrize("seed", range(8))
    def test_u3_angles_reconstruct(self, seed):
        matrix = _random_unitary(2, seed)
        theta, phi, lam, phase = u3_angles(matrix)
        reconstructed = np.exp(1j * phase) * gate_matrix(Gate("u", (theta, phi, lam)))
        assert np.allclose(reconstructed, matrix, atol=1e-7)

    @pytest.mark.parametrize("seed", range(8))
    def test_zyz_angles_reconstruct(self, seed):
        matrix = _random_unitary(2, seed + 100)
        theta, phi, lam, phase = zyz_angles(matrix)
        reconstructed = (
            np.exp(1j * phase)
            * gate_matrix(Gate("rz", (phi,)))
            @ gate_matrix(Gate("ry", (theta,)))
            @ gate_matrix(Gate("rz", (lam,)))
        )
        assert np.allclose(reconstructed, matrix, atol=1e-7)

    @pytest.mark.parametrize("basis", ["rz_sx", "rz_rx", "rz_ry", "u3"])
    @pytest.mark.parametrize("seed", range(6))
    def test_synthesize_1q_exact(self, basis, seed):
        matrix = _random_unitary(2, 10 * seed + 3)
        decomp = synthesize_1q(matrix, basis)
        assert np.allclose(decomp.matrix(), matrix, atol=1e-6)

    @pytest.mark.parametrize("basis", ["rz_sx", "rz_rx", "rz_ry"])
    def test_synthesize_1q_special_gates_short(self, basis):
        # Diagonal gates should synthesise to a single RZ.
        decomp = synthesize_1q(gate_matrix(Gate("t")), basis)
        assert len(decomp.gates) == 1
        assert decomp.gates[0].name == "rz"

    def test_synthesize_1q_identity_is_empty(self):
        decomp = synthesize_1q(np.eye(2), "rz_sx")
        assert len(decomp.gates) == 0

    def test_synthesize_1q_basis_gates_only(self):
        decomp = synthesize_1q(_random_unitary(2, 77), "rz_sx")
        assert set(g.name for g in decomp.gates) <= {"rz", "sx"}

    def test_unknown_basis_raises(self):
        with pytest.raises(ValueError):
            synthesize_1q(np.eye(2), "weird_basis")


class TestKronFactor:
    def test_factorable(self):
        a, b = _random_unitary(2, 1), _random_unitary(2, 2)
        result = kron_factor(np.kron(a, b))
        assert result is not None
        fa, fb, phase = result
        assert allclose_up_to_global_phase(np.kron(fa, fb), np.kron(a, b))

    def test_entangling_not_factorable(self):
        assert kron_factor(gate_matrix(Gate("cx"))) is None

    def test_phase_is_tracked(self):
        a, b = gate_matrix(Gate("h")), gate_matrix(Gate("s"))
        target = np.exp(1j * 0.3) * np.kron(a, b)
        fa, fb, phase = kron_factor(target)
        assert np.allclose(np.exp(1j * phase) * np.kron(fa, fb), target)


class TestWeylDecomposition:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_unitaries_reconstruct(self, seed):
        matrix = _random_unitary(4, 200 + seed)
        decomp = weyl_decompose(matrix)
        assert np.allclose(decomp.matrix(), matrix, atol=1e-5)

    @pytest.mark.parametrize(
        "gate_name", ["cx", "cz", "swap", "iswap", "ecr", "ch"]
    )
    def test_named_gates_reconstruct(self, gate_name):
        matrix = gate_matrix(Gate(gate_name))
        decomp = weyl_decompose(matrix)
        assert allclose_up_to_global_phase(decomp.matrix(), matrix)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            weyl_decompose(np.eye(2))


class TestCnotCount:
    def test_local_gate_needs_zero(self):
        assert cnot_count_required(np.kron(gate_matrix(Gate("h")), gate_matrix(Gate("t")))) == 0

    def test_cx_class_needs_one(self):
        assert cnot_count_required(gate_matrix(Gate("cx"))) == 1
        assert cnot_count_required(gate_matrix(Gate("cz"))) == 1
        assert cnot_count_required(gate_matrix(Gate("ecr"))) == 1

    def test_iswap_class_needs_two(self):
        assert cnot_count_required(gate_matrix(Gate("iswap"))) == 2

    def test_swap_needs_three(self):
        assert cnot_count_required(gate_matrix(Gate("swap"))) == 3

    def test_generic_unitary_needs_at_most_three(self):
        count = cnot_count_required(_random_unitary(4, 5))
        assert count == 3

    def test_partial_entangler_needs_two(self):
        assert cnot_count_required(gate_matrix(Gate("rzz", (0.3,)))) == 2


class TestTwoQubitSynthesis:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_unitary_exact(self, seed):
        matrix = _random_unitary(4, 300 + seed)
        ops, _phase = synthesize_2q(matrix)
        circuit = QuantumCircuit(2)
        for gate, qubits in ops:
            circuit.append(gate, qubits)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), matrix)

    def test_local_unitary_uses_no_cx(self):
        matrix = np.kron(_random_unitary(2, 1), _random_unitary(2, 2))
        ops, _ = synthesize_2q(matrix)
        assert all(len(qubits) == 1 for _, qubits in ops)

    def test_cx_costs_at_most_two_entanglers(self):
        ops, _ = synthesize_2q(gate_matrix(Gate("cx")))
        two_qubit = [gate for gate, qubits in ops if len(qubits) == 2]
        assert len(two_qubit) <= 2

    @pytest.mark.parametrize("basis", ["rz_sx", "rz_rx", "rz_ry"])
    def test_alternative_1q_bases(self, basis):
        matrix = _random_unitary(4, 99)
        ops, _ = synthesize_2q(matrix, basis_1q=basis)
        circuit = QuantumCircuit(2)
        for gate, qubits in ops:
            circuit.append(gate, qubits)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), matrix)
