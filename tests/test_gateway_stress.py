"""Concurrency stress tests for the HTTP gateway (run via ``pytest -m stress``).

The gateway adds three multi-tenant behaviours on top of the service's QoS
machinery, and each needs hammering from real concurrent HTTP clients:

* **no lost jobs** — N tenants submitting through N threads over HTTP must
  get every job resolved exactly once, with gateway/service accounting
  consistent at the end;
* **rate-limit isolation** — only the over-limit tenant sees 429s (always
  with ``Retry-After``); a well-behaved tenant on the same gateway is
  unaffected and all of its work completes;
* **fair-share ordering** — on a saturated one-worker lane, a weight-3
  tenant's requests are started ~3x as often as a weight-1 tenant's, in the
  deterministic order the stride scheduler promises.

Determinism comes from gated/recording stub backends (the service-stress
idiom): no timing assumptions beyond generous join timeouts.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api.registry import register_backend, unregister_backend
from repro.api.result import CompilationResult
from repro.bench import benchmark_circuit
from repro.gateway import GatewayClient, GatewayError, GatewayServer, Tenant
from repro.service import CompileService

pytestmark = pytest.mark.stress


def _result(circuit, backend_name: str, objective: str) -> CompilationResult:
    return CompilationResult(
        circuit=circuit,
        device=None,
        reward=1.0,
        reward_name=objective,
        backend=backend_name,
        wall_time=0.001,
    )


class RecordingBackend:
    """Scripted backend recording the seed of every compile call, in order."""

    def __init__(self, name: str, delay: float = 0.0):
        self.name = name
        self.delay = delay
        self.lock = threading.Lock()
        self.calls: list[int] = []

    def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
        with self.lock:
            self.calls.append(seed)
        if self.delay:
            time.sleep(self.delay)
        return _result(circuit, self.name, objective)


class GatedBackend(RecordingBackend):
    """Backend whose seed-0 compile blocks until released (lane saturator)."""

    def __init__(self, name: str):
        super().__init__(name)
        self.seed0_running = threading.Event()
        self.release = threading.Event()

    def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
        if seed == 0:
            self.seed0_running.set()
            assert self.release.wait(timeout=60), "gate never released"
        return super().compile(circuit, device=device, objective=objective, seed=seed)


@pytest.fixture()
def circuit():
    return benchmark_circuit("ghz", 4)


@pytest.fixture()
def registered():
    """Register stub backends for the gateway to resolve by name."""
    names = []

    def _register(name, backend):
        register_backend(name, backend, overwrite=True)
        names.append(name)
        return backend

    yield _register
    for name in names:
        unregister_backend(name)


class TestNoLostJobs:
    N_TENANTS = 4
    N_PER_TENANT = 20

    def test_tenant_hammer_resolves_every_job(self, circuit, registered):
        backend = registered("gw-hammer", RecordingBackend("gw-hammer", delay=0.002))
        tenants = [
            Tenant(f"t{i}", f"key-{i}", weight=float(i + 1)) for i in range(self.N_TENANTS)
        ]
        job_ids: list[list[str]] = [[] for _ in range(self.N_TENANTS)]
        errors: list[Exception] = []
        barrier = threading.Barrier(self.N_TENANTS)

        with CompileService(max_workers=3) as service:
            with GatewayServer(service, tenants=tenants, sample_interval=0.1) as gw:

                def tenant_thread(index: int) -> None:
                    try:
                        client = GatewayClient(gw.url, api_key=f"key-{index}")
                        barrier.wait(timeout=30)
                        for n in range(self.N_PER_TENANT):
                            # Overlapping seeds on purpose: the service cache
                            # and coalescing must not lose gateway jobs either.
                            job_ids[index].append(
                                client.submit(
                                    circuit, "gw-hammer", seed=n % 7, priority=n % 3
                                )
                            )
                    except Exception as exc:  # noqa: BLE001 - surfaced after join
                        errors.append(exc)

                threads = [
                    threading.Thread(target=tenant_thread, args=(i,))
                    for i in range(self.N_TENANTS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                assert not errors

                total = self.N_TENANTS * self.N_PER_TENANT
                all_ids = [job_id for per_tenant in job_ids for job_id in per_tenant]
                assert len(all_ids) == total
                assert len(set(all_ids)) == total, "duplicate job ids handed out"

                clients = [
                    GatewayClient(gw.url, api_key=f"key-{i}")
                    for i in range(self.N_TENANTS)
                ]
                for index, per_tenant in enumerate(job_ids):
                    for job_id in per_tenant:
                        result = clients[index].result(job_id, timeout=120)
                        assert result.succeeded, result.error

                # Accounting converges: every submitted job completed.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    counters = gw.counters()
                    if counters["jobs_completed"] >= total:
                        break
                    time.sleep(0.05)
                counters = gw.counters()
                assert counters["jobs_submitted"] == total
                assert counters["jobs_completed"] == total
                assert counters["rate_limited"] == 0
                assert gw.jobs.stats()["unfinished"] == 0
                stats = service.stats()
                assert stats["submitted"] == total
                assert stats["completed"] == total
                assert stats["failed"] == 0
                # Every tenant is accounted in the fair-share ledger.
                shares = gw.fairshare.stats()["tenants"]
                for i in range(self.N_TENANTS):
                    assert shares[f"t{i}"]["requests"] == self.N_PER_TENANT


class TestRateLimitIsolation:
    def test_429_only_for_over_limit_tenant(self, circuit, registered):
        registered("gw-limit", RecordingBackend("gw-limit", delay=0.001))
        tenants = [
            Tenant("greedy", "greedy-key", rate=3.0, burst=3),
            Tenant("polite", "polite-key"),  # unlimited
        ]
        outcomes: dict[str, list] = {"greedy": [], "polite": []}
        polite_jobs: list[str] = []
        errors: list[Exception] = []
        barrier = threading.Barrier(2)

        with CompileService(max_workers=2) as service:
            with GatewayServer(service, tenants=tenants, sample_interval=0) as gw:

                def hammer(name: str) -> None:
                    try:
                        client = GatewayClient(gw.url, api_key=f"{name}-key")
                        barrier.wait(timeout=30)
                        for n in range(15):
                            try:
                                job_id = client.submit(circuit, "gw-limit", seed=1000 + n)
                                outcomes[name].append("accepted")
                                if name == "polite":
                                    polite_jobs.append(job_id)
                            except GatewayError as exc:
                                outcomes[name].append(exc)
                    except Exception as exc:  # noqa: BLE001 - surfaced after join
                        errors.append(exc)

                threads = [
                    threading.Thread(target=hammer, args=(name,))
                    for name in ("greedy", "polite")
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                assert not errors

                greedy_429 = [o for o in outcomes["greedy"] if isinstance(o, GatewayError)]
                assert greedy_429, "greedy tenant burst 15 into a 3-burst bucket with no 429"
                for error in greedy_429:
                    assert error.status == 429
                    assert error.error_type == "rate_limited"
                    assert error.retry_after is not None and error.retry_after >= 1

                # The polite tenant is completely unaffected.
                assert all(o == "accepted" for o in outcomes["polite"])
                client = GatewayClient(gw.url, api_key="polite-key")
                for job_id in polite_jobs:
                    assert client.result(job_id, timeout=60).succeeded

                tenant_stats = gw.registry.stats()
                assert tenant_stats["greedy"]["rate_limited"] == len(greedy_429)
                assert tenant_stats["polite"]["rate_limited"] == 0
                # 429d requests never became jobs or touched the service.
                accepted = len([o for o in outcomes["greedy"] if o == "accepted"]) + len(
                    polite_jobs
                )
                assert gw.counters()["jobs_submitted"] == accepted


class TestFairShareOrdering:
    N_PER_TENANT = 12

    def test_weighted_ordering_on_saturated_lane(self, circuit, registered):
        """Weight-3 'heavy' vs weight-1 'light' on a one-worker lane: requests
        must start in stride order (~3 heavy per light), deterministically."""
        backend = registered("gw-fair", GatedBackend("gw-fair"))
        tenants = [
            Tenant("heavy", "heavy-key", weight=3.0),
            Tenant("light", "light-key", weight=1.0),
            Tenant("ops", "ops-key", admin=True),
        ]
        with CompileService(max_workers=1, autoscale=False) as service:
            with GatewayServer(service, tenants=tenants, sample_interval=0) as gw:
                ops = GatewayClient(gw.url, api_key="ops-key")
                heavy = GatewayClient(gw.url, api_key="heavy-key")
                light = GatewayClient(gw.url, api_key="light-key")

                # Saturate the lane: seed 0 blocks the only worker until released.
                blocker = ops.submit(circuit, "gw-fair", seed=0)
                assert backend.seed0_running.wait(timeout=60)

                # Both tenants queue their work while the worker is blocked;
                # seeds encode the tenant (1xx heavy, 2xx light).  Jobs are
                # tenant-scoped, so each client fetches only its own.
                ids = []
                for n in range(self.N_PER_TENANT):
                    ids.append((heavy, heavy.submit(circuit, "gw-fair", seed=100 + n)))
                    ids.append((light, light.submit(circuit, "gw-fair", seed=200 + n)))
                depth = service.stats()["queue_depth"]
                assert depth >= 2 * self.N_PER_TENANT, f"lane not saturated (depth {depth})"

                backend.release.set()
                for client, job_id in ids:
                    assert client.result(job_id, timeout=120).succeeded
                assert ops.result(blocker, timeout=60).succeeded

        # The backend recorded the exact start order.  Drop the blocker and
        # map seeds back to tenants.
        started = [seed for seed in backend.calls if seed != 0]
        assert len(started) == 2 * self.N_PER_TENANT
        tenant_order = ["heavy" if seed < 200 else "light" for seed in started]

        # Stride order with weights 3:1 —  among any early window the heavy
        # tenant holds ~3/4 of the slots; exact prefix: H L H H [H L] ...
        first_eight = tenant_order[:8]
        assert first_eight.count("heavy") >= 5, f"first eight started: {first_eight}"
        # The heavy tenant's mean start position beats the light tenant's.
        heavy_positions = [i for i, name in enumerate(tenant_order) if name == "heavy"]
        light_positions = [i for i, name in enumerate(tenant_order) if name == "light"]
        assert sum(heavy_positions) / len(heavy_positions) < sum(light_positions) / len(
            light_positions
        )
        # And no request was lost along the way.
        assert sorted(started) == sorted(
            list(range(100, 100 + self.N_PER_TENANT))
            + list(range(200, 200 + self.N_PER_TENANT))
        )
