"""Tests for the observability subsystem: tracing, JSON logs, slow-request log.

Covers the span core (tree building, serialisation, propagation seams), the
:func:`~repro.obs.timed_span` / profiler contract, trace propagation through
the compile service (in-process, coalesced, process-lane, and remote), and
the supporting pieces: :class:`~repro.obs.SlowRequestLog` and the JSON log
formatter's trace stamping.
"""

from __future__ import annotations

import io
import json
import re
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.api.result import CompilationResult
from repro.bench import benchmark_circuit
from repro.gateway.metrics import quantile
from repro.obs import (
    JsonFormatter,
    SlowRequestLog,
    Span,
    SpanContext,
    activate,
    as_context,
    configure_json_logging,
    current_span,
    get_logger,
    new_trace_id,
    span,
    timed_span,
    valid_trace_id,
)
from repro.profiling import disable_profiling, enable_profiling, profiler
from repro.service import CacheServer, CompileService, ServiceClient


@pytest.fixture(scope="module")
def ghz4():
    return benchmark_circuit("ghz", 4)


@pytest.fixture(autouse=True)
def _profiling_off():
    """Every test starts and ends with the profile registry disabled."""
    disable_profiling()
    profiler().clear()
    yield
    disable_profiling()
    profiler().clear()


# ---------------------------------------------------------------------------------
# span core
# ---------------------------------------------------------------------------------


class TestSpanCore:
    def test_tree_building_and_ids(self):
        root = Span("root", attrs={"tenant": "alice"})
        child = root.child("work")
        grandchild = child.child("inner")
        assert child.trace_id == root.trace_id == grandchild.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert len({root.span_id, child.span_id, grandchild.span_id}) == 3
        assert not root.finished
        duration = root.finish()
        assert root.finished and duration >= 0

    def test_finish_is_idempotent(self):
        node = Span("once")
        first = node.finish(status="error")
        second = node.finish(status="ok")  # too late: already closed
        assert first == second == node.duration
        assert node.status == "ok"  # status updates still apply by design

    def test_event_is_a_finished_child(self):
        root = Span("root")
        marker = root.event("cache.hit", key="abc")
        assert marker.finished
        assert marker.attrs == {"key": "abc"}
        assert root.children == [marker]

    def test_json_round_trip_preserves_structure_and_ids(self):
        root = Span("root", attrs={"n": 1})
        child = root.child("stage.routing")
        child.finish(status="error")
        root.finish()
        payload = json.loads(json.dumps(root.to_dict()))
        rebuilt = Span.from_dict(payload)
        assert [(d, s.name) for d, s in rebuilt.walk()] == [
            (d, s.name) for d, s in root.walk()
        ]
        assert rebuilt.span_id == root.span_id
        assert rebuilt.children[0].span_id == child.span_id
        assert rebuilt.children[0].status == "error"
        assert rebuilt.attrs == {"n": 1}
        assert rebuilt.duration == pytest.approx(root.duration)

    def test_as_context_accepts_every_carrier(self):
        root = Span("root")
        for carrier in (root, root.context(), root.context().to_dict()):
            ctx = as_context(carrier)
            assert ctx == SpanContext(root.trace_id, root.span_id)
        assert as_context(None) is None  # no ambient span on this thread
        with pytest.raises(TypeError):
            as_context(42)

    def test_as_context_picks_up_the_ambient_span(self):
        root = Span("root")
        with activate(root):
            assert as_context(None) == root.context()

    def test_valid_trace_id(self):
        assert valid_trace_id(new_trace_id())
        assert valid_trace_id("abc-DEF_123")
        assert not valid_trace_id("no spaces")
        assert not valid_trace_id("abc")  # too short
        assert not valid_trace_id("x" * 129)
        assert not valid_trace_id(None)
        assert not valid_trace_id(b"deadbeefcafe")


class TestPropagation:
    def test_span_is_a_noop_without_a_parent(self):
        assert current_span() is None
        with span("orphan") as node:
            assert node is None

    def test_span_nests_under_the_active_span(self):
        root = Span("root")
        with activate(root):
            with span("outer") as outer:
                assert current_span() is outer
                with span("inner", attrs={"k": 1}) as inner:
                    assert inner.parent_id == outer.span_id
            assert current_span() is root
        assert current_span() is None
        assert [s.name for _, s in root.walk()] == ["root", "outer", "inner"]

    def test_span_records_errors(self):
        root = Span("root")
        with activate(root):
            with pytest.raises(ValueError):
                with span("boom"):
                    raise ValueError("nope")
        assert root.children[0].status == "error"
        assert root.children[0].finished

    def test_activate_crosses_threads(self):
        root = Span("root")
        seen = {}

        def worker():
            # The span arrived through an explicit payload, not inheritance.
            assert current_span() is None
            with activate(root):
                with span("thread.work") as node:
                    seen["node"] = node

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["node"].parent_id == root.span_id
        assert root.children[0].name == "thread.work"

    def test_timed_span_feeds_span_and_profiler_identically(self):
        registry = enable_profiling(clear=True)
        root = Span("root")
        with activate(root):
            with timed_span("stage.test", items=7) as node:
                pass
        counters = registry.snapshot()
        assert counters["stage.test"]["calls"] == 1
        assert counters["stage.test"]["items"] == 7
        # One perf_counter pair serves both sinks.
        assert node.duration == pytest.approx(counters["stage.test"]["total_seconds"])
        assert node.attrs["items"] == 7

    def test_timed_span_profiles_without_a_trace(self):
        registry = enable_profiling(clear=True)
        with timed_span("stage.lonely", items=2) as node:
            pass
        assert node is None
        assert registry.snapshot()["stage.lonely"]["calls"] == 1

    def test_timed_span_is_a_noop_when_both_sinks_are_off(self):
        with timed_span("stage.ghost") as node:
            pass
        assert node is None
        assert "stage.ghost" not in profiler().snapshot()


# ---------------------------------------------------------------------------------
# quantile fix (satellite): floor(q * (n - 1) + 0.5), not banker's rounding
# ---------------------------------------------------------------------------------


class TestQuantileRounding:
    def test_median_of_two_rounds_up(self):
        # round(0.5) == 0 under banker's rounding, which used to pick the
        # *lower* of two samples as the median.
        assert quantile([10.0, 20.0], 0.5) == 20.0

    def test_exact_half_ranks_round_up_everywhere(self):
        assert quantile([1, 2, 3, 4], 0.5) == 3  # rank 1.5 -> index 2
        assert quantile([1, 2, 3, 4, 5, 6], 0.5) == 4  # rank 2.5 -> index 3
        assert quantile([1, 2, 3], 0.25) == 2  # rank 0.5 -> index 1

    def test_extremes_clamp(self):
        assert quantile([5.0, 1.0, 3.0], 0.0) == 1.0
        assert quantile([5.0, 1.0, 3.0], 1.0) == 5.0


# ---------------------------------------------------------------------------------
# slow-request log
# ---------------------------------------------------------------------------------


class TestSlowRequestLog:
    def test_keeps_the_slowest_n(self):
        log = SlowRequestLog(capacity=3)
        admitted = [
            log.observe(trace_id=f"t{i}", name=f"job{i}", seconds=float(i))
            for i in range(1, 6)
        ]
        assert admitted == [True, True, True, True, True]  # each evicts a faster one
        assert not log.observe(trace_id="tiny", name="fast", seconds=0.5)
        assert len(log) == 3
        assert [e["seconds"] for e in log.snapshot()] == [5.0, 4.0, 3.0]

    def test_breakdown_is_flattened_and_capped(self):
        root = Span("gateway.request")
        child = root.child("service.request")
        for i in range(60):
            child.child(f"stage.{i}").finish()
        child.finish()
        root.finish()
        log = SlowRequestLog()
        log.observe(trace_id=root.trace_id, name="big", seconds=1.0, tree=root.to_dict())
        (entry,) = log.snapshot()
        rows = entry["breakdown"]
        assert len(rows) == 40  # bounded against pathological trees
        assert rows[0] == {
            "name": "gateway.request",
            "duration": root.duration,
            "depth": 0,
            "status": "ok",
        }
        assert rows[1]["name"] == "service.request" and rows[1]["depth"] == 1
        assert rows[2]["name"] == "stage.0" and rows[2]["depth"] == 2

    def test_capacity_validation_and_clear(self):
        with pytest.raises(ValueError):
            SlowRequestLog(capacity=0)
        log = SlowRequestLog(capacity=2)
        log.observe(trace_id="t", name="x", seconds=1.0)
        log.clear()
        assert len(log) == 0 and log.snapshot() == []


# ---------------------------------------------------------------------------------
# JSON logging
# ---------------------------------------------------------------------------------


class TestJsonLogging:
    def test_records_carry_the_trace_stamp(self):
        stream = io.StringIO()
        configure_json_logging(stream=stream, logger="repro-test-json")
        log = get_logger("repro-test-json.unit")
        root = Span("root")
        with activate(root):
            log.info("traced line", extra={"tenant": "alice", "weird": object()})
        log.info("untraced line")
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines[0]["msg"] == "traced line"
        assert lines[0]["trace_id"] == root.trace_id
        assert lines[0]["span_id"] == root.span_id
        assert lines[0]["tenant"] == "alice"
        assert "object object" in lines[0]["weird"]  # non-JSON extras degrade to repr
        assert "trace_id" not in lines[1]

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        logger = configure_json_logging(stream=stream, logger="repro-test-idem")
        configure_json_logging(stream=stream, logger="repro-test-idem")
        json_handlers = [
            h for h in logger.handlers if isinstance(h.formatter, JsonFormatter)
        ]
        assert len(json_handlers) == 1
        logger.info("once")
        assert len(stream.getvalue().splitlines()) == 1

    def test_formatter_includes_exception_repr(self):
        stream = io.StringIO()
        logger = configure_json_logging(stream=stream, logger="repro-test-exc")
        try:
            raise RuntimeError("kaboom")
        except RuntimeError:
            logger.exception("failed")
        payload = json.loads(stream.getvalue().splitlines()[0])
        assert payload["level"] == "ERROR"
        assert "kaboom" in payload["error"]


# ---------------------------------------------------------------------------------
# traces through the compile service
# ---------------------------------------------------------------------------------


def span_names(tree: dict) -> set:
    """Every span name in a serialised tree."""
    names = set()
    stack = [tree]
    while stack:
        node = stack.pop()
        names.add(node["name"])
        stack.extend(node.get("children") or [])
    return names


def name_structure(tree: dict) -> tuple:
    """The tree as nested ``(name, (children...))`` tuples, children sorted."""
    children = tuple(
        sorted(name_structure(child) for child in tree.get("children") or [])
    )
    return (tree["name"], children)


def find_spans(tree: dict, name: str) -> list[dict]:
    found = []
    stack = [tree]
    while stack:
        node = stack.pop()
        if node["name"] == name:
            found.append(node)
        stack.extend(node.get("children") or [])
    return found


class TestServiceTracing:
    def test_untraced_requests_carry_no_trace(self, ghz4):
        with CompileService(max_workers=1) as service:
            result = service.submit(
                ghz4, "qiskit-o0", device="ibmq_washington"
            ).result(timeout=120)
        assert result.succeeded
        assert "trace" not in result.metadata

    def test_in_process_propagation_builds_the_full_tree(self, ghz4):
        root = Span("test.root", trace_id="trace-test-0001")
        with CompileService(max_workers=1) as service:
            result = service.submit(
                ghz4, "qiskit-o1", device="ibmq_washington", trace=root
            ).result(timeout=120)
        assert result.succeeded
        tree = result.metadata["trace"]
        assert tree["name"] == "service.request"
        assert tree["trace_id"] == "trace-test-0001"
        assert tree["parent_id"] == root.span_id
        names = span_names(tree)
        assert {"queue.wait", "lane.execute"} <= names
        assert {n for n in names if n.startswith("stage.")}, names
        # Every span shares the one trace id and is finished.
        stack = [tree]
        while stack:
            node = stack.pop()
            assert node["trace_id"] == "trace-test-0001"
            assert node["duration"] is not None
            stack.extend(node.get("children") or [])
        # The tree is a JSON round-trip away from a Span at all times.
        rebuilt = Span.from_dict(json.loads(json.dumps(tree)))
        assert span_names(rebuilt.to_dict()) == names

    def test_ambient_span_propagates_without_an_argument(self, ghz4):
        root = Span("ambient.root")
        with CompileService(max_workers=1) as service:
            with activate(root):
                future = service.submit(ghz4, "qiskit-o0", device="ibmq_washington")
            result = future.result(timeout=120)
        assert result.metadata["trace"]["trace_id"] == root.trace_id

    def test_cache_hits_answer_with_this_requests_trace(self, ghz4):
        with CompileService(max_workers=1) as service:
            service.submit(
                ghz4, "qiskit-o0", device="ibmq_washington", seed=7
            ).result(timeout=120)
            root = Span("cache.root")
            again = service.submit(
                ghz4, "qiskit-o0", device="ibmq_washington", seed=7, trace=root
            ).result(timeout=120)
        assert again.metadata.get("cached") is True
        tree = again.metadata["trace"]
        assert tree["trace_id"] == root.trace_id
        assert "cache.hit" in span_names(tree)
        assert "lane.execute" not in span_names(tree)

    def test_coalesced_followers_share_the_execute_span(self, ghz4):
        with CompileService(max_workers=1) as service:
            # Occupy the single worker so both identical requests are queued
            # together and the second coalesces onto the first.
            blocker = service.submit(
                ghz4, "qiskit-o1", device="ibmq_washington", seed=999
            )
            owner_root = Span("owner.root")
            follower_root = Span("follower.root")
            owner = service.submit(
                ghz4, "qiskit-o1", device="ibmq_washington", seed=41, trace=owner_root
            )
            follower = service.submit(
                ghz4, "qiskit-o1", device="ibmq_washington", seed=41, trace=follower_root
            )
            blocker.result(timeout=120)
            owner_tree = owner.result(timeout=120).metadata["trace"]
            follower_tree = follower.result(timeout=120).metadata["trace"]
            assert service.stats()["coalesced"] == 1
        # Distinct request spans, one shared lane.execute span.
        assert owner_tree["span_id"] != follower_tree["span_id"]
        assert follower_tree["attrs"].get("coalesced") is True
        (owner_exec,) = find_spans(owner_tree, "lane.execute")
        (follower_exec,) = find_spans(follower_tree, "lane.execute")
        assert owner_exec["span_id"] == follower_exec["span_id"]
        # Both trees still carry their own queue.wait.
        assert find_spans(owner_tree, "queue.wait")
        assert find_spans(follower_tree, "queue.wait")

    def test_process_lane_trace_and_profile_merge(self, ghz4):
        server = CacheServer(maxsize=64)
        try:
            registry = enable_profiling(clear=True)
            root = Span("process.root")
            with CompileService(
                store=server.store(), process_backends=("qiskit-o1",), max_workers=1
            ) as service:
                result = service.submit(
                    ghz4, "qiskit-o1", device="ibmq_washington", trace=root
                ).result(timeout=180)
            assert result.succeeded
            tree = result.metadata["trace"]
            # The worker's spans came home across the pickle boundary (grafted
            # under lane.execute, same shape as a thread lane) and the
            # transport keys were stripped before the result reached us.
            assert "lane.execute" in span_names(tree)
            assert {n for n in span_names(tree) if n.startswith("stage.")}
            assert "_worker_spans" not in result.metadata
            assert "_worker_profile" not in result.metadata
            # Satellite: the worker's profile counters merged into the parent
            # registry, so --profile sees process-lane stages.
            counters = registry.snapshot()
            stage_counters = {n for n in counters if n.startswith("stage.")}
            assert stage_counters, counters.keys()
            assert all(counters[n]["calls"] >= 1 for n in stage_counters)
        finally:
            server.shutdown()


class TestResultTraceRoundTrip:
    def test_trace_survives_to_dict_from_dict(self, ghz4):
        root = Span("roundtrip.root")
        with CompileService(max_workers=1) as service:
            result = service.submit(
                ghz4, "qiskit-o0", device="ibmq_washington", trace=root
            ).result(timeout=120)
        wire = json.loads(json.dumps(result.to_dict()))
        rebuilt = CompilationResult.from_dict(wire)
        assert rebuilt.trace == result.metadata["trace"]
        assert rebuilt.trace["trace_id"] == root.trace_id
        assert name_structure(rebuilt.trace) == name_structure(result.trace)

    def test_trace_property_defaults_to_none(self):
        result = CompilationResult(
            circuit=None, device=None, reward=0.0, reward_name="fidelity"
        )
        assert result.trace is None


class TestRemoteServiceTracing:
    def test_remote_tree_matches_in_process_structure(self, ghz4, tmp_path):
        """One structure for both backends: the RPC seam loses nothing."""
        with CompileService(max_workers=1) as service:
            local = service.submit(
                ghz4,
                "qiskit-o1",
                device="ibmq_washington",
                trace=Span("local.root"),
            ).result(timeout=120)
        local_tree = local.metadata["trace"]

        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin", "HOME": str(tmp_path)},
        )
        try:
            address = authkey = None
            for _ in range(50):
                line = proc.stdout.readline()
                if not line:
                    break
                match = re.search(r"listening on ([\d.]+):(\d+)", line)
                if match:
                    address = (match.group(1), int(match.group(2)))
                match = re.search(r"authkey: ([0-9a-f]+)", line)
                if match:
                    authkey = bytes.fromhex(match.group(1))
                    break
            assert address is not None and authkey is not None, "server did not start"
            with ServiceClient(address=address, authkey=authkey) as client:
                root = Span("remote.root", trace_id="trace-remote-0001")
                remote = client.submit(
                    ghz4, backend="qiskit-o1", device="ibmq_washington", trace=root
                ).result(timeout=180)
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=20)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck server
                proc.kill()
        assert remote.succeeded
        remote_tree = remote.metadata["trace"]
        assert remote_tree["trace_id"] == "trace-remote-0001"
        assert remote_tree["parent_id"] == root.span_id
        assert name_structure(remote_tree) == name_structure(local_tree)
        assert {"queue.wait", "lane.execute"} <= span_names(remote_tree)
