"""Unit tests for the optimization passes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Gate, Instruction, QuantumCircuit, random_circuit
from repro.devices import get_device
from repro.linalg import allclose_up_to_global_phase, circuit_unitary
from repro.passes import (
    BasisTranslator,
    CliffordSimp,
    Collect2qBlocksConsolidate,
    CommutativeCancellation,
    CommutativeInverseCancellation,
    CXCancellation,
    FullPeepholeOptimise,
    InverseCancellation,
    Optimize1qGatesDecomposition,
    OptimizeCliffords,
    PassContext,
    PeepholeOptimise2Q,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveRedundancies,
)
from repro.passes.optimization import collect_2q_blocks, commutes

_ALL_OPTIMIZATION_PASSES = [
    Optimize1qGatesDecomposition,
    RemoveRedundancies,
    CXCancellation,
    InverseCancellation,
    CommutativeCancellation,
    CommutativeInverseCancellation,
    OptimizeCliffords,
    CliffordSimp,
    Collect2qBlocksConsolidate,
    PeepholeOptimise2Q,
    FullPeepholeOptimise,
]


class TestUnitaryPreservation:
    @pytest.mark.parametrize("pass_cls", _ALL_OPTIMIZATION_PASSES, ids=lambda c: c.__name__)
    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits(self, pass_cls, seed):
        circuit = random_circuit(4, 8, seed=seed)
        out = pass_cls().run(circuit, PassContext())
        assert allclose_up_to_global_phase(circuit_unitary(out), circuit_unitary(circuit))

    @pytest.mark.parametrize("pass_cls", _ALL_OPTIMIZATION_PASSES, ids=lambda c: c.__name__)
    def test_native_ibm_circuit(self, pass_cls, montreal):
        circuit = random_circuit(3, 6, seed=17)
        native = BasisTranslator().run(circuit, PassContext(device=montreal))
        out = pass_cls().run(native, PassContext(device=montreal))
        assert allclose_up_to_global_phase(circuit_unitary(out), circuit_unitary(native))

    @pytest.mark.parametrize("pass_cls", _ALL_OPTIMIZATION_PASSES, ids=lambda c: c.__name__)
    def test_never_increases_two_qubit_count(self, pass_cls):
        circuit = random_circuit(4, 10, seed=23)
        out = pass_cls().run(circuit, PassContext())
        assert out.num_two_qubit_gates() <= circuit.num_two_qubit_gates()

    @pytest.mark.parametrize("pass_cls", _ALL_OPTIMIZATION_PASSES, ids=lambda c: c.__name__)
    def test_empty_circuit_is_noop(self, pass_cls):
        circuit = QuantumCircuit(3)
        out = pass_cls().run(circuit, PassContext())
        assert len(out) == 0

    @pytest.mark.parametrize("pass_cls", _ALL_OPTIMIZATION_PASSES, ids=lambda c: c.__name__)
    def test_measurements_preserved(self, pass_cls):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure_all()
        out = pass_cls().run(circuit, PassContext())
        assert out.count_ops()["measure"] == 2


class TestOptimize1q:
    def test_merges_rotation_run(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        circuit.rz(0.4, 0)
        circuit.rz(-0.1, 0)
        out = Optimize1qGatesDecomposition(basis="u3").run(circuit, PassContext())
        assert out.size() == 1

    def test_removes_identity_run(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.h(0)
        out = Optimize1qGatesDecomposition(basis="rz_sx").run(circuit, PassContext())
        assert out.size() == 0

    def test_uses_device_basis_from_context(self, montreal):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.t(0)
        circuit.h(0)
        out = Optimize1qGatesDecomposition().run(circuit, PassContext(device=montreal))
        assert out.gate_names() <= {"rz", "sx", "x"}

    def test_does_not_lengthen_in_basis_single_gate(self):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        out = Optimize1qGatesDecomposition(basis="rz_sx").run(circuit, PassContext())
        assert out.size() == 1

    def test_out_of_basis_gate_is_translated(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        out = Optimize1qGatesDecomposition(basis="rz_sx").run(circuit, PassContext())
        assert out.gate_names() <= {"rz", "sx"}

    def test_runs_bounded_by_two_qubit_gates(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.2, 0)
        circuit.cx(0, 1)
        circuit.rz(0.3, 0)
        out = Optimize1qGatesDecomposition(basis="u3").run(circuit, PassContext())
        # The CX prevents merging the two RZ gates.
        assert out.size() == 3


class TestCancellationPasses:
    def test_cx_cancellation_removes_adjacent_pair(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        out = CXCancellation().run(circuit, PassContext())
        assert out.size() == 0

    def test_cx_cancellation_keeps_reversed_pair(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        out = CXCancellation().run(circuit, PassContext())
        assert out.size() == 2

    def test_cx_cancellation_blocked_by_gate_in_between(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.h(1)
        circuit.cx(0, 1)
        out = CXCancellation().run(circuit, PassContext())
        assert out.size() == 3

    def test_inverse_cancellation_named_pairs(self):
        circuit = QuantumCircuit(1)
        circuit.s(0)
        circuit.sdg(0)
        circuit.t(0)
        circuit.tdg(0)
        out = InverseCancellation().run(circuit, PassContext())
        assert out.size() == 0

    def test_inverse_cancellation_rotations(self):
        circuit = QuantumCircuit(1)
        circuit.rx(0.4, 0)
        circuit.rx(-0.4, 0)
        out = InverseCancellation().run(circuit, PassContext())
        assert out.size() == 0

    def test_commutative_cancellation_through_control(self):
        # rz commutes with the control of CX: rz . cx . rz^-1 . cx -> nothing
        circuit = QuantumCircuit(2)
        circuit.rz(0.5, 0)
        circuit.cx(0, 1)
        circuit.rz(-0.5, 0)
        circuit.cx(0, 1)
        out = CommutativeCancellation().run(circuit, PassContext())
        assert out.size() == 0

    def test_commutative_cancellation_through_target(self):
        # x commutes with the target of CX.
        circuit = QuantumCircuit(2)
        circuit.x(1)
        circuit.cx(0, 1)
        circuit.x(1)
        circuit.cx(0, 1)
        out = CommutativeCancellation().run(circuit, PassContext())
        assert out.size() == 0

    def test_commutative_cancellation_does_not_cancel_non_commuting(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.5, 1)  # acts on the TARGET of the cx: does not commute
        circuit.cx(0, 1)
        circuit.rz(-0.5, 1)
        out = CommutativeCancellation().run(circuit, PassContext())
        assert out.size() == 3

    def test_commutative_cancellation_merges_rotations(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.25, 0)
        circuit.cx(0, 1)
        circuit.rz(0.5, 0)
        out = CommutativeCancellation().run(circuit, PassContext())
        rz_gates = [i for i in out if i.name == "rz"]
        assert len(rz_gates) == 1
        assert rz_gates[0].params[0] == pytest.approx(0.75)

    def test_commutative_inverse_handles_arbitrary_gates(self):
        circuit = QuantumCircuit(2)
        circuit.crz(0.7, 0, 1)
        circuit.rz(0.2, 0)
        circuit.crz(-0.7, 0, 1)
        out = CommutativeInverseCancellation().run(circuit, PassContext())
        assert out.size() == 1

    def test_remove_diagonal_before_measure(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.rz(0.3, 0)
        circuit.t(1)
        circuit.measure_all()
        out = RemoveDiagonalGatesBeforeMeasure().run(circuit, PassContext())
        assert "rz" not in out.gate_names()
        assert "t" not in out.gate_names()
        assert "h" in out.gate_names()

    def test_remove_diagonal_keeps_gates_not_before_measure(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.3, 0)
        circuit.h(0)
        circuit.measure(0, 0)
        out = RemoveDiagonalGatesBeforeMeasure().run(circuit, PassContext())
        assert "rz" in out.gate_names()

    def test_remove_diagonal_two_qubit_gate(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        circuit.cz(0, 1)
        circuit.measure_all()
        out = RemoveDiagonalGatesBeforeMeasure().run(circuit, PassContext())
        assert "cz" not in out.gate_names()


class TestCommutationRules:
    def test_disjoint_gates_commute(self):
        a = Instruction(Gate("h"), (0,))
        b = Instruction(Gate("x"), (1,))
        assert commutes(a, b)

    def test_diagonal_gates_commute(self):
        a = Instruction(Gate("rz", (0.3,)), (0,))
        b = Instruction(Gate("cz"), (0, 1))
        assert commutes(a, b)

    def test_control_side_diagonal_commutes_with_cx(self):
        a = Instruction(Gate("t"), (0,))
        b = Instruction(Gate("cx"), (0, 1))
        assert commutes(a, b)

    def test_target_side_x_commutes_with_cx(self):
        a = Instruction(Gate("sx"), (1,))
        b = Instruction(Gate("cx"), (0, 1))
        assert commutes(a, b)

    def test_target_side_z_does_not_commute_with_cx(self):
        a = Instruction(Gate("rz", (0.3,)), (1,))
        b = Instruction(Gate("cx"), (0, 1))
        assert not commutes(a, b)

    def test_cx_sharing_control_commute(self):
        a = Instruction(Gate("cx"), (0, 1))
        b = Instruction(Gate("cx"), (0, 2))
        assert commutes(a, b)

    def test_cx_sharing_target_commute(self):
        a = Instruction(Gate("cx"), (0, 2))
        b = Instruction(Gate("cx"), (1, 2))
        assert commutes(a, b)

    def test_overlapping_cx_do_not_commute(self):
        a = Instruction(Gate("cx"), (0, 1))
        b = Instruction(Gate("cx"), (1, 2))
        assert not commutes(a, b)

    def test_measure_never_commutes(self):
        a = Instruction(Gate("measure"), (0,), (0,))
        b = Instruction(Gate("rz", (0.1,)), (0,))
        assert not commutes(a, b)

    def test_conservative_rules_are_sound(self):
        """Every pair the rules declare commuting must actually commute."""
        from repro.linalg import instruction_unitary

        candidates = [
            Instruction(Gate("rz", (0.4,)), (0,)),
            Instruction(Gate("x"), (1,)),
            Instruction(Gate("sx"), (1,)),
            Instruction(Gate("t"), (2,)),
            Instruction(Gate("cx"), (0, 1)),
            Instruction(Gate("cx"), (0, 2)),
            Instruction(Gate("cx"), (1, 2)),
            Instruction(Gate("cz"), (0, 1)),
            Instruction(Gate("rzz", (0.7,)), (1, 2)),
            Instruction(Gate("swap"), (0, 2)),
        ]
        for a in candidates:
            for b in candidates:
                if commutes(a, b):
                    ua = instruction_unitary(a, 3)
                    ub = instruction_unitary(b, 3)
                    assert np.allclose(ua @ ub, ub @ ua), (a, b)


class TestRemoveRedundancies:
    def test_zero_angle_rotations_removed(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.0, 0)
        circuit.rzz(2 * np.pi, 0, 1)
        circuit.h(0)
        out = RemoveRedundancies().run(circuit, PassContext())
        assert out.size() == 1

    def test_adjacent_rotations_merged(self):
        circuit = QuantumCircuit(1)
        circuit.rx(0.3, 0)
        circuit.rx(0.4, 0)
        out = RemoveRedundancies().run(circuit, PassContext())
        assert out.size() == 1
        assert out[0].params[0] == pytest.approx(0.7)

    def test_self_inverse_pair_cancelled(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.swap(1, 0)
        out = RemoveRedundancies().run(circuit, PassContext())
        assert out.size() == 0

    def test_identity_gates_dropped(self):
        circuit = QuantumCircuit(1)
        circuit.i(0)
        circuit.i(0)
        out = RemoveRedundancies().run(circuit, PassContext())
        assert out.size() == 0


class TestCliffordPasses:
    def test_optimize_cliffords_folds_run(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.s(0)
        circuit.s(0)
        circuit.h(0)  # H Z H = X: should fold to a single gate
        out = OptimizeCliffords().run(circuit, PassContext())
        assert out.size() <= 2
        assert allclose_up_to_global_phase(circuit_unitary(out), circuit_unitary(circuit))

    def test_optimize_cliffords_leaves_non_clifford(self):
        circuit = QuantumCircuit(1)
        circuit.t(0)
        circuit.h(0)
        out = OptimizeCliffords().run(circuit, PassContext())
        assert "t" in out.gate_names()

    def test_clifford_simp_reduces_cx_pattern(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        circuit.h(0)
        circuit.h(0)
        out = CliffordSimp().run(circuit, PassContext())
        assert out.size() == 0


class TestBlockPasses:
    def test_collect_blocks_finds_pair_block(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.rz(0.3, 1)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        blocks = collect_2q_blocks(circuit)
        sizes = sorted(len(b) for b in blocks)
        assert sizes == [1, 3]

    def test_consolidate_reduces_redundant_block(self):
        circuit = QuantumCircuit(2)
        # Three CX and interleaved 1q rotations that fuse to something simpler.
        circuit.cx(0, 1)
        circuit.rz(0.2, 0)
        circuit.cx(0, 1)
        circuit.rz(-0.2, 0)
        circuit.cx(0, 1)
        out = Collect2qBlocksConsolidate().run(circuit, PassContext())
        assert out.num_two_qubit_gates() <= 2
        assert allclose_up_to_global_phase(circuit_unitary(out), circuit_unitary(circuit))

    def test_consolidate_keeps_efficient_block(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        out = Collect2qBlocksConsolidate().run(circuit, PassContext())
        assert out.num_two_qubit_gates() == 1

    def test_peephole_cleans_single_qubit_gates_too(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(0)
        circuit.cx(0, 1)
        out = PeepholeOptimise2Q().run(circuit, PassContext())
        assert out.size() == 1

    def test_full_peephole_on_larger_circuit(self):
        circuit = random_circuit(4, 15, seed=31)
        out = FullPeepholeOptimise().run(circuit, PassContext())
        assert out.size() <= circuit.size()
        assert allclose_up_to_global_phase(circuit_unitary(out), circuit_unitary(circuit))

    def test_block_resynthesis_respects_device_basis(self):
        device = get_device("rigetti_aspen_m2")
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(0.2, 0)
        circuit.cx(0, 1)
        circuit.rz(-0.2, 0)
        circuit.cx(0, 1)
        out = Collect2qBlocksConsolidate().run(circuit, PassContext(device=device))
        assert allclose_up_to_global_phase(circuit_unitary(out), circuit_unitary(circuit))
