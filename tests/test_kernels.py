"""Property and regression tests for the batched hot-path kernels.

Three families of guarantees are pinned here:

* **bit-identity** — ``gate_matrices_batch`` / ``run_products_batch`` must
  reproduce the scalar constructions byte-for-byte (the golden preset traces
  depend on it);
* **equivalence** — ``synthesize_1q_batch`` emits the same gate sequences as
  per-matrix ``synthesize_1q`` across random SU(2) inputs in every basis, the
  batched feature vectors equal the per-circuit path across the benchmark
  suite, and the incremental ``RemoveRedundancies`` matches the fixed point
  of the reference single-pass sweep;
* **golden guard** — the batched ``Optimize1qGatesDecomposition`` is compared
  against the scalar ``_resynthesize`` reference on real preset-flow
  circuits, and the golden cases exercising the pass are re-pinned, so a
  kernel regression fails here with a pointed message before it fails in the
  broad trace test.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench import benchmark_circuit, benchmark_suite
from repro.circuit import QuantumCircuit
from repro.circuit.gates import Gate, Instruction, gate_matrix
from repro.compilers import preset_pass_manager, run_preset_manager
from repro.devices import get_device
from repro.features import FEATURE_NAMES, feature_dict, feature_vector, feature_vectors_batch
from repro.features.supermarq import (
    critical_depth,
    entanglement_ratio,
    liveness,
    parallelism,
    program_communication,
)
from repro.linalg import (
    allclose_up_to_global_phase,
    allclose_up_to_global_phase_batch,
    gate_matrices_batch,
    run_products_batch,
    synthesize_1q,
    synthesize_1q_batch,
    u3_angles,
    u3_angles_batch,
)
from repro.passes import Optimize1qGatesDecomposition, RemoveRedundancies
from repro.passes.base import PassContext

_GOLDEN_PATH = Path(__file__).parent / "golden" / "preset_traces.json"

#: gate families the batched constructors must cover (parameterless + parametrised)
_PARAMETERLESS = ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg"]
_ONE_PARAM = ["rz", "rx", "ry", "p"]


def _random_1q_gates(rng: np.random.Generator, n: int) -> list[Gate]:
    gates = []
    for _ in range(n):
        kind = rng.integers(0, 4)
        if kind == 0:
            gates.append(Gate(str(rng.choice(_PARAMETERLESS))))
        elif kind == 1:
            gates.append(Gate(str(rng.choice(_ONE_PARAM)), (float(rng.uniform(-4, 4)),)))
        elif kind == 2:
            gates.append(Gate("u", tuple(float(v) for v in rng.uniform(-4, 4, 3))))
        else:
            gates.append(Gate("u2", tuple(float(v) for v in rng.uniform(-4, 4, 2))))
    return gates


def _random_su2_products(rng: np.random.Generator, n: int) -> np.ndarray:
    """Random 2x2 unitaries built exactly like the pass builds run products."""
    out = np.empty((n, 2, 2), dtype=complex)
    for i in range(n):
        product = np.eye(2, dtype=complex)
        for gate in _random_1q_gates(rng, int(rng.integers(1, 7))):
            product = gate_matrix(gate) @ product
        out[i] = product
    return out


class TestGateMatricesBatch:
    def test_bit_identical_to_scalar_constructor(self):
        rng = np.random.default_rng(7)
        gates = _random_1q_gates(rng, 300)
        batch = gate_matrices_batch(gates)
        for i, gate in enumerate(gates):
            expected = gate_matrix(gate)
            assert batch[i].tobytes() == expected.tobytes(), gate.name

    def test_rejects_multi_qubit_gates(self):
        with pytest.raises(ValueError):
            gate_matrices_batch([Gate("cx")])

    def test_empty_input(self):
        assert gate_matrices_batch([]).shape == (0, 2, 2)


class TestRunProductsBatch:
    def test_bit_identical_to_sequential_products(self):
        rng = np.random.default_rng(11)
        runs = [_random_1q_gates(rng, int(rng.integers(1, 9))) for _ in range(40)]
        flat = [g for run in runs for g in run]
        products = run_products_batch(gate_matrices_batch(flat), [len(r) for r in runs])
        for i, run in enumerate(runs):
            expected = np.eye(2, dtype=complex)
            for gate in run:
                expected = gate_matrix(gate) @ expected
            assert products[i].tobytes() == expected.tobytes()

    def test_empty_batch(self):
        assert run_products_batch(np.empty((0, 2, 2), dtype=complex), []).shape == (0, 2, 2)


class TestAllcloseUpToGlobalPhaseBatch:
    def test_matches_scalar_check(self):
        rng = np.random.default_rng(13)
        a = _random_su2_products(rng, 60)
        b = _random_su2_products(rng, 60)
        # Mix in exact matches, phase-shifted matches, and mismatches.
        b[::3] = a[::3]
        b[1::3] = a[1::3] * np.exp(0.37j)
        batch = allclose_up_to_global_phase_batch(a, b)
        for i in range(len(a)):
            assert batch[i] == allclose_up_to_global_phase(a[i], b[i])

    def test_broadcast_single_target(self):
        eye = np.eye(2, dtype=complex)
        stack = np.stack([eye, np.exp(1.2j) * eye, gate_matrix(Gate("x"))])
        result = allclose_up_to_global_phase_batch(stack, eye)
        assert list(result) == [True, True, False]


class TestU3AnglesBatch:
    def test_matches_scalar_angles(self):
        rng = np.random.default_rng(17)
        matrices = _random_su2_products(rng, 80)
        theta, phi, lam, phase = u3_angles_batch(matrices)
        for i in range(len(matrices)):
            st, sp, sl, sph = u3_angles(matrices[i])
            assert theta[i] == pytest.approx(st, abs=1e-12)
            assert phi[i] == pytest.approx(sp, abs=1e-12)
            assert lam[i] == pytest.approx(sl, abs=1e-12)
            assert phase[i] == pytest.approx(sph, abs=1e-12)

    def test_degenerate_diagonal_and_antidiagonal(self):
        matrices = np.stack(
            [gate_matrix(Gate("rz", (0.7,))), gate_matrix(Gate("x")), np.eye(2, dtype=complex)]
        )
        theta, phi, lam, phase = u3_angles_batch(matrices)
        for i in range(len(matrices)):
            st, sp, sl, sph = u3_angles(matrices[i])
            assert (theta[i], phi[i], lam[i], phase[i]) == (st, sp, sl, sph)


class TestSynthesize1qBatch:
    @pytest.mark.parametrize("basis", ["rz_sx", "rz_rx", "rz_ry", "u3"])
    def test_equivalent_to_scalar_synthesis(self, basis):
        rng = np.random.default_rng(23)
        matrices = _random_su2_products(rng, 100)
        batch = synthesize_1q_batch(matrices, basis)
        for i in range(len(matrices)):
            scalar = synthesize_1q(matrices[i], basis)
            got = batch[i]
            assert [(g.name, g.params) for g in got.gates] == [
                (g.name, g.params) for g in scalar.gates
            ]
            # Phases may pick a different argmax element on exact magnitude
            # ties; they must still describe the same global phase.
            delta = (got.global_phase - scalar.global_phase) % (2 * np.pi)
            assert min(delta, 2 * np.pi - delta) < 1e-7

    @pytest.mark.parametrize("basis", ["rz_sx", "rz_rx", "rz_ry"])
    def test_reconstruction_matches_input(self, basis):
        rng = np.random.default_rng(29)
        matrices = _random_su2_products(rng, 30)
        for matrix, decomp in zip(matrices, synthesize_1q_batch(matrices, basis)):
            product = np.eye(2, dtype=complex)
            for gate in decomp.gates:
                product = gate_matrix(gate) @ product
            assert allclose_up_to_global_phase(product, matrix)

    def test_empty_batch(self):
        assert synthesize_1q_batch(np.empty((0, 2, 2), dtype=complex)) == []

    def test_unknown_basis_rejected(self):
        with pytest.raises(ValueError):
            synthesize_1q_batch(np.eye(2, dtype=complex)[None], "bogus")


class TestFeatureBatchEquivalence:
    @pytest.fixture(scope="class")
    def suite(self):
        return benchmark_suite(min_qubits=2, max_qubits=6, step=2)

    def test_batched_vectors_equal_per_circuit(self, suite):
        batch = feature_vectors_batch(suite)
        assert batch.shape == (len(suite), len(FEATURE_NAMES))
        for i, circuit in enumerate(suite):
            assert np.array_equal(batch[i], feature_vector(circuit)), circuit.name

    def test_vector_equals_dict_in_feature_order(self, suite):
        # Satellite regression: the direct array path must reproduce the old
        # dict-then-readout values exactly, in FEATURE_NAMES order.
        for circuit in suite:
            named = feature_dict(circuit)
            vector = feature_vector(circuit)
            assert list(named) == list(FEATURE_NAMES)
            assert np.array_equal(vector, np.array([named[k] for k in FEATURE_NAMES]))

    def test_table_features_equal_standalone_functions(self, suite):
        # The single-sweep table must agree with the five per-feature walks
        # it replaced.
        for circuit in suite:
            named = feature_dict(circuit)
            assert named["program_communication"] == program_communication(circuit)
            assert named["critical_depth"] == critical_depth(circuit)
            assert named["entanglement_ratio"] == entanglement_ratio(circuit)
            assert named["parallelism"] == parallelism(circuit)
            assert named["liveness"] == liveness(circuit)

    def test_empty_batch(self):
        assert feature_vectors_batch([]).shape == (0, len(FEATURE_NAMES))

    def test_empty_circuit(self):
        empty = QuantumCircuit(3, name="empty")
        assert np.array_equal(feature_vectors_batch([empty])[0], feature_vector(empty))


class TestAnalysisCacheWarmFeatures:
    def test_warm_features_preloads_the_fleet_cache(self):
        from repro.pipeline import AnalysisCache

        circuits = benchmark_suite(min_qubits=3, max_qubits=3, names=["ghz", "dj", "qft"])
        cache = AnalysisCache()
        assert cache.warm_features(circuits) == len(circuits)
        hits_before = cache.hits
        for circuit in circuits:
            assert np.array_equal(cache.feature_vector(circuit), feature_vector(circuit))
        assert cache.hits == hits_before + len(circuits)
        # A second warm-up finds everything cached.
        assert cache.warm_features(circuits) == 0


class TestRemoveRedundanciesIncremental:
    def _reference_fixed_point(self, circuit: QuantumCircuit) -> list:
        """The pre-worklist algorithm: iterate the full sweep to fixed point."""
        pass_ = RemoveRedundancies()
        instructions = [i for i in circuit if i.name != "id"]
        changed = True
        while changed:
            instructions, changed = pass_._single_pass(instructions)
        return instructions

    def _random_deep_circuit(self, rng: np.random.Generator, num_qubits: int, depth: int):
        circuit = QuantumCircuit(num_qubits, name="deep")
        for _ in range(depth):
            kind = rng.integers(0, 6)
            q = int(rng.integers(num_qubits))
            if kind == 0:
                circuit.append_instruction(Instruction(Gate(str(rng.choice(["h", "x", "s", "sdg", "id"]))), (q,)))
            elif kind == 1:
                angle = float(rng.choice([0.0, 0.3, -0.3, np.pi, 2 * np.pi]))
                circuit.append_instruction(Instruction(Gate(str(rng.choice(["rz", "rx", "ry"])), (angle,)), (q,)))
            elif kind == 2 and num_qubits > 1:
                r = int(rng.integers(num_qubits - 1))
                a, b = (r, r + 1) if rng.integers(2) else (r + 1, r)
                circuit.append_instruction(Instruction(Gate("cx"), (a, b)))
            elif kind == 3 and num_qubits > 1:
                r = int(rng.integers(num_qubits - 1))
                circuit.append_instruction(Instruction(Gate("rzz", (float(rng.uniform(-1, 1)),)), (r, r + 1)))
            elif kind == 4:
                circuit.barrier()
            else:
                circuit.append_instruction(Instruction(Gate("t"), (q,)))
        return circuit

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_reference_fixed_point_on_random_circuits(self, seed):
        rng = np.random.default_rng(seed)
        circuit = self._random_deep_circuit(rng, num_qubits=4, depth=120)
        result = RemoveRedundancies().run(circuit, PassContext())
        reference = self._reference_fixed_point(circuit)
        got = [(i.name, i.params, i.qubits) for i in result]
        want = [(i.name, i.params, i.qubits) for i in reference]
        assert got == want

    def test_cascading_merges_need_multiple_sweeps(self):
        # rz(a) h h rz(b): sweep 1 cancels the h pair, sweep 2 merges the
        # rotations — the worklist restriction must still find the second merge.
        circuit = QuantumCircuit(1)
        circuit.rz(0.4, 0)
        circuit.h(0)
        circuit.h(0)
        circuit.rz(0.5, 0)
        result = RemoveRedundancies().run(circuit, PassContext())
        merged = (0.4 + 0.5 + np.pi) % (2 * np.pi) - np.pi
        assert [(i.name, i.params) for i in result] == [("rz", (merged,))]

    def test_benchmark_circuits_match_reference(self):
        for circuit in benchmark_suite(min_qubits=3, max_qubits=5, step=2,
                                       names=["ghz", "qft", "vqe", "wstate"]):
            result = RemoveRedundancies().run(circuit, PassContext())
            reference = self._reference_fixed_point(circuit)
            assert [(i.name, i.params, i.qubits, i.clbits) for i in result] == [
                (i.name, i.params, i.qubits, i.clbits) for i in reference
            ]


def _scalar_resynthesize_batch(runs, basis):
    """The pre-batch reference: resynthesise each run with the scalar path."""
    return [
        Optimize1qGatesDecomposition._resynthesize(run, qubit, basis) for run, qubit in runs
    ]


class TestOptimize1qGoldenGuard:
    """Fail fast (and specifically) if the batched 1q pass ever diverges."""

    @pytest.mark.parametrize("basis", ["rz_sx", "rz_rx", "rz_ry", "u3"])
    def test_batch_pass_identical_to_scalar_pass(self, basis, monkeypatch):
        device = get_device("ibmq_washington")
        circuits = [
            benchmark_circuit("qft", 5),
            benchmark_circuit("vqe", 4),
            benchmark_circuit("su2random", 5),
        ]
        pass_ = Optimize1qGatesDecomposition(basis=basis)
        context = PassContext(device=device)
        batched = [pass_.run(c, context).fingerprint() for c in circuits]
        monkeypatch.setattr(
            Optimize1qGatesDecomposition,
            "_resynthesize_batch",
            classmethod(lambda cls, runs, b: _scalar_resynthesize_batch(runs, b)),
        )
        scalar = [pass_.run(c, context).fingerprint() for c in circuits]
        assert batched == scalar, (
            "batched Optimize1qGatesDecomposition diverged from the scalar "
            "reference — the golden preset traces will break"
        )

    def test_golden_cases_using_the_pass_still_match(self):
        cases = [
            case
            for case in json.loads(_GOLDEN_PATH.read_text())
            if "optimize_1q_gates" in case["trace"]
        ]
        assert cases, "no golden case exercises optimize_1q_gates"
        for case in cases:
            family, width = case["circuit"].rsplit("_", 1)
            circuit = benchmark_circuit(family, int(width))
            device = get_device(case["device"])
            manager = preset_pass_manager(
                case["style"], case["level"], iterate=case.get("iterate", False)
            )
            compiled, trace = run_preset_manager(manager, circuit, device, seed=case["seed"])
            assert trace == case["trace"]
            assert compiled.fingerprint() == case["fingerprint"], (
                f"golden fingerprint diverged for {case['style']}-o{case['level']} "
                f"{case['circuit']} on {case['device']} — check the 1q kernels"
            )


class TestProfilingPlumbing:
    def test_pass_and_kernel_counters_flow_to_service_stats(self):
        from repro.profiling import disable_profiling, enable_profiling, profiler

        enable_profiling(clear=True)
        try:
            circuit = benchmark_circuit("qft", 4)
            device = get_device("ibmq_washington")
            manager = preset_pass_manager("qiskit", 3)
            run_preset_manager(manager, circuit, device, seed=0)
            feature_vectors_batch([circuit])
            snapshot = profiler().snapshot()
        finally:
            disable_profiling()
        assert any(name.startswith("pass.") for name in snapshot)
        assert "kernel.feature_vectors_batch" in snapshot
        entry = snapshot["kernel.feature_vectors_batch"]
        assert entry["calls"] >= 1 and entry["items"] >= 1

    def test_prometheus_exposition_includes_hotpath_sites(self):
        from repro.gateway.metrics import render_prometheus

        stats = {
            "profiling": {
                "enabled": True,
                "counters": {
                    "pass.demo": {
                        "calls": 2,
                        "total_seconds": 0.25,
                        "mean_seconds": 0.125,
                        "items": 40,
                        "items_per_second": 160.0,
                    }
                },
            }
        }
        text = render_prometheus(stats)
        assert 'repro_service_hotpath_seconds_total{site="pass.demo"} 0.25' in text
        assert 'repro_service_hotpath_calls_total{site="pass.demo"} 2' in text
        assert 'repro_service_hotpath_items_total{site="pass.demo"} 40' in text

    def test_disabled_profiling_renders_nothing(self):
        from repro.gateway.metrics import render_prometheus

        text = render_prometheus({"profiling": {"enabled": False, "counters": {}}})
        assert "hotpath" not in text
