"""Unit tests for the Qiskit-style and TKET-style preset compilers."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import benchmark_circuit
from repro.compilers import (
    compile_qiskit_style,
    compile_tket_style,
    preset_pass_manager,
    qiskit_pipeline,
    run_preset_manager,
    tket_pipeline,
)
from repro.devices import get_device, list_devices
from repro.reward import expected_fidelity

_GOLDEN_PATH = Path(__file__).parent / "golden" / "preset_traces.json"


class TestQiskitStylePresets:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_all_levels_produce_executable_circuits(self, level, washington):
        circuit = benchmark_circuit("qft", 5)
        compiled, trace = qiskit_pipeline(circuit, washington, optimization_level=level)
        assert washington.is_executable(compiled)
        assert trace

    def test_invalid_level_rejected(self, washington):
        with pytest.raises(ValueError):
            qiskit_pipeline(benchmark_circuit("ghz", 3), washington, optimization_level=4)

    def test_higher_level_not_worse_on_qft(self, washington):
        circuit = benchmark_circuit("qft", 6)
        low, _ = qiskit_pipeline(circuit, washington, optimization_level=0)
        high, _ = qiskit_pipeline(circuit, washington, optimization_level=3)
        assert high.num_two_qubit_gates() <= low.num_two_qubit_gates()

    def test_measurements_survive(self, washington):
        circuit = benchmark_circuit("ghz", 4)
        compiled, _ = qiskit_pipeline(circuit, washington, optimization_level=3)
        assert compiled.count_ops()["measure"] == 4

    @pytest.mark.parametrize("device_name", list_devices())
    def test_works_for_every_device(self, device_name):
        device = get_device(device_name)
        circuit = benchmark_circuit("vqe", 4)
        compiled, _ = qiskit_pipeline(circuit, device, optimization_level=3)
        assert device.is_executable(compiled)

    def test_seed_reproducibility(self, washington):
        circuit = benchmark_circuit("qaoa", 5)
        first, _ = qiskit_pipeline(circuit, washington, optimization_level=3, seed=11)
        second, _ = qiskit_pipeline(circuit, washington, optimization_level=3, seed=11)
        assert first.count_ops() == second.count_ops()


class TestTketStylePresets:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_all_levels_produce_executable_circuits(self, level, washington):
        circuit = benchmark_circuit("qft", 5)
        compiled, _ = tket_pipeline(circuit, washington, optimization_level=level)
        assert washington.is_executable(compiled)

    def test_invalid_level_rejected(self, washington):
        with pytest.raises(ValueError):
            tket_pipeline(benchmark_circuit("ghz", 3), washington, optimization_level=3)

    @pytest.mark.parametrize("device_name", list_devices())
    def test_works_for_every_device(self, device_name):
        device = get_device(device_name)
        circuit = benchmark_circuit("wstate", 4)
        compiled, _ = tket_pipeline(circuit, device, optimization_level=2)
        assert device.is_executable(compiled)

    def test_uses_tket_passes(self, washington):
        _, trace = tket_pipeline(benchmark_circuit("ghz", 4), washington, optimization_level=2)
        assert "full_peephole_optimise" in trace
        assert "tket_routing" in trace


class TestRemovedShims:
    """The pre-facade entry points are gone; the stubs must name the replacement."""

    def test_compile_qiskit_style_raises_pointed_error(self, washington):
        with pytest.raises(RuntimeError, match=r"repro\.compile.*qiskit-o<level>"):
            compile_qiskit_style(benchmark_circuit("ghz", 3), washington)

    def test_compile_tket_style_raises_pointed_error(self, washington):
        with pytest.raises(RuntimeError, match=r"repro\.compile.*tket-o<level>"):
            compile_tket_style(benchmark_circuit("ghz", 3), washington)


def _golden_cases() -> list[dict]:
    return json.loads(_GOLDEN_PATH.read_text())


def _case_id(case: dict) -> str:
    suffix = "-iter" if case.get("iterate") else ""
    return f"{case['style']}-o{case['level']}{suffix}-{case['circuit']}-{case['device']}"


class TestGoldenTraces:
    """Pin the preset flows (base and ``-iter`` levels) to golden behaviour.

    The base-level entries were generated from the hand-rolled pipeline loops
    before they were replaced by declarative ``PassManager`` schedules; the
    ``iterate: true`` entries pin the experimental fixed-point levels
    (``qiskit-o3-iter`` / ``tket-o2-iter``) the same way.  Every
    (circuit, device, level, seed) combination must still produce the exact
    same pass trace and the exact same compiled circuit — including now that
    the schedules are registry-resolved pure-data specs.
    """

    @pytest.mark.parametrize("case", _golden_cases(), ids=_case_id)
    def test_trace_and_circuit_match_golden(self, case):
        family, width = case["circuit"].rsplit("_", 1)
        circuit = benchmark_circuit(family, int(width))
        device = get_device(case["device"])
        manager = preset_pass_manager(
            case["style"], case["level"], iterate=case.get("iterate", False)
        )
        compiled, trace = run_preset_manager(manager, circuit, device, seed=case["seed"])
        assert trace == case["trace"]
        assert compiled.fingerprint() == case["fingerprint"]
        assert dict(sorted(compiled.count_ops().items())) == case["ops"]
        assert compiled.depth() == case["depth"]


class TestBaselineQuality:
    def test_optimized_levels_reasonable_fidelity_small_circuit(self, washington):
        circuit = benchmark_circuit("ghz", 4)
        qiskit, _ = qiskit_pipeline(circuit, washington, optimization_level=3)
        tket, _ = tket_pipeline(circuit, washington, optimization_level=2)
        assert expected_fidelity(qiskit, washington) > 0.5
        assert expected_fidelity(tket, washington) > 0.5

    def test_both_baselines_compile_whole_small_suite(self, washington):
        from repro.bench import benchmark_suite

        for circuit in benchmark_suite(3, 4, step=1, names=["dj", "qaoa", "ae", "qftentangled"]):
            q, _ = qiskit_pipeline(circuit, washington, optimization_level=3)
            t, _ = tket_pipeline(circuit, washington, optimization_level=2)
            assert washington.is_executable(q)
            assert washington.is_executable(t)
