"""Unit tests for the Qiskit-style and TKET-style preset compilers."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import benchmark_circuit
from repro.compilers import (
    compile_qiskit_style,
    compile_tket_style,
    preset_pass_manager,
    run_preset_manager,
)
from repro.devices import get_device, list_devices
from repro.reward import expected_fidelity

_GOLDEN_PATH = Path(__file__).parent / "golden" / "preset_traces.json"


class TestQiskitStylePresets:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_all_levels_produce_executable_circuits(self, level, washington):
        circuit = benchmark_circuit("qft", 5)
        result = compile_qiskit_style(circuit, washington, optimization_level=level)
        assert washington.is_executable(result.circuit)
        assert result.device is washington
        assert result.passes

    def test_invalid_level_rejected(self, washington):
        with pytest.raises(ValueError):
            compile_qiskit_style(benchmark_circuit("ghz", 3), washington, optimization_level=4)

    def test_higher_level_not_worse_on_qft(self, washington):
        circuit = benchmark_circuit("qft", 6)
        low = compile_qiskit_style(circuit, washington, optimization_level=0)
        high = compile_qiskit_style(circuit, washington, optimization_level=3)
        assert high.circuit.num_two_qubit_gates() <= low.circuit.num_two_qubit_gates()

    def test_measurements_survive(self, washington):
        circuit = benchmark_circuit("ghz", 4)
        result = compile_qiskit_style(circuit, washington, optimization_level=3)
        assert result.circuit.count_ops()["measure"] == 4

    @pytest.mark.parametrize("device_name", list_devices())
    def test_works_for_every_device(self, device_name):
        device = get_device(device_name)
        circuit = benchmark_circuit("vqe", 4)
        result = compile_qiskit_style(circuit, device, optimization_level=3)
        assert device.is_executable(result.circuit)

    def test_seed_reproducibility(self, washington):
        circuit = benchmark_circuit("qaoa", 5)
        first = compile_qiskit_style(circuit, washington, optimization_level=3, seed=11)
        second = compile_qiskit_style(circuit, washington, optimization_level=3, seed=11)
        assert first.circuit.count_ops() == second.circuit.count_ops()


class TestTketStylePresets:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_all_levels_produce_executable_circuits(self, level, washington):
        circuit = benchmark_circuit("qft", 5)
        result = compile_tket_style(circuit, washington, optimization_level=level)
        assert washington.is_executable(result.circuit)

    def test_invalid_level_rejected(self, washington):
        with pytest.raises(ValueError):
            compile_tket_style(benchmark_circuit("ghz", 3), washington, optimization_level=3)

    @pytest.mark.parametrize("device_name", list_devices())
    def test_works_for_every_device(self, device_name):
        device = get_device(device_name)
        circuit = benchmark_circuit("wstate", 4)
        result = compile_tket_style(circuit, device, optimization_level=2)
        assert device.is_executable(result.circuit)

    def test_uses_tket_passes(self, washington):
        result = compile_tket_style(benchmark_circuit("ghz", 4), washington, optimization_level=2)
        assert "full_peephole_optimise" in result.passes
        assert "tket_routing" in result.passes


def _golden_cases() -> list[dict]:
    return json.loads(_GOLDEN_PATH.read_text())


def _case_id(case: dict) -> str:
    suffix = "-iter" if case.get("iterate") else ""
    return f"{case['style']}-o{case['level']}{suffix}-{case['circuit']}-{case['device']}"


class TestGoldenTraces:
    """Pin the preset flows (base and ``-iter`` levels) to golden behaviour.

    The base-level entries were generated from the hand-rolled pipeline loops
    before they were replaced by declarative ``PassManager`` schedules; the
    ``iterate: true`` entries pin the experimental fixed-point levels
    (``qiskit-o3-iter`` / ``tket-o2-iter``) the same way.  Every
    (circuit, device, level, seed) combination must still produce the exact
    same pass trace and the exact same compiled circuit.
    """

    @pytest.mark.parametrize("case", _golden_cases(), ids=_case_id)
    def test_trace_and_circuit_match_golden(self, case):
        family, width = case["circuit"].rsplit("_", 1)
        circuit = benchmark_circuit(family, int(width))
        device = get_device(case["device"])
        manager = preset_pass_manager(
            case["style"], case["level"], iterate=case.get("iterate", False)
        )
        compiled, trace = run_preset_manager(manager, circuit, device, seed=case["seed"])
        assert trace == case["trace"]
        assert compiled.fingerprint() == case["fingerprint"]
        assert dict(sorted(compiled.count_ops().items())) == case["ops"]
        assert compiled.depth() == case["depth"]


class TestBaselineQuality:
    def test_optimized_levels_reasonable_fidelity_small_circuit(self, washington):
        circuit = benchmark_circuit("ghz", 4)
        qiskit = compile_qiskit_style(circuit, washington, optimization_level=3)
        tket = compile_tket_style(circuit, washington, optimization_level=2)
        assert expected_fidelity(qiskit.circuit, washington) > 0.5
        assert expected_fidelity(tket.circuit, washington) > 0.5

    def test_both_baselines_compile_whole_small_suite(self, washington):
        from repro.bench import benchmark_suite

        for circuit in benchmark_suite(3, 4, step=1, names=["dj", "qaoa", "ae", "qftentangled"]):
            q = compile_qiskit_style(circuit, washington, optimization_level=3)
            t = compile_tket_style(circuit, washington, optimization_level=2)
            assert washington.is_executable(q.circuit)
            assert washington.is_executable(t.circuit)
