"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, from_qasm, random_circuit, to_qasm
from repro.circuit.gates import Gate, gate_inverse, gate_matrix
from repro.features import feature_vector
from repro.linalg import allclose_up_to_global_phase, circuit_unitary, synthesize_1q
from repro.passes import (
    CommutativeCancellation,
    FullPeepholeOptimise,
    InverseCancellation,
    Optimize1qGatesDecomposition,
    PassContext,
    RemoveRedundancies,
)

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_angles = st.floats(
    min_value=-2 * np.pi, max_value=2 * np.pi, allow_nan=False, allow_infinity=False
)
_seeds = st.integers(min_value=0, max_value=2**20)


@st.composite
def small_circuits(draw) -> QuantumCircuit:
    num_qubits = draw(st.integers(min_value=2, max_value=4))
    depth = draw(st.integers(min_value=1, max_value=8))
    seed = draw(_seeds)
    return random_circuit(num_qubits, depth, seed=seed)


class TestGateProperties:
    @_SETTINGS
    @given(name=st.sampled_from(["rz", "rx", "ry", "p"]), angle=_angles)
    def test_rotation_inverse_cancels(self, name, angle):
        gate = Gate(name, (angle,))
        product = gate_matrix(gate_inverse(gate)) @ gate_matrix(gate)
        assert allclose_up_to_global_phase(product, np.eye(2))

    @_SETTINGS
    @given(angle_a=_angles, angle_b=_angles)
    def test_rz_angles_add(self, angle_a, angle_b):
        combined = gate_matrix(Gate("rz", (angle_a + angle_b,)))
        product = gate_matrix(Gate("rz", (angle_b,))) @ gate_matrix(Gate("rz", (angle_a,)))
        assert allclose_up_to_global_phase(product, combined)

    @_SETTINGS
    @given(theta=_angles, phi=_angles, lam=_angles)
    def test_u_gate_synthesis_round_trip(self, theta, phi, lam):
        matrix = gate_matrix(Gate("u", (theta, phi, lam)))
        decomp = synthesize_1q(matrix, "rz_sx")
        assert np.allclose(decomp.matrix(), matrix, atol=1e-6)


class TestCircuitProperties:
    @_SETTINGS
    @given(circuit=small_circuits())
    def test_depth_never_exceeds_size(self, circuit):
        assert circuit.depth() <= circuit.size()

    @_SETTINGS
    @given(circuit=small_circuits())
    def test_inverse_composes_to_identity(self, circuit):
        product = circuit_unitary(circuit.inverse()) @ circuit_unitary(circuit)
        assert allclose_up_to_global_phase(product, np.eye(2**circuit.num_qubits))

    @_SETTINGS
    @given(circuit=small_circuits())
    def test_qasm_round_trip_preserves_unitary(self, circuit):
        rebuilt = from_qasm(to_qasm(circuit))
        assert allclose_up_to_global_phase(
            circuit_unitary(rebuilt), circuit_unitary(circuit)
        )

    @_SETTINGS
    @given(circuit=small_circuits())
    def test_features_are_normalised(self, circuit):
        vector = feature_vector(circuit)
        assert np.all(vector >= 0.0) and np.all(vector <= 1.0)
        assert np.all(np.isfinite(vector))

    @_SETTINGS
    @given(circuit=small_circuits())
    def test_copy_equals_original(self, circuit):
        assert circuit.copy() == circuit


_PASSES = [
    Optimize1qGatesDecomposition,
    RemoveRedundancies,
    InverseCancellation,
    CommutativeCancellation,
    FullPeepholeOptimise,
]


class TestPassProperties:
    @_SETTINGS
    @given(circuit=small_circuits(), pass_index=st.integers(min_value=0, max_value=len(_PASSES) - 1))
    def test_optimization_preserves_unitary(self, circuit, pass_index):
        pass_ = _PASSES[pass_index]()
        optimized = pass_.run(circuit, PassContext())
        assert allclose_up_to_global_phase(
            circuit_unitary(optimized), circuit_unitary(circuit)
        )

    @_SETTINGS
    @given(circuit=small_circuits(), pass_index=st.integers(min_value=0, max_value=len(_PASSES) - 1))
    def test_optimization_never_increases_2q_count(self, circuit, pass_index):
        pass_ = _PASSES[pass_index]()
        optimized = pass_.run(circuit, PassContext())
        assert optimized.num_two_qubit_gates() <= circuit.num_two_qubit_gates()

    @_SETTINGS
    @given(circuit=small_circuits())
    def test_optimization_is_idempotent_for_inverse_cancellation(self, circuit):
        once = InverseCancellation().run(circuit, PassContext())
        twice = InverseCancellation().run(once, PassContext())
        assert once.count_ops() == twice.count_ops()


def _registry_pass_actions():
    from repro.core.actions import ActionKind, build_action_registry

    pass_kinds = (ActionKind.SYNTHESIS, ActionKind.MAPPING, ActionKind.OPTIMIZATION)
    return [a for a in build_action_registry() if a.kind in pass_kinds]


class TestRegistryPassesNeverMutateInput:
    """Every registered compilation action obeys the circuit-in/circuit-out contract.

    The unified-interface requirement of the paper (and the safety of the
    fingerprint-keyed analysis cache) depends on passes *never* mutating
    their input circuit — whether they succeed or raise.
    """

    @_SETTINGS
    @given(circuit=small_circuits(), seed=_seeds)
    def test_all_registered_passes_leave_input_untouched(self, circuit, seed, line5_device):
        snapshot = list(circuit.instructions)
        num_qubits = circuit.num_qubits
        fingerprint = circuit.fingerprint()
        for action in _registry_pass_actions():
            context = PassContext(device=line5_device, seed=int(seed))
            try:
                result = action.payload(circuit, context)
            except Exception:  # noqa: BLE001 - failing passes must not mutate either
                result = None
            assert circuit.num_qubits == num_qubits, action.name
            assert circuit.instructions == snapshot, action.name
            assert circuit.fingerprint() == fingerprint, action.name
            if result is not None:
                assert result is not circuit, action.name
