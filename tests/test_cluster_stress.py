"""Multi-process cluster stress tests (``pytest -m stress`` lane).

Where ``test_cluster.py`` exercises the fabric in-process, this suite runs
the real thing: ``python -m repro.service`` hosts in subprocesses, TCP cache
shards with a shared authkey file, request forwarding between processes, and
a rolling restart under sustained load.  The acceptance criteria of the
multi-node fabric are asserted end to end:

* two hosts sharing TCP cache shards see each other's results (cross-host
  cache hits);
* killing one shard mid-load degrades to local compute — no request fails;
* a forwarded request carries priority, deadline, ``pass_overrides`` and
  trace context intact across the process boundary;
* a rolling restart of both hosts under sustained load completes with zero
  lost accepted requests.
"""

from __future__ import annotations

import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.bench import benchmark_circuit
from repro.service import CacheServer, ServiceClient, rolling_restart

pytestmark = pytest.mark.stress

SRC = Path(__file__).resolve().parent.parent / "src"


def _spawn_host(tmp_path, *extra_args: str):
    """Start ``python -m repro.service`` and parse its address + authkey."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin", "HOME": str(tmp_path)},
    )
    address = authkey = None
    for _ in range(100):
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if match:
            address = (match.group(1), int(match.group(2)))
        match = re.search(r"authkey: ([0-9a-f]+)", line)
        if match:
            authkey = bytes.fromhex(match.group(1))
            break
    assert address is not None and authkey is not None, "service host did not start"
    return proc, address, authkey


def _stop_host(proc) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - stuck server
        proc.kill()


@pytest.fixture()
def circuit():
    return benchmark_circuit("ghz", 4)


class TestTwoHostsSharedShards:
    def test_cross_host_cache_hits_and_shard_failure(self, circuit, tmp_path):
        """Two subprocess hosts + two TCP shards: shared hits, graceful loss."""
        cache_key = b"stress-cache-key"
        keyfile = tmp_path / "cache.key"
        keyfile.write_text(cache_key.hex())
        shard_a = CacheServer(maxsize=512, address=("127.0.0.1", 0), authkey=cache_key)
        shard_b = CacheServer(maxsize=512, address=("127.0.0.1", 0), authkey=cache_key)
        shard_flags = []
        for shard in (shard_a, shard_b):
            shard_flags += ["--cache-server", f"{shard.address[0]}:{shard.address[1]}"]
        shard_flags += ["--cache-authkey-file", str(keyfile), "--cache-timeout", "5.0"]

        proc_a, addr_a, key_a = _spawn_host(tmp_path, *shard_flags)
        proc_b, addr_b, key_b = _spawn_host(tmp_path, *shard_flags)
        try:
            with ServiceClient(address=addr_a, authkey=key_a) as client_a, ServiceClient(
                address=addr_b, authkey=key_b
            ) as client_b:
                # host A compiles; host B gets the result from the shared shards
                first = client_a.submit(circuit, "qiskit-o0").result(timeout=180)
                assert first.succeeded
                second = client_b.submit(circuit, "qiskit-o0").result(timeout=180)
                assert second.succeeded
                assert second.metadata.get("cached") is True
                stats_b = client_b.stats()
                assert stats_b["cache_hits"] == 1
                assert stats_b["cache"]["sharded"] is True
                assert stats_b["cache"]["shard_count"] == 2
                assert stats_b["cache"]["shards_down"] == 0

                # kill one shard mid-load: compiles keep succeeding and the
                # shard is reported down in stats
                shard_b.shutdown()
                results = [
                    client.submit(circuit, "qiskit-o0", seed=seed).result(timeout=180)
                    for seed in (10, 11)
                    for client in (client_a, client_b)
                ]
                assert all(result.succeeded for result in results)
                degraded = client_a.stats()["cache"]
                assert degraded["shards_down"] == 1
                down_rows = [row for row in degraded["shards"] if row["down"]]
                assert len(down_rows) == 1
        finally:
            _stop_host(proc_a)
            _stop_host(proc_b)
            shard_a.shutdown()
            shard_b.shutdown()


class TestCrossProcessForwarding:
    def test_forwarded_request_parity_across_processes(self, circuit, tmp_path):
        """Router host (subprocess) spills to a peer host (subprocess) with
        priority/deadline/pass_overrides/trace intact."""
        keyfile = tmp_path / "svc.key"
        proc_peer, addr_peer, _ = _spawn_host(tmp_path, "--authkey-file", str(keyfile))
        proc_router, addr_router, authkey = _spawn_host(
            tmp_path,
            "--authkey-file",
            str(keyfile),
            "--peer",
            f"{addr_peer[0]}:{addr_peer[1]}",
        )
        try:
            with ServiceClient(address=addr_router, authkey=authkey) as client:
                # drain the router's local service so everything spills
                client.set_draining(True)
                ctx = {"trace_id": "e" * 32, "span_id": "b" * 16}
                result = client.submit(
                    circuit,
                    "qiskit-o1",
                    device="ibmq_washington",
                    priority=5,
                    pass_overrides={"routing": "tket-routing"},
                    trace=ctx,
                ).result(timeout=180)
                assert result.succeeded
                assert result.metadata.get("forwarded_to") == (
                    f"{addr_peer[0]}:{addr_peer[1]}"
                )
                assert "+routing=tket_routing" in result.backend
                tree = result.metadata["trace"]
                assert tree["name"] == "service.forward"
                assert tree["trace_id"] == ctx["trace_id"]
                hop_children = [child["name"] for child in tree["children"]]
                assert "service.request" in hop_children

                expired = client.submit(circuit, "qiskit-o1", deadline=0).result(
                    timeout=180
                )
                assert not expired.succeeded
                assert expired.metadata.get("deadline_exceeded") is True

                stats = client.stats()
                assert stats["forwarding"]["forwarded"] >= 2
                peer_rows = stats["forwarding"]["peers"]
                assert peer_rows and peer_rows[0]["forwarded"] >= 2
        finally:
            _stop_host(proc_router)
            _stop_host(proc_peer)


class TestRollingRestartUnderLoad:
    N_LOAD_THREADS = 2

    def test_zero_lost_requests_across_full_cluster_restart(self, circuit, tmp_path):
        """Drain → restart → re-admit both hosts while clients keep submitting;
        every accepted request resolves successfully."""
        keyfile = tmp_path / "svc.key"
        procs = {}
        clients = {}
        for name in ("host-a", "host-b"):
            proc, address, authkey = _spawn_host(tmp_path, "--authkey-file", str(keyfile))
            procs[name] = proc
            clients[name] = ServiceClient(address=address, authkey=authkey)
        shared_authkey = bytes.fromhex(keyfile.read_text().strip())

        futures = []
        futures_lock = threading.Lock()
        stop = threading.Event()
        load_errors: list[Exception] = []

        def load_loop(index: int) -> None:
            seed = index * 10_000
            while not stop.is_set():
                # client-side routing: only submit to hosts that are ready,
                # exactly like a load balancer honouring the drain flag
                for name in list(clients):
                    client = clients[name]
                    try:
                        ready = client.health().get("ready")
                    except Exception:  # noqa: BLE001
                        continue  # host mid-restart: a real LB skips it
                    if not ready:
                        continue
                    try:
                        future = client.submit(circuit, "qiskit-o0", seed=seed % 50)
                    except Exception as exc:  # noqa: BLE001 - surfaced after join
                        load_errors.append(exc)
                        stop.set()
                        return
                    with futures_lock:
                        futures.append(future)
                    seed += 1
                time.sleep(0.02)

        threads = [
            threading.Thread(target=load_loop, args=(i,))
            for i in range(self.N_LOAD_THREADS)
        ]
        for thread in threads:
            thread.start()

        def restart(name, handle):
            # rolling_restart quiesced the *server* (unfinished == 0), but the
            # client's waiter thread may not have collected every finished
            # ticket yet — wait for that too before killing the process, or
            # delivered-but-uncollected results would be lost
            assert handle.health()["unfinished"] == 0
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with handle._pending_lock:
                    outstanding = len(handle._pending)
                if outstanding == 0:
                    break
                time.sleep(0.05)
            else:  # pragma: no cover - would mean lost tickets
                pytest.fail(f"{name}: client tickets never drained")
            _stop_host(procs[name])
            proc, address, _ = _spawn_host(tmp_path, "--authkey-file", str(keyfile))
            procs[name] = proc
            fresh = ServiceClient(address=address, authkey=shared_authkey)
            handle.close()
            clients[name] = fresh  # the load loop starts using the new host
            return fresh

        try:
            # let some load accumulate, then roll the whole cluster
            time.sleep(1.0)
            reports = rolling_restart(
                dict(clients), restart, drain_timeout=120, ready_timeout=60
            )
            time.sleep(1.0)  # post-restart load against the new incarnations
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
            assert not load_errors, load_errors[:3]
            assert [report.host for report in reports] == ["host-a", "host-b"]

            # zero lost accepted requests: every future resolves, successfully
            with futures_lock:
                accepted = list(futures)
            assert len(accepted) > 0
            results = [future.result(timeout=180) for future in accepted]
            assert all(result.succeeded for result in results)
            # both new incarnations are serving
            for client in clients.values():
                assert client.health()["ready"] is True
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            for client in clients.values():
                try:
                    client.close()
                except Exception:  # noqa: BLE001
                    pass
            for proc in procs.values():
                _stop_host(proc)
