"""Unit tests for the statevector simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import benchmark_circuit
from repro.circuit import QuantumCircuit, random_circuit
from repro.compilers import qiskit_pipeline
from repro.devices import get_device
from repro.simulation import StatevectorSimulator, sample_counts, simulate


class TestStatevector:
    def test_initial_state_is_all_zero(self):
        result = simulate(QuantumCircuit(2))
        assert np.allclose(result.statevector, [1, 0, 0, 0])

    def test_x_flips_qubit(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        result = simulate(circuit)
        # qubit 0 is the most significant bit -> |10>
        assert result.probability_of("10") == pytest.approx(1.0)

    def test_bell_state_probabilities(self, bell_circuit):
        result = simulate(bell_circuit)
        probs = result.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.0)

    def test_custom_initial_state(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        plus = np.array([1, 1]) / np.sqrt(2)
        result = StatevectorSimulator().run(circuit, initial_state=plus)
        assert np.allclose(np.abs(result.statevector) ** 2, [0.5, 0.5])

    def test_unnormalised_initial_state_rejected(self):
        with pytest.raises(ValueError):
            StatevectorSimulator().run(QuantumCircuit(1), initial_state=np.array([1.0, 1.0]))

    def test_too_many_qubits_rejected(self):
        with pytest.raises(ValueError):
            simulate(QuantumCircuit(25))

    def test_measurement_collapses_state(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.measure(0, 0)
        result = StatevectorSimulator(seed=3).run(circuit)
        probs = result.probabilities()
        assert max(probs) == pytest.approx(1.0)
        assert result.classical_bits[0] in (0, 1)

    def test_ghz_measurement_is_correlated(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.measure_all()
        for seed in range(5):
            result = StatevectorSimulator(seed=seed).run(circuit)
            bits = set(result.classical_bits.values())
            assert len(bits) == 1  # all zeros or all ones

    def test_reset_returns_qubit_to_zero(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.reset(0)
        result = simulate(circuit, seed=0)
        assert result.probability_of("0") == pytest.approx(1.0)


class TestSampling:
    def test_deterministic_circuit_counts(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.measure_all()
        counts = sample_counts(circuit, shots=100, seed=1)
        assert counts == {"10": 100}

    def test_bell_counts_roughly_half(self, bell_circuit):
        circuit = bell_circuit.copy()
        circuit.measure_all()
        counts = sample_counts(circuit, shots=2000, seed=2)
        assert set(counts) <= {"00", "11"}
        assert abs(counts.get("00", 0) - 1000) < 150

    def test_shots_add_up(self):
        circuit = benchmark_circuit("ghz", 4)
        counts = sample_counts(circuit, shots=512, seed=3)
        assert sum(counts.values()) == 512

    def test_partial_measurement_keys_have_right_width(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        counts = sample_counts(circuit, shots=64, seed=4)
        assert all(len(key) == 2 for key in counts)

    def test_mid_circuit_measurement_path(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(0)
        circuit.measure(0, 1)
        counts = sample_counts(circuit, shots=50, seed=5)
        assert sum(counts.values()) == 50
        # The second measurement is always the complement of the first.
        assert set(counts) <= {"01", "10"}


class TestCompilationPreservesSemantics:
    """Compiled circuits must produce the same output distribution as the originals."""

    @pytest.mark.parametrize("family", ["ghz", "dj", "wstate"])
    def test_baseline_compilation_preserves_distribution(self, family):
        # Use the all-to-all IonQ device so no qubit permutation is introduced
        # by routing; the compiled probability spectrum must then match the
        # original exactly (up to the padding qubits left in |0>).
        device = get_device("ionq_harmony")
        circuit = benchmark_circuit(family, 4)
        compiled, _ = qiskit_pipeline(circuit, device, optimization_level=3)

        original = np.sort(simulate(circuit.without_measurements()).probabilities())[::-1]
        compiled_probs = np.sort(
            simulate(compiled.without_measurements()).probabilities()
        )[::-1]
        assert np.allclose(compiled_probs[: len(original)], original, atol=1e-6)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuit_compilation_preserves_spectrum(self, seed):
        device = get_device("ionq_harmony")
        circuit = random_circuit(3, 5, seed=seed)
        compiled, _ = qiskit_pipeline(circuit, device, optimization_level=3)
        original = np.sort(simulate(circuit).probabilities())[::-1]
        compiled_probs = np.sort(simulate(compiled.without_measurements()).probabilities())[::-1]
        assert np.allclose(compiled_probs[: len(original)], original, atol=1e-6)
