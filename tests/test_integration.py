"""End-to-end integration tests exercising the full pipeline at small scale."""

from __future__ import annotations

import pytest

import repro
from repro import (
    Predictor,
    benchmark_circuit,
    benchmark_suite,
    expected_fidelity,
    get_device,
)
from repro.evaluation import (
    compare_predictor,
    cross_model_rewards,
    per_benchmark_differences,
    reward_difference_histogram,
    summarize,
)
from repro.rl import PPOConfig


class TestFullPipeline:
    def test_train_compile_compare(self, trained_predictor, washington):
        """Train (tiny budget), compile, and compare against both baselines."""
        circuits = benchmark_suite(3, 4, step=1, names=["ghz", "dj", "wstate"])
        records = compare_predictor(trained_predictor, circuits)
        summary = summarize(records)
        assert summary.num_circuits == len(circuits)
        # The trained model reaches an executable circuit for every benchmark.
        assert all(record.rl_reward > 0 for record in records)
        histogram = reward_difference_histogram(records)
        assert histogram.qiskit_frequencies.sum() == pytest.approx(1.0)
        per_benchmark = per_benchmark_differences(records)
        assert set(per_benchmark.benchmarks) == {"ghz", "dj", "wstate"}

    def test_rl_model_is_competitive_on_small_circuits(self, trained_predictor, washington):
        """On tiny circuits the RL flow should be in the same fidelity range as the baselines."""
        circuit = benchmark_circuit("ghz", 3)
        rl_result = trained_predictor.compile(circuit)
        qiskit = repro.compile(circuit, backend="qiskit-o3", device=washington)
        rl_fidelity = rl_result.reward
        qiskit_fidelity = expected_fidelity(qiskit.circuit, washington)
        assert rl_fidelity >= qiskit_fidelity - 0.2

    def test_table1_structure_single_model(self, trained_predictor):
        circuits = benchmark_suite(3, 3, step=1, names=["ghz", "qft"])
        table = cross_model_rewards({"fidelity": trained_predictor}, circuits)
        assert table.trained_for == ["fidelity"]
        assert table.values.shape == (1, 1)

    def test_critical_depth_predictor_trains(self, tiny_suite):
        predictor = Predictor(
            reward="critical_depth",
            max_steps=15,
            ppo_config=PPOConfig(n_steps=32, batch_size=16, n_epochs=2),
            seed=5,
        )
        predictor.train(tiny_suite[:4], total_timesteps=300)
        result = predictor.compile(benchmark_circuit("ghz", 3))
        assert 0.0 <= result.reward <= 1.0

    def test_every_device_reachable_by_env_episode(self, tiny_suite):
        """Manually driving the env can target every registered device."""
        from repro.core import CompilationEnv
        from repro.core.actions import ActionKind, TERMINATE_ACTION_NAME
        from repro.devices import list_devices

        for device_name in list_devices():
            device = get_device(device_name)
            env = CompilationEnv([benchmark_circuit("ghz", 3)], max_steps=20, seed=0)
            env.reset(seed=0)
            env.step(env.action_by_name(f"select_platform_{device.platform}").index)
            env.step(env.action_by_name(f"select_device_{device_name}").index)
            env.step(env.action_by_name("synthesis_basis_translator").index)
            if env.state.status.value != "done":
                env.step(env.action_by_name("map_sabre_layout_sabre_routing").index)
            assert env.state.status.value == "done", device_name
            _obs, reward, terminated, _trunc, _info = env.step(
                env.action_by_name(TERMINATE_ACTION_NAME).index
            )
            assert terminated and reward > 0
