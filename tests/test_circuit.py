"""Unit tests for the QuantumCircuit IR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Gate, Instruction, QuantumCircuit
from repro.linalg import allclose_up_to_global_phase, circuit_unitary


class TestConstruction:
    def test_empty_circuit(self):
        circuit = QuantumCircuit(3)
        assert circuit.num_qubits == 3
        assert len(circuit) == 0
        assert circuit.depth() == 0
        assert circuit.size() == 0

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(-1)

    def test_append_by_name_and_gate(self):
        circuit = QuantumCircuit(2)
        circuit.append("h", [0])
        circuit.append(Gate("rz", (0.5,)), [1])
        assert [i.name for i in circuit] == ["h", "rz"]

    def test_append_out_of_range_qubit(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError, match="out of range"):
            circuit.append("h", [2])

    def test_convenience_methods_chain(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rz(0.1, 2).ccx(0, 1, 2)
        assert circuit.size() == 4

    def test_measure_records_clbit(self):
        circuit = QuantumCircuit(2)
        circuit.measure(1, 0)
        assert circuit[0].clbits == (0,)
        assert circuit[0].qubits == (1,)

    def test_measure_all(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.measure_all()
        assert circuit.count_ops()["measure"] == 3

    def test_barrier_defaults_to_all_qubits(self):
        circuit = QuantumCircuit(4)
        circuit.barrier()
        assert circuit[0].qubits == (0, 1, 2, 3)

    def test_equality(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.h(0)
        assert a == b
        b.x(1)
        assert a != b


class TestMetrics:
    def test_depth_simple_chain(self, ghz5):
        # H + 4 CX in a chain: depth is 5
        assert ghz5.depth() == 5

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(4)
        for q in range(4):
            circuit.h(q)
        assert circuit.depth() == 1

    def test_depth_only_2q(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(1)
        circuit.cx(1, 2)
        assert circuit.depth(only_2q=True) == 2

    def test_barriers_do_not_add_depth(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.h(1)
        assert circuit.depth() == 1

    def test_count_ops(self, bell_circuit):
        counts = bell_circuit.count_ops()
        assert counts == {"h": 1, "cx": 1}

    def test_size_excludes_barriers(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        assert circuit.size() == 1
        assert len(circuit) == 2

    def test_num_two_qubit_gates(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.swap(1, 2)
        circuit.measure_all()
        assert circuit.num_two_qubit_gates() == 2

    def test_active_qubits(self):
        circuit = QuantumCircuit(5)
        circuit.h(1)
        circuit.cx(1, 3)
        assert circuit.active_qubits() == {1, 3}

    def test_gate_names_excludes_measure(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.measure_all()
        assert circuit.gate_names() == {"h"}

    def test_two_qubit_interactions(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        circuit.cz(2, 3)
        assert circuit.two_qubit_interactions() == {(0, 1), (2, 3)}

    def test_depth_with_measure_on_clbit_chain(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 0)
        # Both measurements write the same clbit, so they cannot overlap.
        assert circuit.depth() == 2

    def test_summary_mentions_counts(self, bell_circuit):
        text = bell_circuit.summary()
        assert "2 qubits" in text
        assert "cx:1" in text


class TestTransformations:
    def test_copy_is_independent(self, bell_circuit):
        copy = bell_circuit.copy()
        copy.x(0)
        assert len(copy) == len(bell_circuit) + 1

    def test_compose_identity_mapping(self, bell_circuit):
        other = QuantumCircuit(2)
        other.x(0)
        combined = bell_circuit.compose(other)
        assert [i.name for i in combined] == ["h", "cx", "x"]

    def test_compose_with_qubit_mapping(self):
        big = QuantumCircuit(4)
        small = QuantumCircuit(2)
        small.cx(0, 1)
        combined = big.compose(small, qubits=[2, 3])
        assert combined[0].qubits == (2, 3)

    def test_compose_wrong_mapping_length(self, bell_circuit):
        with pytest.raises(ValueError):
            bell_circuit.compose(QuantumCircuit(2), qubits=[0])

    def test_inverse_reverses_and_inverts(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(0.3, 1)
        inverse = circuit.inverse()
        assert [i.name for i in inverse] == ["rz", "cx", "h"]
        assert inverse[0].params == (-0.3,)
        product = circuit_unitary(inverse) @ circuit_unitary(circuit)
        assert allclose_up_to_global_phase(product, np.eye(4))

    def test_inverse_rejects_measurements(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0)
        with pytest.raises(ValueError):
            circuit.inverse()

    def test_remap_qubits(self, bell_circuit):
        remapped = bell_circuit.remap_qubits({0: 1, 1: 0})
        assert remapped[1].qubits == (1, 0)

    def test_without_final_measurements(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.measure_all()
        trimmed = circuit.without_final_measurements()
        assert trimmed.count_ops().get("measure", 0) == 0
        assert trimmed.size() == 1

    def test_without_ancillas_compacts(self):
        circuit = QuantumCircuit(6)
        circuit.h(2)
        circuit.cx(2, 5)
        compact, mapping = circuit.without_ancillas()
        assert compact.num_qubits == 2
        assert mapping == {2: 0, 5: 1}
        assert compact[1].qubits == (0, 1)

    def test_extend_with_instructions(self):
        circuit = QuantumCircuit(2)
        circuit.extend([Instruction(Gate("h"), (0,)), Instruction(Gate("cx"), (0, 1))])
        assert circuit.size() == 2

    def test_unitary_of_bell(self, bell_circuit):
        unitary = circuit_unitary(bell_circuit)
        state = unitary[:, 0]
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        assert np.allclose(state, expected)
