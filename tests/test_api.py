"""Unit tests for the unified compilation API: facade, registry, batch service."""

from __future__ import annotations

import pytest

import repro
from repro.api import (
    BestOfBackend,
    CompilationCache,
    CompilationResult,
    PredictorBackend,
    UnknownBackendError,
    circuit_fingerprint,
    compile_batch,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.bench import benchmark_circuit, benchmark_suite
from repro.circuit import QuantumCircuit


class _StubBackend:
    """Minimal registrable backend for registry tests."""

    def __init__(self, name="stub"):
        self.name = name

    def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
        return CompilationResult(
            circuit=circuit, device=device, reward=0.5, reward_name=objective, backend=self.name
        )


class _FailingBackend:
    name = "failing"

    def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
        raise RuntimeError(f"cannot compile {circuit.name}")


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = list_backends()
        for level in range(4):
            assert f"qiskit-o{level}" in names
        for level in range(3):
            assert f"tket-o{level}" in names
        assert "best-of" in names

    def test_get_backend_resolves_aliases(self):
        assert get_backend("qiskit").name == "qiskit-o3"
        assert get_backend("tket").name == "tket-o2"

    def test_unknown_backend_error(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("no-such-backend")
        assert isinstance(excinfo.value, KeyError)
        assert "qiskit-o3" in str(excinfo.value)

    def test_unknown_rl_backend_hints_at_registration(self):
        unregister_backend("rl")
        with pytest.raises(UnknownBackendError, match="as_backend"):
            get_backend("rl")

    def test_register_lookup_unregister(self):
        backend = _StubBackend("custom-flow")
        register_backend("custom-flow", backend)
        try:
            assert get_backend("custom-flow") is backend
            assert "custom-flow" in list_backends()
            with pytest.raises(ValueError, match="already registered"):
                register_backend("custom-flow", _StubBackend())
            register_backend("custom-flow", backend, overwrite=True)
        finally:
            unregister_backend("custom-flow")
        assert "custom-flow" not in list_backends()

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError):
            register_backend("bogus", object())

    def test_resolve_backend_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_backend(42)


class TestFacade:
    @pytest.mark.parametrize("backend", ["qiskit-o0", "qiskit-o3", "tket-o0", "tket-o2"])
    def test_preset_backends_unified_result(self, backend, washington):
        circuit = benchmark_circuit("ghz", 4)
        result = repro.compile(circuit, backend=backend, device=washington)
        assert isinstance(result, CompilationResult)
        assert result.succeeded and result.error is None
        assert result.backend == backend
        assert washington.is_executable(result.circuit)
        assert result.actions and result.passes == result.actions
        assert result.wall_time > 0
        assert set(result.scores) == {"fidelity", "critical_depth", "combination"}
        assert result.reward == pytest.approx(result.scores["fidelity"])

    def test_device_accepts_name_and_defaults_to_washington(self):
        circuit = benchmark_circuit("dj", 3)
        by_name = repro.compile(circuit, backend="qiskit-o3", device="ibmq_washington")
        by_default = repro.compile(circuit, backend="qiskit-o3")
        assert by_name.device.name == by_default.device.name == "ibmq_washington"

    def test_objective_selects_headline_reward(self, washington):
        circuit = benchmark_circuit("qft", 4)
        result = repro.compile(
            circuit, backend="tket-o2", device=washington, objective="critical_depth"
        )
        assert result.reward_name == "critical_depth"
        assert result.reward == pytest.approx(result.scores["critical_depth"])

    def test_unknown_objective_rejected(self, washington):
        with pytest.raises(KeyError):
            repro.compile(benchmark_circuit("ghz", 3), device=washington, objective="speed")

    def test_unknown_objective_rejected_by_rl_backend(self, trained_predictor):
        with pytest.raises(KeyError, match="unknown reward"):
            repro.compile(benchmark_circuit("ghz", 3), backend=trained_predictor, objective="speed")

    def test_rl_backend_from_predictor_instance(self, trained_predictor):
        circuit = benchmark_circuit("ghz", 3)
        result = repro.compile(circuit, backend=trained_predictor)
        assert result.backend == "rl"
        assert result.succeeded
        assert result.device is not None
        assert result.device.is_executable(result.circuit)

    def test_rl_backend_registered_by_name(self, trained_predictor):
        register_backend("rl", trained_predictor.as_backend(), overwrite=True)
        try:
            result = repro.compile(benchmark_circuit("ghz", 3), backend="rl")
            assert result.backend == "rl" and result.succeeded
        finally:
            unregister_backend("rl")

    def test_rl_result_matches_predictor_compile(self, trained_predictor):
        circuit = benchmark_circuit("dj", 3)
        direct = trained_predictor.compile(circuit)
        via_facade = repro.compile(circuit, backend=trained_predictor)
        assert via_facade.reward == pytest.approx(direct.reward)
        assert via_facade.actions == direct.actions

    def test_best_of_picks_the_best_candidate(self, washington):
        circuit = benchmark_circuit("ghz", 4)
        best = repro.compile(circuit, backend="best-of", device=washington)
        assert best.succeeded
        candidates = best.metadata["candidates"]
        assert set(candidates) == {"qiskit-o3", "tket-o2"}
        assert best.reward == pytest.approx(max(candidates.values()))
        assert best.metadata["winner"] in candidates

    def test_best_of_survives_candidate_failure(self, washington):
        backend = BestOfBackend([_FailingBackend(), "qiskit-o3"], name="best-of-test")
        result = backend.compile(benchmark_circuit("ghz", 3), device=washington)
        assert result.succeeded
        assert result.metadata["winner"] == "qiskit-o3"
        assert "failing" in result.metadata["candidate_errors"]

    def test_best_of_all_failures_is_structured(self):
        backend = BestOfBackend([_FailingBackend()], name="best-of-fail")
        result = backend.compile(benchmark_circuit("ghz", 3))
        assert not result.succeeded
        assert "failing" in (result.error or "")


class TestRemovedShims:
    def test_compile_qiskit_style_raises_pointed_error(self, washington):
        with pytest.raises(RuntimeError, match=r"repro\.compile"):
            repro.compile_qiskit_style(benchmark_circuit("ghz", 3), washington)

    def test_old_result_type_importable_from_core(self):
        from repro.core import CompilationResult as CoreResult

        assert CoreResult is CompilationResult


class TestBatchCompilation:
    def test_sweep_ten_circuits_two_backends_with_caching(self):
        circuits = benchmark_suite(2, 6, step=1, names=["ghz", "dj"])
        assert len(circuits) >= 10
        cache = CompilationCache()
        batch = compile_batch(
            circuits, backends=["qiskit-o1", "tket-o1"], cache=cache, max_workers=4
        )
        assert len(batch) == 2 * len(circuits)
        assert not batch.failures
        assert all(not r.metadata.get("cached") for r in batch)
        assert len(batch.by_backend("qiskit-o1")) == len(circuits)
        # Re-running the sweep is served entirely from the cache.
        again = compile_batch(
            circuits, backends=["qiskit-o1", "tket-o1"], cache=cache, max_workers=4
        )
        assert all(r.metadata.get("cached") for r in again)
        assert cache.hits == len(again)
        for index in range(len(circuits)):
            first = batch.get(index, "qiskit-o1")
            second = again.get(index, "qiskit-o1")
            assert second.reward == pytest.approx(first.reward)

    def test_cache_repoints_objective_without_recompiling(self):
        circuits = [benchmark_circuit("ghz", 3)]
        cache = CompilationCache()
        fidelity = compile_batch(circuits, backends=["qiskit-o2"], cache=cache)
        depth = compile_batch(
            circuits, backends=["qiskit-o2"], cache=cache, objective="critical_depth"
        )
        result = depth.get(0, "qiskit-o2")
        assert result.metadata.get("cached")
        assert result.reward_name == "critical_depth"
        assert result.reward == pytest.approx(
            fidelity.get(0, "qiskit-o2").scores["critical_depth"]
        )

    def test_failing_circuit_does_not_kill_the_sweep(self):
        # A 20-qubit circuit cannot fit the 8-qubit oqc_lucy device.
        too_big = QuantumCircuit(20, name="too_big")
        for q in range(19):
            too_big.cx(q, q + 1)
        good = benchmark_circuit("ghz", 3)
        batch = compile_batch(
            [good, too_big], backends=["qiskit-o3"], device="oqc_lucy", cache=None
        )
        assert len(batch) == 2
        ok, failed = batch.get(0, "qiskit-o3"), batch.get(1, "qiskit-o3")
        assert ok.succeeded
        assert not failed.succeeded
        assert failed.error
        assert failed.reward == 0.0
        assert failed.circuit is too_big
        assert len(batch.failures) == 1

    def test_failing_backend_captured_per_item(self):
        circuits = [benchmark_circuit("ghz", 3), benchmark_circuit("dj", 3)]
        batch = compile_batch(circuits, backends=[_FailingBackend(), "qiskit-o0"], cache=None)
        assert len(batch.failures) == 2
        assert all(r.backend == "failing" for r in batch.failures)
        assert all(r.succeeded for r in batch.by_backend("qiskit-o0"))

    def test_failures_are_not_cached(self):
        cache = CompilationCache()
        circuits = [benchmark_circuit("ghz", 3)]
        compile_batch(circuits, backends=[_FailingBackend()], cache=cache)
        assert len(cache) == 0

    def test_mixed_predictor_and_preset_backends(self, trained_predictor):
        circuits = [benchmark_circuit("ghz", 3), benchmark_circuit("dj", 3)]
        batch = compile_batch(
            circuits, backends=[trained_predictor, "qiskit-o3"], cache=None, max_workers=2
        )
        assert len(batch) == 4
        assert {r.backend for r in batch} == {"rl", "qiskit-o3"}
        assert all(r.succeeded for r in batch)

    def test_requires_a_backend(self):
        with pytest.raises(ValueError):
            compile_batch([benchmark_circuit("ghz", 3)], backends=[])

    def test_lookup_works_with_alias_spec(self):
        circuits = [benchmark_circuit("ghz", 3)]
        batch = compile_batch(circuits, backends=["qiskit", "tket"], cache=None)
        assert batch.get(0, "qiskit").backend == "qiskit-o3"
        assert batch.get(0, "qiskit") is batch.get(0, "qiskit-o3")
        assert batch.get(0, "tket").backend == "tket-o2"

    def test_unknown_objective_rejected_even_on_warm_cache(self):
        circuits = [benchmark_circuit("ghz", 3)]
        cache = CompilationCache()
        compile_batch(circuits, backends=["qiskit-o1"], cache=cache)
        with pytest.raises(KeyError, match="unknown reward"):
            compile_batch(circuits, backends=["qiskit-o1"], cache=cache, objective="speeed")

    def test_serial_and_parallel_agree(self):
        circuits = benchmark_suite(3, 4, step=1, names=["ghz", "qft"])
        serial = compile_batch(circuits, backends=["qiskit-o2"], cache=None, max_workers=1)
        parallel = compile_batch(circuits, backends=["qiskit-o2"], cache=None, max_workers=8)
        for index in range(len(circuits)):
            assert parallel.get(index, "qiskit-o2").reward == pytest.approx(
                serial.get(index, "qiskit-o2").reward
            )

    def test_batch_summary_mentions_failures(self):
        batch = compile_batch([benchmark_circuit("ghz", 3)], backends=[_FailingBackend()], cache=None)
        assert "1 failed" in batch.summary()

    def test_duplicate_and_alias_specs_deduplicated(self):
        """Regression: "qiskit" + "qiskit-o3" used to silently overwrite index
        entries; now the resolved backend runs once and both names look it up."""
        circuits = [benchmark_circuit("ghz", 3), benchmark_circuit("dj", 3)]
        batch = compile_batch(
            circuits, backends=["qiskit", "qiskit-o3", "qiskit-o3"], cache=None
        )
        # One backend after dedup: one result per circuit, not three.
        assert len(batch) == len(circuits)
        for index in range(len(circuits)):
            assert batch.get(index, "qiskit") is batch.get(index, "qiskit-o3")

    def test_same_predictor_twice_deduplicates(self, trained_predictor):
        circuits = [benchmark_circuit("ghz", 3)]
        batch = compile_batch(
            circuits, backends=[trained_predictor, trained_predictor], cache=None
        )
        assert len(batch) == 1
        assert batch.get(0, "rl").backend == "rl"

    def test_two_different_predictors_conflict_with_guidance(self, trained_predictor):
        from repro.core import Predictor

        other = Predictor(reward=trained_predictor.reward_name)
        other._agent = trained_predictor._agent  # trained enough to resolve
        with pytest.raises(ValueError, match="as_backend"):
            compile_batch(
                [benchmark_circuit("ghz", 3)],
                backends=[trained_predictor, other],
                cache=None,
            )

    def test_duplicate_circuit_compiled_once_per_sweep(self):
        circuit = benchmark_circuit("ghz", 3)
        cache = CompilationCache()
        batch = compile_batch([circuit, circuit], backends=["qiskit-o1"], cache=cache)
        assert len(batch) == 2
        first, second = batch.get(0, "qiskit-o1"), batch.get(1, "qiskit-o1")
        assert not first.metadata.get("cached")
        assert second.metadata.get("cached")
        assert second.reward == pytest.approx(first.reward)
        # Only the owner's compilation entered the cache.
        assert len(cache) == 1

    def test_duplicate_circuit_deduplicated_even_without_cache(self):
        circuit = benchmark_circuit("ghz", 3)
        batch = compile_batch([circuit, circuit], backends=["qiskit-o1"], cache=None)
        first, second = batch.get(0, "qiskit-o1"), batch.get(1, "qiskit-o1")
        assert not first.metadata.get("cached")
        assert second.metadata.get("cached")
        assert second.reward == pytest.approx(first.reward)

    def test_two_alias_spellings_of_one_backend_both_indexed(self):
        circuits = [benchmark_circuit("ghz", 3)]
        batch = compile_batch(circuits, backends=["best_of", "bestof"], cache=None)
        assert len(batch) == 1
        assert batch.get(0, "best_of") is batch.get(0, "bestof")
        assert batch.get(0, "best-of").backend == "best-of"

    def test_conflicting_backend_names_raise(self):
        class _Impostor:
            name = "qiskit-o3"

            def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
                raise AssertionError("never reached")

        with pytest.raises(ValueError, match="conflicting backend specs"):
            compile_batch(
                [benchmark_circuit("ghz", 3)],
                backends=["qiskit-o3", _Impostor()],
                cache=None,
            )

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            compile_batch(
                [benchmark_circuit("ghz", 3)], backends=["qiskit-o0"], executor="rocket"
            )

    def test_process_executor_matches_thread_executor(self):
        circuits = [benchmark_circuit("ghz", 3), benchmark_circuit("qft", 3)]
        backends = ["qiskit-o1", "tket-o1"]
        thread = compile_batch(circuits, backends, cache=None, executor="thread")
        process = compile_batch(
            circuits, backends, cache=None, executor="process", max_workers=2
        )
        assert len(process) == len(thread) == 4
        assert not process.failures
        for index in range(len(circuits)):
            for backend in backends:
                a = thread.get(index, backend)
                b = process.get(index, backend)
                assert b.reward == pytest.approx(a.reward)
                assert b.circuit.fingerprint() == a.circuit.fingerprint()

    def test_process_executor_merges_results_into_shared_cache(self):
        circuits = [benchmark_circuit("ghz", 3)]
        cache = CompilationCache()
        first = compile_batch(
            circuits, backends=["qiskit-o1"], cache=cache, executor="process"
        )
        assert not first.get(0, "qiskit-o1").metadata.get("cached")
        assert len(cache) == 1
        # The re-sweep is served from the parent-side cache (any executor).
        again = compile_batch(
            circuits, backends=["qiskit-o1"], cache=cache, executor="process"
        )
        assert again.get(0, "qiskit-o1").metadata.get("cached")

    def test_process_batch_results_pickle_round_trip(self):
        import pickle

        circuits = [benchmark_circuit("ghz", 3)]
        batch = compile_batch(circuits, backends=["qiskit-o1"], cache=None, executor="process")
        restored = pickle.loads(pickle.dumps(batch))
        assert len(restored) == len(batch)
        original = batch.get(0, "qiskit-o1")
        round_tripped = restored.get(0, "qiskit-o1")
        assert round_tripped.reward == pytest.approx(original.reward)
        assert round_tripped.backend == original.backend
        assert round_tripped.circuit.fingerprint() == original.circuit.fingerprint()

    def test_unpicklable_backend_gets_clear_error_for_process_executor(self):
        class _Unpicklable:
            name = "unpicklable"

            def __init__(self):
                self.lock = __import__("threading").Lock()

            def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
                raise AssertionError("never reached")

        with pytest.raises(ValueError, match="cannot be pickled"):
            compile_batch(
                [benchmark_circuit("ghz", 3)],
                backends=[_Unpicklable()],
                cache=None,
                executor="process",
            )


class TestFingerprintAndCache:
    def test_fingerprint_stable_and_content_sensitive(self):
        a = benchmark_circuit("ghz", 4)
        b = benchmark_circuit("ghz", 4)
        c = benchmark_circuit("ghz", 5)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        assert circuit_fingerprint(a) != circuit_fingerprint(c)

    def test_lru_eviction(self):
        cache = CompilationCache(maxsize=2)
        r = CompilationResult(QuantumCircuit(1), None, 0.0, "fidelity")
        cache.put(("a",), r)
        cache.put(("b",), r)
        cache.put(("c",), r)
        assert len(cache) == 2
        assert cache.get(("a",)) is None

    def test_predictor_backends_never_share_cache_entries(self, trained_predictor):
        first = PredictorBackend(trained_predictor)
        second = PredictorBackend(trained_predictor)
        assert first.cache_token() != second.cache_token()


class TestUnifiedResult:
    def test_with_objective_returns_fresh_copy(self):
        result = CompilationResult(
            QuantumCircuit(1), None, 0.9, "fidelity", scores={"fidelity": 0.9, "critical_depth": 0.4}
        )
        other = result.with_objective("critical_depth")
        assert other is not result
        assert other.reward == pytest.approx(0.4)
        assert result.reward == pytest.approx(0.9)
        other.metadata["cached"] = True
        assert "cached" not in result.metadata

    def test_failure_summary_mentions_error(self):
        result = CompilationResult(
            QuantumCircuit(1), None, 0.0, "fidelity", succeeded=False, error="boom"
        )
        assert "FAILED" in result.summary() and "boom" in result.summary()


class TestResultJSONRoundTrip:
    """to_dict()/from_dict() — the gateway's serialisation seam."""

    def test_success_round_trip_through_json(self, washington):
        import json

        compiled = repro.compile(
            benchmark_circuit("ghz", 3), backend="qiskit-o1", device="ibmq_washington"
        )
        payload = json.loads(json.dumps(compiled.to_dict()))
        rebuilt = CompilationResult.from_dict(payload)
        assert rebuilt.succeeded
        assert rebuilt.backend == compiled.backend
        assert rebuilt.reward == pytest.approx(compiled.reward)
        assert rebuilt.reward_name == compiled.reward_name
        assert rebuilt.scores == pytest.approx(compiled.scores)
        assert rebuilt.actions == compiled.actions
        assert rebuilt.device is not None and rebuilt.device.name == washington.name
        assert rebuilt.circuit.count_ops() == compiled.circuit.count_ops()
        assert rebuilt.circuit.name == compiled.circuit.name
        assert rebuilt.wall_time == pytest.approx(compiled.wall_time)

    def test_structured_failure_round_trip(self):
        import json

        result = CompilationResult(
            QuantumCircuit(2),
            None,
            0.0,
            "fidelity",
            reached_done=False,
            backend="qiskit-o3",
            succeeded=False,
            error="DeadlineExceeded: deadline of 0.000s expired",
            metadata={"deadline_exceeded": True},
        )
        rebuilt = CompilationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert not rebuilt.succeeded
        assert rebuilt.error == result.error
        assert rebuilt.metadata["deadline_exceeded"] is True
        assert rebuilt.device is None
        assert not rebuilt.reached_done

    def test_unknown_device_degrades_to_none(self):
        result = CompilationResult(QuantumCircuit(1), None, 0.5, "fidelity")
        payload = result.to_dict()
        payload["device"] = "quantum-mainframe-9000"
        rebuilt = CompilationResult.from_dict(payload)
        assert rebuilt.device is None
        assert rebuilt.metadata["unknown_device"] == "quantum-mainframe-9000"

    def test_missing_mandatory_field_raises(self):
        with pytest.raises(KeyError):
            CompilationResult.from_dict({"reward_name": "fidelity"})


class TestSilentFailureSurfacing:
    def test_evaluate_warns_on_unfinished_compilation(self, trained_predictor, monkeypatch):
        failed = CompilationResult(
            benchmark_circuit("ghz", 3),
            None,
            0.0,
            "fidelity",
            reached_done=False,
            succeeded=False,
            error="policy did not finish",
        )
        monkeypatch.setattr(type(trained_predictor), "compile", lambda self, c, **kw: failed)
        with pytest.warns(RuntimeWarning, match="did not finish"):
            value = trained_predictor.evaluate(benchmark_circuit("ghz", 3))
        assert value == 0.0

    def test_compare_predictor_warns_on_rl_failure(self, trained_predictor, monkeypatch):
        from repro.evaluation import compare_predictor

        circuit = benchmark_circuit("ghz", 3)
        failed = CompilationResult(
            circuit, None, 0.0, "fidelity", reached_done=False, succeeded=False, error="stuck"
        )
        monkeypatch.setattr(type(trained_predictor), "compile", lambda self, c, **kw: failed)
        with pytest.warns(RuntimeWarning, match="scoring it as 0.0"):
            records = compare_predictor(trained_predictor, [circuit], cache=CompilationCache())
        assert records[0].rl_reward == 0.0
        assert records[0].qiskit_reward > 0.0
