"""Tests for the multi-node service fabric.

Covers the three tentpole pieces — :class:`ShardedCacheStore` (consistent-hash
sharding with graceful degradation), :class:`ForwardingService` (overload
spill to sibling hosts with QoS/trace parity), and :func:`rolling_restart`
(drain → restart → re-admit with zero lost requests) — plus the
distributed-seam regression tests: remote-ticket multiplexing (no
head-of-line blocking past 8 in-flight requests), deterministic client
close, single-connection ``CacheServer.stats()``, and the instance-backend
``TypeError`` on remote submits.

Everything here is in-process or against local TCP cache servers and runs in
the tier-1 lane; the multi-*process* cluster scenarios (two service hosts,
rolling restart under sustained load) live in ``test_cluster_stress.py``
under ``pytest -m stress``.
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.api.registry import register_backend, unregister_backend
from repro.api.result import CompilationResult
from repro.bench import benchmark_circuit
from repro.pipeline import DictStore
from repro.service import (
    CacheServer,
    CompileService,
    ForwardingService,
    RollingRestartError,
    ServiceClient,
    ShardedCacheStore,
    SharedCacheStore,
    rolling_restart,
    stable_key_hash,
)


@pytest.fixture(scope="module")
def circuit():
    return benchmark_circuit("ghz", 4)


def _result(circuit, backend_name: str, objective: str = "fidelity") -> CompilationResult:
    return CompilationResult(
        circuit=circuit,
        device=None,
        reward=1.0,
        reward_name=objective,
        backend=backend_name,
        wall_time=0.001,
    )


class ScriptedBackend:
    """Registered backend that returns canned results (and can block)."""

    def __init__(self, name: str, delay: float = 0.0):
        self.name = name
        self.delay = delay
        self.lock = threading.Lock()
        self.calls: list[int] = []
        self.gate: threading.Event | None = None

    def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
        with self.lock:
            self.calls.append(seed)
        if self.gate is not None and seed < 900:
            assert self.gate.wait(timeout=60), "gate never released"
        if self.delay:
            time.sleep(self.delay)
        return _result(circuit, self.name, objective)


@pytest.fixture()
def scripted_backend():
    backend = ScriptedBackend("cluster-scripted")
    register_backend(backend.name, backend)
    yield backend
    unregister_backend(backend.name)


# ---------------------------------------------------------------------------------
# consistent-hash sharding
# ---------------------------------------------------------------------------------


class FailingStore(DictStore):
    """A shard whose calls raise (a dead cache server) while ``broken``."""

    def __init__(self, maxsize: int = 64):
        super().__init__(maxsize)
        self.broken = False
        self.resets = 0

    def _check(self) -> None:
        if self.broken:
            raise ConnectionRefusedError("shard is down")

    def reset(self) -> None:
        self.resets += 1

    def get(self, key):
        self._check()
        return super().get(key)

    def put(self, key, value, cost=None):
        self._check()
        super().put(key, value, cost)

    def stats(self):
        self._check()
        return super().stats()


class TestStableKeyHash:
    def test_deterministic_and_spread(self):
        key = ("fingerprint", "token", "<auto>", 0)
        assert stable_key_hash(key) == stable_key_hash(key)
        assert stable_key_hash(key) != stable_key_hash(key, salt="other")
        hashes = {stable_key_hash(("k", i)) for i in range(256)}
        assert len(hashes) == 256  # 64-bit digest: no collisions at this scale

    def test_placement_agrees_across_instances(self):
        """Two hosts building the ring independently agree on placement."""
        shards_a = [DictStore(16), DictStore(16), DictStore(16)]
        shards_b = [DictStore(16), DictStore(16), DictStore(16)]
        ring_a = ShardedCacheStore(shards_a)
        ring_b = ShardedCacheStore(shards_b)
        keys = [("fp", i, "<auto>", i % 3) for i in range(100)]
        assert [ring_a.shard_for(k) for k in keys] == [ring_b.shard_for(k) for k in keys]
        # and the keyspace actually spreads over all shards
        assert {ring_a.shard_for(k) for k in keys} == {0, 1, 2}


class TestShardedCacheStore:
    def test_round_trip_and_aggregated_stats(self):
        store = ShardedCacheStore([DictStore(64), DictStore(64)])
        for i in range(30):
            store.put(("k", i), i)
        assert all(store.get(("k", i)) == i for i in range(30))
        assert store.get(("missing", 1)) is None
        stats = store.stats()
        assert stats["sharded"] is True
        assert stats["shard_count"] == 2
        assert stats["entries"] == 30
        assert stats["hits"] == 30
        assert stats["misses"] == 1
        assert stats["shards_down"] == 0
        assert len(stats["shards"]) == 2
        # per-shard entries sum to the aggregate
        assert sum(row["entries"] for row in stats["shards"]) == 30
        assert 0 < stats["hit_rate"] < 1

    def test_requires_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardedCacheStore([])

    def test_dead_shard_degrades_to_misses_not_errors(self):
        """A dead shard yields None/no-op — never an exception to the caller."""
        shard = FailingStore()
        store = ShardedCacheStore([shard], timeout=1.0, retry_interval=30.0)
        store.put("a", 1)
        shard.broken = True
        assert store.get("a") is None  # degraded, not raised
        store.put("b", 2)  # dropped, not raised
        stats = store.stats()
        assert stats["shards_down"] == 1
        assert stats["fallback_misses"] >= 1
        assert stats["dropped_puts"] >= 1
        assert stats["shards"][0]["down"] is True
        # while benched, further calls short-circuit without reaching the shard
        assert store.get("a") is None

    def test_down_shard_reconnects_after_retry_interval(self):
        shard = FailingStore()
        store = ShardedCacheStore([shard], timeout=1.0, retry_interval=0.05)
        store.put("a", 1)
        shard.broken = True
        assert store.get("a") is None
        assert store.stats()["shards_down"] == 1
        shard.broken = False
        time.sleep(0.08)  # past the retry window
        assert store.get("a") == 1  # reconnected
        stats = store.stats()
        assert stats["shards_down"] == 0
        assert stats["shards"][0]["reconnects"] >= 1
        assert shard.resets >= 1  # the client was told to rebuild its proxy

    def test_timeout_marks_shard_down(self):
        class HangingStore(DictStore):
            def get(self, key):
                time.sleep(5.0)
                return None

        store = ShardedCacheStore([HangingStore(8)], timeout=0.1, retry_interval=30.0)
        start = time.perf_counter()
        assert store.get("x") is None
        assert time.perf_counter() - start < 2.0  # bounded, not 5s
        stats = store.stats()
        assert stats["shards_down"] == 1
        assert stats["shards"][0]["timeouts"] == 1

    def test_pickle_ships_credentials_and_rebuilds_ring(self):
        shards = [SharedCacheStore(("127.0.0.1", 7800 + i), b"secret") for i in range(3)]
        store = ShardedCacheStore(shards, timeout=1.5, retry_interval=3.0, vnodes=32)
        clone = pickle.loads(pickle.dumps(store))
        key = ("fp", "tok", "<auto>", 0)
        assert clone.shard_for(key) == store.shard_for(key)
        assert clone.timeout == 1.5 and clone.vnodes == 32
        assert [s.label for s in clone._states] == [s.label for s in store._states]

    def test_clear_skips_dead_shards(self):
        live, dead = FailingStore(), FailingStore()
        store = ShardedCacheStore([live, dead], retry_interval=30.0)
        for i in range(10):
            store.put(("k", i), i)
        dead.broken = True
        store.clear()  # must not raise
        assert live.stats()["entries"] == 0


# ---------------------------------------------------------------------------------
# TCP cache servers (explicit bind + authkey) and sharding across them
# ---------------------------------------------------------------------------------


class TestTcpCacheServer:
    def test_explicit_authkey_and_bind(self):
        authkey = b"cluster-secret-16"
        with CacheServer(maxsize=64, address=("127.0.0.1", 0), authkey=authkey) as server:
            assert server.authkey == authkey
            # a client built from raw credentials (the cross-machine path)
            client = SharedCacheStore(server.address, authkey)
            client.put("k", "v")
            assert client.get("k") == "v"

    def test_stats_reuses_one_client_connection(self):
        """S3 regression: stats() must not open a fresh connection per call."""
        with CacheServer(maxsize=64) as server:
            server.stats()
            first = server._stats_client
            assert first is not None
            for _ in range(5):
                server.stats()
            assert server._stats_client is first

    def test_sharded_store_over_two_tcp_servers(self):
        with CacheServer(maxsize=128) as server_a, CacheServer(maxsize=128) as server_b:
            store = ShardedCacheStore(
                [server_a.store(), server_b.store()], timeout=5.0, retry_interval=0.2
            )
            for i in range(40):
                store.put(("k", i), i)
            assert all(store.get(("k", i)) == i for i in range(40))
            stats = store.stats()
            assert stats["entries"] == 40
            assert stats["shards_down"] == 0
            # both servers hold part of the keyspace
            assert server_a.stats()["entries"] > 0
            assert server_b.stats()["entries"] > 0

    def test_killed_tcp_shard_degrades_and_store_survives(self):
        """Killing one shard mid-use degrades gets/puts instead of raising."""
        server_a = CacheServer(maxsize=128)
        server_b = CacheServer(maxsize=128)
        try:
            store = ShardedCacheStore(
                [server_a.store(), server_b.store()], timeout=2.0, retry_interval=60.0
            )
            keys = [("k", i) for i in range(40)]
            for i, key in enumerate(keys):
                store.put(key, i)
            shard_of = {key: store.shard_for(key) for key in keys}
            server_b.shutdown()  # kill one shard mid-load
            for i, key in enumerate(keys):
                value = store.get(key)  # must not raise either way
                if shard_of[key] == 0:
                    assert value == i  # surviving shard still serves
            stats = store.stats()
            assert stats["shards_down"] == 1
            assert stats["fallback_misses"] >= 1
        finally:
            server_a.shutdown()
            server_b.shutdown()


# ---------------------------------------------------------------------------------
# service + sharded store integration
# ---------------------------------------------------------------------------------


class TestServiceWithShardedStore:
    def test_cross_service_cache_hits_through_shared_shards(self, circuit):
        """Two services on the same shards see each other's results."""
        with CacheServer(maxsize=256) as server_a, CacheServer(maxsize=256) as server_b:
            shards = lambda: ShardedCacheStore(  # noqa: E731 - one per service
                [server_a.store(), server_b.store()], timeout=10.0
            )
            with CompileService(store=shards(), name="host-a") as svc_a:
                with CompileService(store=shards(), name="host-b") as svc_b:
                    first = svc_a.submit(circuit, "qiskit-o0").result(timeout=120)
                    assert first.succeeded
                    second = svc_b.submit(circuit, "qiskit-o0").result(timeout=120)
                    assert second.succeeded
                    assert second.metadata.get("cached") is True
                    assert svc_b.stats()["cache_hits"] == 1

    def test_dead_shard_does_not_fail_compiles(self, circuit):
        """The satellite bug: a dead cache server must not take the lane down."""
        server = CacheServer(maxsize=256)
        store = ShardedCacheStore([server.store()], timeout=2.0, retry_interval=60.0)
        with CompileService(store=store, name="degraded") as service:
            warm = service.submit(circuit, "qiskit-o0").result(timeout=120)
            assert warm.succeeded
            server.shutdown()  # cache gone; compiles must still succeed
            cold = service.submit(circuit, "qiskit-o0", seed=1).result(timeout=120)
            assert cold.succeeded
            stats = service.stats()
            assert stats["cache"]["shards_down"] == 1


# ---------------------------------------------------------------------------------
# request forwarding
# ---------------------------------------------------------------------------------


class TestForwardingService:
    def test_serves_locally_under_threshold(self, circuit):
        with CompileService(name="local") as local, CompileService(name="peer") as peer:
            router = ForwardingService(local, {"peer": ServiceClient(peer)})
            result = router.submit(circuit, "qiskit-o0").result(timeout=120)
            assert result.succeeded
            assert "forwarded_to" not in result.metadata
            stats = router.stats()["forwarding"]
            assert stats["served_local"] == 1
            assert stats["forwarded"] == 0

    def test_draining_local_spills_to_peer_with_full_parity(self, circuit, scripted_backend):
        """Priority, deadline=0, pass_overrides, and trace survive the hop."""
        with CompileService(name="local") as local, CompileService(name="peer") as peer:
            router = ForwardingService(local, {"peer": ServiceClient(peer)})
            local.set_draining(True)

            # priority: observe the forwarded request arriving on the peer
            seen: list[int] = []
            peer.add_observer(
                lambda event, request, result: seen.append(request.priority)
                if event == "queued"
                else None
            )
            ctx = {"trace_id": "f" * 32, "span_id": "a" * 16}
            result = router.submit(
                circuit, scripted_backend.name, priority=7, trace=ctx
            ).result(timeout=120)
            assert result.succeeded
            assert result.metadata["forwarded_to"] == "peer"
            assert seen == [7]

            # trace: the routed hop shows up as a service.forward root span
            tree = result.metadata["trace"]
            assert tree["name"] == "service.forward"
            assert tree["trace_id"] == ctx["trace_id"]
            assert tree["attrs"]["peer"] == "peer"
            child_names = [child["name"] for child in tree["children"]]
            assert "service.request" in child_names

            # deadline: an already-expired forwarded request expires on the peer
            expired = router.submit(circuit, "qiskit-o1", deadline=0).result(timeout=120)
            assert not expired.succeeded
            assert expired.metadata.get("deadline_exceeded") is True
            assert expired.metadata["forwarded_to"] == "peer"

            # pass_overrides: the derived backend is built on the peer
            swapped = router.submit(
                circuit,
                "qiskit-o1",
                device="ibmq_washington",
                pass_overrides={"routing": "tket-routing"},
            ).result(timeout=120)
            assert swapped.succeeded
            assert "+routing=tket_routing" in swapped.backend

    def test_backlogged_local_spills_to_idle_peer(self, circuit, scripted_backend):
        scripted_backend.gate = threading.Event()
        with CompileService(name="local", max_workers=1, autoscale=False) as local:
            with CompileService(name="peer") as peer:
                router = ForwardingService(
                    local, {"peer": ServiceClient(peer)}, spill_threshold=2
                )
                # saturate the local host directly: 1 running + 3 queued, all gated
                blocked = [
                    local.submit(circuit, scripted_backend.name, seed=i) for i in range(4)
                ]
                # local backlog (4) >= threshold (2) and the peer is idle → spill
                spilled = router.submit(circuit, scripted_backend.name, seed=901)
                result = spilled.result(timeout=120)
                assert result.succeeded
                assert result.metadata.get("forwarded_to") == "peer"
                scripted_backend.gate.set()
                assert all(f.result(timeout=120).succeeded for f in blocked)

    def test_no_ready_peer_serves_locally_even_when_draining(self, circuit):
        with CompileService(name="only") as only:
            router = ForwardingService(only)
            only.set_draining(True)
            result = router.submit(circuit, "qiskit-o0").result(timeout=120)
            assert result.succeeded  # accepted work is served, not refused

    def test_shutdown_peer_is_skipped_and_served_locally(self, circuit):
        with CompileService(name="local") as local, CompileService(name="dead") as dead:
            client = ServiceClient(dead)
            router = ForwardingService(
                local, {"dead": client}, probe_interval=0.0, retry_interval=60.0
            )
            local.set_draining(True)
            dead.shutdown()  # peer reports not-ready after registration
            result = router.submit(circuit, "qiskit-o0").result(timeout=120)
            assert result.succeeded
            assert "forwarded_to" not in result.metadata  # served locally
            rows = router.stats()["forwarding"]["peers"]
            assert rows[0]["ready"] is False

    def test_unreachable_peer_is_benched(self, circuit):
        class DeadClient:
            def health(self):
                raise ConnectionRefusedError("connection refused")

            def close(self):
                pass

        with CompileService(name="local") as local:
            router = ForwardingService(
                local, {"gone": DeadClient()}, probe_interval=0.0, retry_interval=60.0
            )
            local.set_draining(True)
            result = router.submit(circuit, "qiskit-o0").result(timeout=120)
            assert result.succeeded  # rescued locally, not raised
            rows = router.stats()["forwarding"]["peers"]
            assert rows[0]["down"] is True
            assert rows[0]["errors"] >= 1

    def test_health_counts_outstanding_forwards(self, circuit, scripted_backend):
        scripted_backend.gate = threading.Event()
        with CompileService(name="local") as local, CompileService(name="peer") as peer:
            router = ForwardingService(local, {"peer": ServiceClient(peer)})
            local.set_draining(True)
            future = router.submit(circuit, scripted_backend.name, seed=1)
            deadline = time.monotonic() + 10
            while router.health()["forwarded_in_flight"] == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            health = router.health()
            assert health["unfinished"] >= 1  # drains wait for forwarded work
            scripted_backend.gate.set()
            assert future.result(timeout=120).succeeded
            assert router.health()["forwarded_in_flight"] == 0

    def test_replace_peer_restores_routing(self, circuit):
        with CompileService(name="local") as local:
            first = CompileService(name="peer-v1")
            router = ForwardingService(
                local, {"peer": ServiceClient(first)}, probe_interval=0.0
            )
            local.set_draining(True)
            first.shutdown()
            with CompileService(name="peer-v2") as second:
                router.replace_peer("peer", ServiceClient(second))
                result = router.submit(circuit, "qiskit-o0").result(timeout=120)
                assert result.succeeded
                assert result.metadata.get("forwarded_to") == "peer"
            with pytest.raises(KeyError):
                router.replace_peer("nope", ServiceClient(local))

    def test_rpc_surface_issues_tickets(self, circuit):
        with CompileService(name="local") as local:
            router = ForwardingService(local)
            ticket = router.submit_request(circuit, "qiskit-o0")
            result = router.wait_result(ticket, timeout=120)
            assert result.succeeded
            with pytest.raises(KeyError):
                router.wait_result(ticket)
            assert router.ping() == "local"


# ---------------------------------------------------------------------------------
# rolling restarts
# ---------------------------------------------------------------------------------


class FakeHost:
    """Minimal set_draining/health handle for driver unit tests."""

    def __init__(self, name: str, unfinished: int = 0):
        self.name = name
        self.draining = False
        self.unfinished = unfinished
        self.restarts = 0

    def set_draining(self, draining: bool = True) -> None:
        self.draining = draining
        if draining:
            self.unfinished = 0  # quiesce instantly for unit tests

    def health(self) -> dict:
        status = "draining" if self.draining else "ok"
        return {"status": status, "ready": not self.draining, "unfinished": self.unfinished}


class TestRollingRestart:
    def test_drains_restarts_and_readmits_in_order(self):
        hosts = {"a": FakeHost("a"), "b": FakeHost("b"), "c": FakeHost("c")}
        order: list[str] = []

        def restart(name, handle):
            order.append(name)
            handle.restarts += 1
            return handle

        reports = rolling_restart(hosts, restart, poll_interval=0.01)
        assert order == ["a", "b", "c"]
        assert [r.host for r in reports] == ["a", "b", "c"]
        assert all(h.restarts == 1 for h in hosts.values())
        assert all(not h.draining for h in hosts.values())  # re-admitted

    def test_restart_can_swap_the_handle(self):
        hosts = {"a": FakeHost("a-v1")}
        fresh = FakeHost("a-v2")
        rolling_restart(hosts, lambda name, handle: fresh, poll_interval=0.01)
        assert hosts["a"] is fresh

    def test_drain_timeout_aborts_and_readmits(self):
        class StuckHost(FakeHost):
            def set_draining(self, draining: bool = True) -> None:
                self.draining = draining  # unfinished never reaches zero

        host = StuckHost("stuck", unfinished=3)
        with pytest.raises(RollingRestartError) as excinfo:
            rolling_restart(
                {"stuck": host}, lambda n, h: h, drain_timeout=0.1, poll_interval=0.01
            )
        assert excinfo.value.phase == "drain"
        assert host.restarts == 0  # never bounced with work in flight
        assert not host.draining  # re-admitted, still serving

    def test_in_process_rolling_restart_with_live_services(self, circuit):
        """The real drain path: accepted work finishes before the bounce."""
        services = {
            "a": CompileService(name="svc-a"),
            "b": CompileService(name="svc-b"),
        }
        accepted = [services["a"].submit(circuit, "qiskit-o0", seed=i) for i in range(3)]

        def restart(name, handle):
            assert handle.health()["unfinished"] == 0  # fully quiesced
            handle.shutdown(drain=True)
            return CompileService(name=f"{name}-v2")

        try:
            reports = rolling_restart(services, restart, drain_timeout=120)
            assert [r.host for r in reports] == ["a", "b"]
            # zero lost: everything accepted before the drain resolved fine
            assert all(f.result(timeout=1).succeeded for f in accepted)
            # the new incarnations serve traffic
            again = services["a"].submit(circuit, "qiskit-o0").result(timeout=120)
            assert again.succeeded
        finally:
            for service in services.values():
                service.shutdown(drain=False)


# ---------------------------------------------------------------------------------
# remote-client seam regressions (multiplexed waiter, close, backend TypeError)
# ---------------------------------------------------------------------------------


@pytest.fixture()
def remote_shaped_client():
    """A ServiceClient driven through the ticket RPC surface, in-process.

    The CompileService implements the full RPC protocol
    (submit_request/poll_tickets/...), so pointing the client's proxy at it
    exercises exactly the remote code path — ticket issue, multiplexed
    waiter thread, poll loop — without a subprocess.
    """
    service = CompileService(max_workers=1, autoscale=False)
    client = ServiceClient(service)
    client._service = None
    client._proxy = service
    yield client, service
    client.close()
    service.shutdown(drain=False)


class TestRemoteTicketMultiplexing:
    def test_more_than_eight_inflight_tickets_resolve_out_of_order(
        self, circuit, scripted_backend, remote_shaped_client
    ):
        """S2 regression: the old 8-waiter pool left a completed high-priority
        ticket unresolved behind 8 blocked wait_result calls."""
        client, _service = remote_shaped_client
        scripted_backend.gate = threading.Event()
        # 12 tickets parked on the gated backend's lane; the 13th runs on the
        # qiskit-o0 lane, so the *service* finishes it immediately — the old
        # client would still never resolve it: all 8 waiters blocked on the
        # first 8 slow tickets, and no waiter left to collect this one.
        slow = [client.submit(circuit, scripted_backend.name, seed=i) for i in range(12)]
        fast = client.submit(circuit, "qiskit-o0", priority=10)
        assert fast.result(timeout=120).succeeded
        assert sum(1 for f in slow if f.done()) == 0
        scripted_backend.gate.set()
        assert all(f.result(timeout=120).succeeded for f in slow)

    def test_close_is_deterministic_and_fails_pending(
        self, circuit, scripted_backend, remote_shaped_client
    ):
        client, _service = remote_shaped_client
        scripted_backend.gate = threading.Event()
        pending = client.submit(circuit, scripted_backend.name, seed=1)
        client.close()
        waiter = client._waiter
        assert waiter is not None and not waiter.is_alive()  # joined, not abandoned
        with pytest.raises(RuntimeError, match="closed"):
            pending.result(timeout=5)
        scripted_backend.gate.set()
        client.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            client._register_ticket("req-zombie")

    def test_remote_submit_rejects_backend_instances_without_name(
        self, circuit, remote_shaped_client
    ):
        """S4 regression: a live instance with no usable .name used to be
        silently shipped (pickle failure or wrong-registry resolution)."""
        client, _service = remote_shaped_client

        class NamelessBackend:
            def compile(self, circuit, **kwargs):  # pragma: no cover - never called
                raise AssertionError

        with pytest.raises(TypeError, match="registry"):
            client.submit(circuit, NamelessBackend())

        class EmptyNameBackend(NamelessBackend):
            name = ""

        with pytest.raises(TypeError, match="non-empty"):
            client.submit(circuit, EmptyNameBackend())

    def test_named_instance_is_resolved_by_name(self, circuit, scripted_backend, remote_shaped_client):
        client, _service = remote_shaped_client
        result = client.submit(circuit, scripted_backend).result(timeout=120)
        assert result.succeeded
        assert result.backend == scripted_backend.name

    def test_poll_tickets_rejects_unknown_tickets(self, circuit):
        with CompileService() as service:
            ticket = service.submit_request(circuit, "qiskit-o0")
            with pytest.raises(KeyError):
                service.poll_tickets(["req-bogus"], timeout=0.1)
            # the real ticket still resolves afterwards
            deadline = time.monotonic() + 60
            done: dict = {}
            while ticket not in done and time.monotonic() < deadline:
                done = service.poll_tickets([ticket], timeout=0.5)
            assert done[ticket].succeeded
