"""Tests for the vectorised environment fleet layer (``repro.rl.vecenv``)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.bench import benchmark_circuit
from repro.core import CompilationEnv
from repro.pipeline import AnalysisCache, TransformCache
from repro.rl import (
    PPO,
    AsyncVectorEnv,
    Box,
    Discrete,
    Env,
    PPOConfig,
    SyncVectorEnv,
    make_compilation_vec_env,
)


class CorridorEnv(Env):
    """Walk right to the goal; truncates at a step limit (picklable, module level)."""

    def __init__(self, length: int = 5, limit: int = 12):
        self.length = length
        self.limit = limit
        self.observation_space = Box(0.0, 1.0, (2,))
        self.action_space = Discrete(2)
        self.position = 0
        self.steps = 0
        self.episodes = 0

    def _obs(self):
        return np.array([self.position / self.length, self.steps / self.limit])

    def reset(self, *, seed=None):
        self.position = 0
        self.steps = 0
        self.episodes += 1
        return self._obs(), {"episode": self.episodes}

    def step(self, action):
        self.steps += 1
        if action == 1:
            self.position += 1
        terminated = self.position >= self.length
        reward = 1.0 if terminated else 0.0
        truncated = self.steps >= self.limit and not terminated
        return self._obs(), reward, terminated, truncated, {}

    def action_masks(self):
        return np.ones(2, dtype=bool)


def _corridor_fns(n):
    return [lambda: CorridorEnv() for _ in range(n)]


class FaultyEnv(CorridorEnv):
    """Raises from step() on action 1 (picklable, module level)."""

    def step(self, action):
        if action == 1:
            raise RuntimeError("faulty env exploded")
        return super().step(action)


TINY_CIRCUITS = [
    benchmark_circuit("ghz", 3),
    benchmark_circuit("qft", 3),
    benchmark_circuit("wstate", 3),
]


class TestSyncVectorEnv:
    def test_batched_shapes(self):
        vec = SyncVectorEnv(_corridor_fns(3))
        obs, infos = vec.reset(seed=0)
        assert obs.shape == (3, 2)
        assert len(infos) == 3
        assert vec.action_masks().shape == (3, 2)
        obs, rewards, terminated, truncated, step_infos = vec.step(np.ones(3, dtype=int))
        assert obs.shape == (3, 2)
        assert rewards.shape == terminated.shape == truncated.shape == (3,)
        assert len(step_infos["infos"]) == 3

    def test_requires_envs_and_matching_action_count(self):
        with pytest.raises(ValueError):
            SyncVectorEnv([])
        vec = SyncVectorEnv(_corridor_fns(2))
        vec.reset(seed=0)
        with pytest.raises(ValueError):
            vec.step(np.ones(3, dtype=int))

    def test_auto_reset_surfaces_final_observation(self):
        vec = SyncVectorEnv(_corridor_fns(1))
        vec.reset(seed=0)
        for _ in range(4):
            _obs, _r, terminated, _t, infos = vec.step(np.array([1]))
            assert not terminated[0]
            assert infos["final_observation"][0] is None
        obs, rewards, terminated, _truncated, infos = vec.step(np.array([1]))
        assert terminated[0] and rewards[0] == 1.0
        # The returned observation is the *reset* one; the episode's last
        # observation is surfaced separately for value bootstrapping.
        final = infos["final_observation"][0]
        assert final is not None and final[0] == pytest.approx(1.0)
        assert obs[0, 0] == pytest.approx(0.0)
        assert vec.envs[0].episodes == 2

    def test_truncation_reported_and_reset(self):
        vec = SyncVectorEnv(_corridor_fns(1))
        vec.reset(seed=0)
        truncated = np.array([False])
        for _ in range(12):
            _obs, _r, _te, truncated, infos = vec.step(np.array([0]))
        assert truncated[0]
        assert infos["final_info"][0] is not None


class TestCompilationFleet:
    def _make_singles(self, n_envs, **kwargs):
        return [
            CompilationEnv(
                TINY_CIRCUITS,
                analysis_cache=AnalysisCache(),
                transform_cache=TransformCache(),
                seed_mode="state",
                **kwargs,
            )
            for _ in range(n_envs)
        ]

    def test_fleet_equals_sequential_single_envs(self):
        """N-env fleet rollouts == N sequential single-env rollouts (obs/rewards/masks)."""
        n_envs = 3
        kwargs = {"device_name": "ibmq_washington", "max_steps": 6, "seed": 5}
        vec = make_compilation_vec_env(TINY_CIRCUITS, n_envs, **kwargs)
        singles = self._make_singles(n_envs, **kwargs)

        obs_vec, _ = vec.reset(seed=7)
        obs_single = [env.reset(seed=7 + i)[0] for i, env in enumerate(singles)]
        np.testing.assert_array_equal(obs_vec, np.stack(obs_single))

        for _step in range(15):
            masks_vec = vec.action_masks()
            masks_single = np.stack([env.action_masks() for env in singles])
            np.testing.assert_array_equal(masks_vec, masks_single)
            # A deterministic scripted policy: the first valid action.
            actions = masks_vec.argmax(axis=1)
            obs_vec, rewards, terminated, truncated, infos = vec.step(actions)
            for i, env in enumerate(singles):
                obs, reward, term, trunc, _info = env.step(int(actions[i]))
                assert reward == rewards[i]
                assert term == terminated[i] and trunc == truncated[i]
                if term or trunc:
                    np.testing.assert_array_equal(infos["final_observation"][i], obs)
                    obs, _ = env.reset()
                np.testing.assert_array_equal(obs_vec[i], obs)

    def test_scripted_flow_terminates_across_fleet(self):
        vec = make_compilation_vec_env(
            TINY_CIRCUITS, 2, device_name="ibmq_washington", max_steps=10, seed=2
        )
        vec.reset(seed=2)
        flow = [
            "synthesis_basis_translator",
            "map_sabre_layout_sabre_routing",
            "terminate",
        ]
        member = vec.envs[0]
        terminated = np.zeros(2, dtype=bool)
        rewards = np.zeros(2)
        for name in flow:
            index = member.action_by_name(name).index
            _obs, rewards, terminated, _trunc, infos = vec.step(np.full(2, index))
        assert terminated.all()
        assert (rewards > 0).all()
        for info in infos["final_info"]:
            assert info["final_reward"] > 0

    def test_fleet_members_share_caches_and_hit(self):
        vec = make_compilation_vec_env(
            [TINY_CIRCUITS[0]], 4, device_name="ibmq_washington", max_steps=10, seed=2
        )
        first = vec.envs[0]
        assert all(env.analysis_cache is first.analysis_cache for env in vec.envs)
        assert all(env.transform_cache is first.transform_cache for env in vec.envs)

        vec.reset(seed=2)
        flow = ["synthesis_basis_translator", "optimize_optimize_1q_gates", "terminate"]
        for name in flow:
            index = first.action_by_name(name).index
            vec.step(np.full(4, index))
        # All members stepped the same circuit states: the first member pays
        # for each pass application, the other three reuse the result.
        stats = first.transform_cache.stats()
        pass_actions = len(flow) - 1  # terminate is not a pass
        assert stats["misses"] == pass_actions
        assert stats["hits"] == pass_actions * 3
        assert first.analysis_cache.hit_rate > 0.5

    def test_share_work_off_gives_private_caches(self):
        vec = make_compilation_vec_env(TINY_CIRCUITS, 2, share_work=False)
        assert vec.envs[0].analysis_cache is not vec.envs[1].analysis_cache
        assert vec.envs[0].transform_cache is None
        assert vec.envs[0].seed_mode == "stream"

    def test_validation(self):
        with pytest.raises(ValueError):
            make_compilation_vec_env(TINY_CIRCUITS, 0)
        with pytest.raises(ValueError):
            make_compilation_vec_env([], 2)
        with pytest.raises(ValueError):
            make_compilation_vec_env(TINY_CIRCUITS, 2, backend="quantum")


class TestAsyncVectorEnv:
    def test_matches_sync_on_corridor(self):
        sync = SyncVectorEnv(_corridor_fns(2))
        async_vec = AsyncVectorEnv(_corridor_fns(2))
        try:
            obs_s, _ = sync.reset(seed=3)
            obs_a, _ = async_vec.reset(seed=3)
            np.testing.assert_array_equal(obs_s, obs_a)
            rng = np.random.default_rng(0)
            for _ in range(20):
                actions = rng.integers(0, 2, size=2)
                np.testing.assert_array_equal(sync.action_masks(), async_vec.action_masks())
                obs_s, r_s, te_s, tr_s, _ = sync.step(actions)
                obs_a, r_a, te_a, tr_a, _ = async_vec.step(actions)
                np.testing.assert_array_equal(obs_s, obs_a)
                np.testing.assert_array_equal(r_s, r_a)
                np.testing.assert_array_equal(te_s, te_a)
                np.testing.assert_array_equal(tr_s, tr_a)
        finally:
            async_vec.close()

    def test_compilation_fleet_process_backend(self):
        vec = make_compilation_vec_env(
            [TINY_CIRCUITS[0]], 2, backend="async",
            device_name="ibmq_washington", max_steps=10, seed=2,
        )
        try:
            obs, _ = vec.reset(seed=2)
            assert obs.shape[0] == 2
            masks = vec.action_masks()
            assert masks.shape[0] == 2 and masks.any(axis=1).all()
            actions = masks.argmax(axis=1)
            obs, rewards, terminated, truncated, _infos = vec.step(actions)
            assert obs.shape[0] == 2
        finally:
            vec.close()

    def test_close_is_idempotent(self):
        vec = AsyncVectorEnv(_corridor_fns(1))
        vec.reset(seed=0)
        vec.close()
        vec.close()

    def test_worker_exception_surfaces_with_traceback(self):
        vec = AsyncVectorEnv([CorridorEnv, FaultyEnv])
        try:
            vec.reset(seed=0)
            with pytest.raises(RuntimeError, match="faulty env exploded"):
                vec.step(np.array([0, 1]))
            # The fleet stays synchronised: workers survive the error and
            # keep serving commands.
            obs, rewards, _te, _tr, _infos = vec.step(np.array([0, 0]))
            assert obs.shape == (2, 2)
        finally:
            vec.close()


class TestVectorisedPPO:
    def test_single_env_is_the_n1_special_case(self):
        """PPO(raw env) and PPO(SyncVectorEnv of 1) are the same training path."""
        config = PPOConfig(n_steps=32, batch_size=16, n_epochs=2)
        raw = PPO(CorridorEnv(), config, seed=4)
        wrapped = PPO(SyncVectorEnv.from_envs([CorridorEnv()]), config, seed=4)
        raw.learn(200)
        wrapped.learn(200)
        for a, b in zip(raw.policy_net.parameters(), wrapped.policy_net.parameters()):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(raw.value_net.parameters(), wrapped.value_net.parameters()):
            np.testing.assert_array_equal(a, b)

    def test_greedy_sequences_identical_vec_vs_single_compilation(self):
        """Acceptance: fixed-seed greedy policy, vectorised path == n_envs=1 path."""
        config = PPOConfig(n_steps=16, batch_size=8, n_epochs=2)

        def env_factory():
            return CompilationEnv(
                [TINY_CIRCUITS[0]], device_name="ibmq_washington", max_steps=8, seed=3
            )

        single = PPO(env_factory(), config, seed=6)
        vectorised = PPO(SyncVectorEnv.from_envs([env_factory()]), config, seed=6)
        single.learn(64)
        vectorised.learn(64)

        def greedy_actions(agent: PPO) -> list[str]:
            env = env_factory()
            obs, _ = env.reset(seed=3)
            names = []
            terminated = truncated = False
            while not (terminated or truncated):
                mask = env.action_masks()
                action = agent.predict(obs, mask, deterministic=True)
                if not mask[action]:
                    action = int(np.flatnonzero(mask)[0])
                names.append(env.actions[action].name)
                obs, _r, terminated, truncated, _i = env.step(action)
            return names

        assert greedy_actions(single) == greedy_actions(vectorised)

    def test_ppo_learns_on_vectorised_corridor(self):
        vec = SyncVectorEnv(_corridor_fns(4))
        agent = PPO(vec, PPOConfig(n_steps=32, batch_size=32, n_epochs=4, ent_coef=0.0), seed=0)
        summary = agent.learn(4000)
        assert summary.mean_episode_reward > 0.9
        assert summary.total_timesteps >= 4000
        assert summary.episodes > 0

    def test_ppo_trains_on_compilation_fleet(self):
        vec = make_compilation_vec_env(
            TINY_CIRCUITS, 2, device_name="ibmq_washington", max_steps=8, seed=1
        )
        agent = PPO(vec, PPOConfig(n_steps=16, batch_size=16, n_epochs=1), seed=1)
        summary = agent.learn(96)
        assert summary.total_timesteps >= 96

    def test_fleet_is_picklable_for_process_workers(self):
        factory = _corridor_fns(1)[0]
        env = factory()
        restored = pickle.loads(pickle.dumps(env))
        assert isinstance(restored, CorridorEnv)

    def test_predictor_trains_with_fleet(self):
        from repro.core import Predictor

        predictor = Predictor(
            reward="fidelity",
            device_name="ibmq_washington",
            max_steps=8,
            ppo_config=PPOConfig(n_steps=16, batch_size=16, n_epochs=1),
            seed=1,
            n_envs=2,
        )
        predictor.train(TINY_CIRCUITS, total_timesteps=64)
        assert predictor.is_trained
        result = predictor.compile(TINY_CIRCUITS[0])
        assert result.reached_done

    def test_predictor_rejects_bad_fleet_size(self):
        from repro.core import Predictor

        with pytest.raises(ValueError):
            Predictor(n_envs=0)
