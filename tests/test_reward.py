"""Unit tests for the reward functions."""

from __future__ import annotations

import pytest

from repro.circuit import QuantumCircuit
from repro.devices import get_device
from repro.reward import (
    REWARD_FUNCTIONS,
    combined_reward,
    critical_depth_reward,
    expected_fidelity,
    reward_function,
)


@pytest.fixture
def native_chain(montreal):
    """A small native circuit on connected qubits of ibmq_montreal."""
    a, b = montreal.coupling_map.edges[0]
    circuit = QuantumCircuit(montreal.num_qubits)
    circuit.sx(a)
    circuit.cx(a, b)
    circuit.measure(a, 0)
    circuit.measure(b, 1)
    return circuit


class TestExpectedFidelity:
    def test_in_unit_interval(self, native_chain, montreal):
        value = expected_fidelity(native_chain, montreal)
        assert 0.0 < value < 1.0

    def test_empty_circuit_has_fidelity_one(self, montreal):
        assert expected_fidelity(QuantumCircuit(2), montreal) == pytest.approx(1.0)

    def test_more_gates_lower_fidelity(self, montreal):
        a, b = montreal.coupling_map.edges[0]
        short = QuantumCircuit(montreal.num_qubits)
        short.cx(a, b)
        long = short.copy()
        for _ in range(10):
            long.cx(a, b)
        assert expected_fidelity(long, montreal) < expected_fidelity(short, montreal)

    def test_two_qubit_gates_cost_more_than_single(self, montreal):
        a, b = montreal.coupling_map.edges[0]
        single = QuantumCircuit(montreal.num_qubits)
        single.sx(a)
        double = QuantumCircuit(montreal.num_qubits)
        double.cx(a, b)
        assert expected_fidelity(double, montreal) < expected_fidelity(single, montreal)

    def test_unmeasured_circuit_counts_active_qubits(self, montreal):
        a, b = montreal.coupling_map.edges[0]
        unmeasured = QuantumCircuit(montreal.num_qubits)
        unmeasured.cx(a, b)
        measured = unmeasured.copy()
        measured.measure(a, 0)
        measured.measure(b, 1)
        assert expected_fidelity(unmeasured, montreal) == pytest.approx(
            expected_fidelity(measured, montreal)
        )

    def test_devices_rank_by_error_rates(self):
        # The same two-qubit circuit should have higher fidelity on IonQ
        # (low errors) than on Rigetti (high errors).
        ionq = get_device("ionq_harmony")
        rigetti = get_device("rigetti_aspen_m2")
        circuit_ionq = QuantumCircuit(ionq.num_qubits)
        circuit_ionq.rxx(0.5, 0, 1)
        a, b = rigetti.coupling_map.edges[0]
        circuit_rigetti = QuantumCircuit(rigetti.num_qubits)
        circuit_rigetti.cz(a, b)
        assert expected_fidelity(circuit_ionq, ionq) > expected_fidelity(circuit_rigetti, rigetti)

    def test_barrier_and_id_do_not_affect_fidelity(self, montreal):
        a, b = montreal.coupling_map.edges[0]
        plain = QuantumCircuit(montreal.num_qubits)
        plain.cx(a, b)
        noisy = QuantumCircuit(montreal.num_qubits)
        noisy.cx(a, b)
        noisy.barrier()
        noisy.i(a)
        assert expected_fidelity(plain, montreal) == pytest.approx(
            expected_fidelity(noisy, montreal)
        )


class TestCriticalDepthReward:
    def test_sequential_chain_scores_zero(self, montreal):
        circuit = QuantumCircuit(5)
        for q in range(4):
            circuit.cx(q, q + 1)
        assert critical_depth_reward(circuit, montreal) == pytest.approx(0.0)

    def test_parallel_gates_score_higher(self, montreal):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        assert critical_depth_reward(circuit, montreal) == pytest.approx(0.5)

    def test_no_two_qubit_gates_scores_one(self, montreal):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        assert critical_depth_reward(circuit, montreal) == pytest.approx(1.0)

    def test_device_argument_optional(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        assert critical_depth_reward(circuit) == pytest.approx(0.0)


class TestCombinedReward:
    def test_is_mean_of_both(self, native_chain, montreal):
        combined = combined_reward(native_chain, montreal)
        expected = 0.5 * (
            expected_fidelity(native_chain, montreal)
            + critical_depth_reward(native_chain, montreal)
        )
        assert combined == pytest.approx(expected)

    def test_in_unit_interval(self, native_chain, montreal):
        assert 0.0 <= combined_reward(native_chain, montreal) <= 1.0


class TestRegistry:
    def test_three_rewards_registered(self):
        assert set(REWARD_FUNCTIONS) == {"fidelity", "critical_depth", "combination"}

    def test_lookup(self):
        assert reward_function("fidelity") is expected_fidelity

    def test_unknown_reward_raises(self):
        with pytest.raises(KeyError):
            reward_function("speed")
