"""Unit tests for the MQT-Bench-style benchmark circuit generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    BENCHMARK_GENERATORS,
    available_benchmarks,
    benchmark_circuit,
    benchmark_suite,
    ghz,
    paper_benchmark_names,
    qft,
    wstate,
)
from repro.linalg import circuit_unitary

_FAMILIES = available_benchmarks()


class TestRegistry:
    def test_all_22_families_present(self):
        expected = {
            "ae", "dj", "ghz", "graphstate", "groundstate", "portfolioqaoa",
            "portfoliovqe", "pricingcall", "pricingput", "qaoa", "qft",
            "qftentangled", "qgan", "qpeexact", "qpeinexact", "realamprandom",
            "routing", "su2random", "tsp", "twolocalrandom", "vqe", "wstate",
        }
        assert set(_FAMILIES) == expected
        assert len(paper_benchmark_names()) == 22

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            benchmark_circuit("grover", 5)

    def test_too_few_qubits_raises(self):
        with pytest.raises(ValueError):
            benchmark_circuit("tsp", 2)


class TestGeneratedCircuits:
    @pytest.mark.parametrize("family", _FAMILIES)
    @pytest.mark.parametrize("num_qubits", [5, 8])
    def test_generates_requested_width(self, family, num_qubits):
        circuit = benchmark_circuit(family, num_qubits)
        assert circuit.num_qubits == num_qubits
        assert circuit.size() > 0
        assert circuit.metadata["benchmark"] == family

    @pytest.mark.parametrize("family", _FAMILIES)
    def test_minimum_size_generates(self, family):
        _generator, min_qubits = BENCHMARK_GENERATORS[family]
        circuit = benchmark_circuit(family, min_qubits)
        assert circuit.num_qubits == min_qubits

    @pytest.mark.parametrize("family", _FAMILIES)
    def test_has_measurements(self, family):
        circuit = benchmark_circuit(family, 5)
        assert circuit.count_ops().get("measure", 0) > 0

    @pytest.mark.parametrize("family", _FAMILIES)
    def test_uses_every_qubit(self, family):
        circuit = benchmark_circuit(family, 6)
        assert circuit.active_qubits() == set(range(6))

    @pytest.mark.parametrize("family", _FAMILIES)
    def test_deterministic(self, family):
        a = benchmark_circuit(family, 5)
        b = benchmark_circuit(family, 5)
        assert a == b

    @pytest.mark.parametrize("family", _FAMILIES)
    def test_contains_entanglement(self, family):
        circuit = benchmark_circuit(family, 6)
        assert circuit.num_two_qubit_gates() > 0


class TestSpecificCircuits:
    def test_ghz_produces_ghz_state(self):
        circuit = ghz(3).without_final_measurements()
        state = circuit_unitary(circuit)[:, 0]
        expected = np.zeros(8, dtype=complex)
        expected[0] = expected[7] = 1 / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_wstate_produces_w_state(self):
        circuit = wstate(3).without_final_measurements()
        state = circuit_unitary(circuit)[:, 0]
        amplitudes = np.abs(state) ** 2
        # |001>, |010>, |100> each with probability 1/3
        assert amplitudes[1] == pytest.approx(1 / 3, abs=1e-6)
        assert amplitudes[2] == pytest.approx(1 / 3, abs=1e-6)
        assert amplitudes[4] == pytest.approx(1 / 3, abs=1e-6)

    def test_qft_matrix_is_fourier(self):
        circuit = qft(3, with_measurements=False)
        unitary = circuit_unitary(circuit)
        dim = 8
        omega = np.exp(2j * np.pi / dim)
        fourier = np.array([[omega ** (j * k) for k in range(dim)] for j in range(dim)]) / np.sqrt(dim)
        assert np.allclose(unitary, fourier, atol=1e-7)

    def test_dj_balanced_oracle_structure(self):
        circuit = benchmark_circuit("dj", 5)
        assert circuit.count_ops()["cx"] == 4

    def test_qpe_exact_vs_inexact_differ(self):
        exact = benchmark_circuit("qpeexact", 5)
        inexact = benchmark_circuit("qpeinexact", 5)
        assert exact != inexact

    def test_qaoa_layer_structure(self):
        circuit = benchmark_circuit("qaoa", 6)
        counts = circuit.count_ops()
        assert counts["h"] == 6
        assert counts["rzz"] > 0
        assert counts["rx"] == 12  # 2 layers x 6 qubits


class TestSuite:
    def test_paper_scale_suite_size(self):
        suite = benchmark_suite(2, 20, step=2)
        assert 180 <= len(suite) <= 230  # paper uses ~200 circuits

    def test_respects_qubit_range(self):
        suite = benchmark_suite(3, 5, step=1)
        for circuit in suite:
            assert 3 <= circuit.num_qubits <= 5

    def test_name_filter(self):
        suite = benchmark_suite(2, 6, names=["ghz", "qft"], step=2)
        families = {c.metadata["benchmark"] for c in suite}
        assert families == {"ghz", "qft"}

    def test_family_minimums_respected(self):
        suite = benchmark_suite(2, 6, step=1)
        for circuit in suite:
            _gen, min_qubits = BENCHMARK_GENERATORS[circuit.metadata["benchmark"]]
            assert circuit.num_qubits >= min_qubits
