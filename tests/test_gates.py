"""Unit tests for the gate library."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit.gates import (
    GATE_SPECS,
    Gate,
    Instruction,
    gate_inverse,
    gate_matrix,
    is_supported_gate,
    standard_gate_names,
)
from repro.linalg import allclose_up_to_global_phase, is_unitary_matrix

_UNITARY_GATES = [name for name, spec in GATE_SPECS.items() if spec.matrix_fn is not None]


def _example_gate(name: str) -> Gate:
    spec = GATE_SPECS[name]
    params = tuple(0.3 + 0.2 * i for i in range(spec.num_params))
    return Gate(name, params)


class TestGateSpecs:
    @pytest.mark.parametrize("name", _UNITARY_GATES)
    def test_matrix_is_unitary(self, name):
        gate = _example_gate(name)
        assert is_unitary_matrix(gate_matrix(gate))

    @pytest.mark.parametrize("name", _UNITARY_GATES)
    def test_matrix_dimension_matches_qubits(self, name):
        gate = _example_gate(name)
        matrix = gate_matrix(gate)
        assert matrix.shape == (2**gate.num_qubits, 2**gate.num_qubits)

    @pytest.mark.parametrize("name", _UNITARY_GATES)
    def test_diagonal_flag_is_consistent(self, name):
        gate = _example_gate(name)
        spec = GATE_SPECS[name]
        matrix = gate_matrix(gate)
        off_diagonal = matrix - np.diag(np.diag(matrix))
        if spec.diagonal:
            assert np.allclose(off_diagonal, 0)

    @pytest.mark.parametrize("name", _UNITARY_GATES)
    def test_self_inverse_flag_is_consistent(self, name):
        spec = GATE_SPECS[name]
        if not spec.self_inverse or spec.num_params:
            pytest.skip("not a parameter-free self-inverse gate")
        matrix = gate_matrix(Gate(name))
        assert allclose_up_to_global_phase(matrix @ matrix, np.eye(matrix.shape[0]))

    @pytest.mark.parametrize("name", _UNITARY_GATES)
    def test_symmetric_flag_is_consistent(self, name):
        spec = GATE_SPECS[name]
        if spec.num_qubits != 2 or not spec.symmetric:
            pytest.skip("not a symmetric two-qubit gate")
        gate = _example_gate(name)
        matrix = gate_matrix(gate)
        swap = gate_matrix(Gate("swap"))
        assert np.allclose(swap @ matrix @ swap, matrix)

    def test_standard_gate_names_excludes_non_unitary(self):
        names = standard_gate_names()
        assert "measure" not in names
        assert "barrier" not in names
        assert "cx" in names and "h" in names

    def test_is_supported_gate(self):
        assert is_supported_gate("cx")
        assert not is_supported_gate("not_a_gate")


class TestGateObject:
    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError, match="unknown gate"):
            Gate("foobar")

    def test_wrong_parameter_count_raises(self):
        with pytest.raises(ValueError, match="expects 1 parameters"):
            Gate("rz")
        with pytest.raises(ValueError, match="expects 0 parameters"):
            Gate("x", (0.1,))

    def test_params_are_floats(self):
        gate = Gate("rz", (1,))
        assert isinstance(gate.params[0], float)

    def test_num_qubits_property(self):
        assert Gate("ccx").num_qubits == 3
        assert Gate("cx").num_qubits == 2
        assert Gate("h").num_qubits == 1

    def test_measure_is_not_unitary(self):
        assert not Gate("measure").is_unitary
        with pytest.raises(ValueError):
            Gate("measure").matrix()


class TestGateInverse:
    @pytest.mark.parametrize("name", _UNITARY_GATES)
    def test_inverse_matrix_is_actual_inverse(self, name):
        gate = _example_gate(name)
        inverse = gate_inverse(gate)
        product = gate_matrix(inverse) @ gate_matrix(gate)
        assert allclose_up_to_global_phase(product, np.eye(product.shape[0]))

    def test_named_inverse_pairs(self):
        assert gate_inverse(Gate("s")).name == "sdg"
        assert gate_inverse(Gate("tdg")).name == "t"
        assert gate_inverse(Gate("sx")).name == "sxdg"

    def test_rotation_inverse_negates_angle(self):
        inverse = gate_inverse(Gate("rz", (0.7,)))
        assert inverse.name == "rz"
        assert inverse.params == (-0.7,)

    def test_measure_has_no_inverse(self):
        with pytest.raises(ValueError):
            gate_inverse(Gate("measure"))


class TestInstruction:
    def test_qubit_count_validation(self):
        with pytest.raises(ValueError, match="acts on 2 qubits"):
            Instruction(Gate("cx"), (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError, match="duplicate qubits"):
            Instruction(Gate("cx"), (1, 1))

    def test_remap(self):
        instr = Instruction(Gate("cx"), (0, 1))
        remapped = instr.remap({0: 5, 1: 3})
        assert remapped.qubits == (5, 3)
        assert remapped.gate == instr.gate

    def test_params_shortcut(self):
        instr = Instruction(Gate("rz", (0.25,)), (2,))
        assert instr.params == (0.25,)
        assert instr.name == "rz"

    def test_barrier_allows_any_width(self):
        instr = Instruction(Gate("barrier"), (0, 1, 2, 3))
        assert len(instr.qubits) == 4


class TestSpecificMatrices:
    def test_hadamard(self):
        h = gate_matrix(Gate("h"))
        expected = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert np.allclose(h, expected)

    def test_cx_action_on_basis(self):
        cx = gate_matrix(Gate("cx"))
        # |10> -> |11> with qubit 0 (control) most significant
        state = np.zeros(4)
        state[2] = 1.0
        assert np.allclose(cx @ state, np.eye(4)[3])

    def test_swap_action(self):
        swap = gate_matrix(Gate("swap"))
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(swap @ state, np.eye(4)[2])  # |10>

    def test_rz_is_diagonal_phase(self):
        rz = gate_matrix(Gate("rz", (math.pi,)))
        assert np.allclose(np.abs(np.diag(rz)), 1.0)
        assert np.allclose(rz[0, 1], 0.0)

    def test_ccx_flips_target_when_controls_set(self):
        ccx = gate_matrix(Gate("ccx"))
        state = np.zeros(8)
        state[6] = 1.0  # |110>
        assert np.allclose(ccx @ state, np.eye(8)[7])  # |111>

    def test_u_gate_matches_composition(self):
        theta, phi, lam = 0.4, 1.1, -0.3
        u = gate_matrix(Gate("u", (theta, phi, lam)))
        composed = (
            gate_matrix(Gate("rz", (phi,)))
            @ gate_matrix(Gate("ry", (theta,)))
            @ gate_matrix(Gate("rz", (lam,)))
        )
        assert allclose_up_to_global_phase(u, composed)
