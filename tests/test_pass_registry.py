"""Tests for the pass registry, stage overrides, and the frozen action map."""

from __future__ import annotations

import pytest

import repro
from repro.bench import benchmark_circuit
from repro.compilers import preset_pass_manager, run_preset_manager
from repro.core.actions import FROZEN_ACTION_ORDER, build_action_registry
from repro.passes import (
    AnalysisDomain,
    OptimizationPass,
    PassContext,
    PassRole,
    UnknownPassError,
    available_passes,
    pass_catalog,
    pass_factory,
    pass_role,
    register_pass,
    registered_passes,
    resolve_pass,
    unregister_pass,
)
from repro.pipeline import PassManager, Stage


class TestRegistryContents:
    def test_builtins_are_registered_with_valid_metadata(self):
        catalog = pass_catalog()
        assert len(catalog) >= 20
        names = [entry["name"] for entry in catalog]
        assert len(names) == len(set(names))
        for entry in catalog:
            assert entry["role"] in PassRole.ALL, entry
            assert entry["origin"] in ("qiskit", "tket", "repro"), entry
            assert isinstance(entry["requires_device"], bool)

    def test_every_role_slot_is_populated(self):
        assert available_passes(role=PassRole.SYNTHESIS)
        assert available_passes(role=PassRole.LAYOUT)
        assert available_passes(role=PassRole.ROUTING)
        assert available_passes(role=PassRole.OPTIMIZATION)

    def test_declared_preserves_domains_are_valid(self):
        for name in registered_passes():
            instance = resolve_pass(name)
            assert instance.preserves <= AnalysisDomain.ALL, name
            assert instance.role == pass_role(name), name

    def test_resolve_returns_fresh_instances(self):
        a = resolve_pass("optimize_1q_gates")
        b = resolve_pass("optimize_1q_gates")
        assert a is not b

    def test_resolve_with_kwargs_and_instances(self):
        built = resolve_pass(("optimize_1q_gates", {"basis": "u3"}))
        assert built.name == "optimize_1q_gates"
        assert resolve_pass(built) is built
        with pytest.raises(TypeError):
            resolve_pass(42)

    def test_name_normalisation_dash_underscore(self):
        assert pass_factory("tket-routing") is pass_factory("tket_routing")

    def test_unknown_pass_error_lists_names(self):
        with pytest.raises(UnknownPassError) as excinfo:
            resolve_pass("nonexistent_pass")
        assert "sabre_swap" in str(excinfo.value)

    def test_role_filtered_lookup_rejects_wrong_role(self):
        with pytest.raises(UnknownPassError):
            resolve_pass("sabre_swap", role=PassRole.LAYOUT)
        assert resolve_pass("sabre_swap", role=PassRole.ROUTING).name == "sabre_swap"

    def test_duplicate_registration_rejected_without_overwrite(self):
        factory = pass_factory("sabre_swap")
        with pytest.raises(ValueError, match="already registered"):
            register_pass("sabre_swap", factory)
        register_pass("sabre_swap", factory, overwrite=True)  # idempotent refresh

    def test_conflicting_explicit_role_rejected(self):
        factory = pass_factory("sabre_swap")
        with pytest.raises(ValueError, match="must agree"):
            register_pass("conflicted", factory, role=PassRole.LAYOUT)

    def test_register_and_unregister_roundtrip(self):
        class Noop(OptimizationPass):
            name = "noop_roundtrip"

            def run(self, circuit, context):
                return circuit.copy()

        register_pass("noop_roundtrip", Noop)
        try:
            assert "noop_roundtrip" in available_passes(role=PassRole.OPTIMIZATION)
            assert isinstance(resolve_pass("noop_roundtrip"), Noop)
        finally:
            unregister_pass("noop_roundtrip")
        assert "noop_roundtrip" not in available_passes()


class TestRegisteredPassesNeverMutateInput:
    """The BasePass contract, checked registry-wide on every registered pass."""

    @pytest.mark.parametrize("name", sorted(registered_passes()))
    def test_pass_does_not_mutate_input(self, name, washington):
        role = pass_role(name)
        context = PassContext(device=washington, seed=3)
        circuit = benchmark_circuit("ghz", 3)
        if role in (PassRole.LAYOUT, PassRole.ROUTING):
            circuit = resolve_pass("basis_translator").run(circuit, context)
        if role == PassRole.ROUTING:
            circuit = resolve_pass("sabre_layout").run(circuit, context)
        before_fp = circuit.fingerprint()
        before_ops = circuit.count_ops()
        resolve_pass(name).run(circuit, context)
        assert circuit.fingerprint() == before_fp, name
        assert circuit.count_ops() == before_ops, name


class TestStageOverrides:
    def test_override_swaps_exactly_one_stage(self):
        base = preset_pass_manager("qiskit", 3)
        swapped = preset_pass_manager("qiskit", 3, overrides={"routing": "tket-routing"})
        base_schedule = base.describe()
        new_schedule = swapped.describe()
        assert len(base_schedule) == len(new_schedule)
        for base_stage, new_stage in zip(base_schedule, new_schedule):
            if base_stage["stage"] == "routing":
                assert base_stage["passes"] == ["sabre_swap"]
                assert new_stage["passes"] == ["tket_routing"]
            else:
                assert base_stage == new_stage

    def test_override_changes_only_that_stage_in_trace(self, washington):
        circuit = benchmark_circuit("ghz", 4)
        base = preset_pass_manager("qiskit", 3)
        swapped = preset_pass_manager("qiskit", 3, overrides={"routing": "tket_routing"})
        _, base_trace = run_preset_manager(base, circuit, washington, seed=0)
        compiled, trace = run_preset_manager(swapped, circuit, washington, seed=0)
        assert washington.is_executable(compiled)
        assert "tket_routing" in trace and "sabre_swap" not in trace
        assert "sabre_swap" in base_trace
        replaced = [name if name != "sabre_swap" else "tket_routing" for name in base_trace]
        assert trace == replaced

    def test_tket_style_routing_slot_is_overridable(self, washington):
        swapped = preset_pass_manager("tket", 2, overrides={"routing": "sabre_swap"})
        compiled, trace = run_preset_manager(
            swapped, benchmark_circuit("ghz", 4), washington, seed=0
        )
        assert washington.is_executable(compiled)
        assert "sabre_swap" in trace and "tket_routing" not in trace

    def test_override_list_and_kwargs_specs(self, washington):
        manager = preset_pass_manager(
            "qiskit",
            1,
            overrides={"pre_optimization": [("optimize_1q_gates", {"basis": "u3"})]},
        )
        schedule = {s["stage"]: s["passes"] for s in manager.describe()}
        assert schedule["pre_optimization"] == ["optimize_1q_gates"]

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            preset_pass_manager("qiskit", 3, overrides={"not_a_stage": "sabre_swap"})

    def test_unknown_pass_rejected_with_catalog(self):
        with pytest.raises(UnknownPassError):
            preset_pass_manager("qiskit", 3, overrides={"routing": "warp_drive"})

    def test_role_mismatch_rejected_with_legal_substitutes(self):
        with pytest.raises(ValueError, match="legal substitutes"):
            preset_pass_manager("qiskit", 3, overrides={"routing": "dense_layout"})

    def test_override_suffix_is_deterministic_and_distinct(self):
        base = preset_pass_manager("qiskit", 3)
        a = preset_pass_manager("qiskit", 3, overrides={"routing": "tket-routing"})
        b = preset_pass_manager("qiskit", 3, overrides={"routing": "tket_routing"})
        assert a.name == b.name != base.name
        assert a.name.startswith(base.name)

    def test_no_override_schedule_is_unchanged(self):
        assert (
            preset_pass_manager("qiskit", 3).describe()
            == preset_pass_manager("qiskit", 3, overrides=None).describe()
        )


class TestOverridesThroughFacade:
    def test_facade_pass_overrides_compile(self, washington):
        circuit = benchmark_circuit("ghz", 4)
        result = repro.compile(
            circuit,
            backend="qiskit-o3",
            device=washington,
            pass_overrides={"routing": "tket-routing"},
        )
        assert result.succeeded
        assert "tket_routing" in result.actions
        assert "+routing=tket_routing" in result.backend

    def test_facade_rejects_overrides_for_non_schedule_backends(self, washington):
        with pytest.raises(TypeError, match="does not support"):
            repro.compile(
                benchmark_circuit("ghz", 3),
                backend="best-of",
                device=washington,
                pass_overrides={"routing": "tket-routing"},
            )


class TestFrozenActionIndices:
    """Saved predictor checkpoints index actions by position — pin them."""

    # 4 platform + 5 device actions precede the pass-derived block.
    _OFFSET = 9

    def test_pass_action_block_matches_frozen_order(self):
        actions = build_action_registry()
        names = [a.name for a in actions[self._OFFSET :]]
        assert names == list(FROZEN_ACTION_ORDER)

    def test_absolute_indices_pinned(self):
        by_name = {a.name: a.index for a in build_action_registry()}
        assert by_name["synthesis_basis_translator"] == 9
        assert by_name["map_trivial_layout_basic_routing"] == 10
        assert by_name["map_sabre_layout_tket_routing"] == 21
        assert by_name["optimize_optimize_1q_gates"] == 22
        assert by_name["optimize_remove_redundancies"] == 33
        assert by_name["terminate"] == 34

    def test_newly_registered_pass_appends_after_terminate(self):
        class Noop(OptimizationPass):
            name = "noop_action"

            def run(self, circuit, context):
                return circuit.copy()

        baseline = [a.name for a in build_action_registry()]
        register_pass("noop_action", Noop)
        try:
            extended = [a.name for a in build_action_registry()]
        finally:
            unregister_pass("noop_action")
        assert extended[: len(baseline)] == baseline
        assert extended[len(baseline) :] == ["optimize_noop_action"]


class TestStageNameUniqueness:
    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate stage name"):
            PassManager([Stage("opt"), Stage("opt")], name="dup")

    def test_unique_stage_names_accepted(self):
        manager = PassManager([Stage("a"), Stage("b")], name="ok")
        assert [s.name for s in manager.stages] == ["a", "b"]
