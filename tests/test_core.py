"""Unit tests for the core package: actions, state machine, environment, predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import benchmark_circuit
from repro.circuit import QuantumCircuit
from repro.core import (
    ActionKind,
    CompilationEnv,
    CompilationState,
    CompilationStatus,
    Predictor,
    build_action_registry,
)
from repro.core.actions import TERMINATE_ACTION_NAME
from repro.devices import get_device
from repro.rl import PPOConfig


class TestActionRegistry:
    def test_registry_contains_all_kinds(self):
        actions = build_action_registry()
        kinds = {a.kind for a in actions}
        assert kinds == {
            ActionKind.PLATFORM,
            ActionKind.DEVICE,
            ActionKind.SYNTHESIS,
            ActionKind.MAPPING,
            ActionKind.OPTIMIZATION,
            ActionKind.TERMINATE,
        }

    def test_counts_match_paper_instantiation(self):
        actions = build_action_registry()
        by_kind = {}
        for action in actions:
            by_kind.setdefault(action.kind, []).append(action)
        assert len(by_kind[ActionKind.PLATFORM]) == 4
        assert len(by_kind[ActionKind.DEVICE]) == 5
        assert len(by_kind[ActionKind.SYNTHESIS]) == 1
        assert len(by_kind[ActionKind.MAPPING]) == 12  # 3 layouts x 4 routers
        assert len(by_kind[ActionKind.OPTIMIZATION]) == 12
        assert len(by_kind[ActionKind.TERMINATE]) == 1

    def test_indices_are_contiguous(self):
        actions = build_action_registry()
        assert [a.index for a in actions] == list(range(len(actions)))

    def test_origins_mix_sdk_styles(self):
        actions = build_action_registry()
        origins = {a.origin for a in actions if a.kind == ActionKind.OPTIMIZATION}
        assert "qiskit" in origins and "tket" in origins

    def test_platform_restriction(self):
        actions = build_action_registry(["ibm"])
        platform_actions = [a for a in actions if a.kind == ActionKind.PLATFORM]
        device_actions = [a for a in actions if a.kind == ActionKind.DEVICE]
        assert len(platform_actions) == 1
        assert {a.payload for a in device_actions} == {"ibmq_montreal", "ibmq_washington"}


class TestCompilationState:
    def test_start_status(self, bell_circuit):
        state = CompilationState(bell_circuit)
        assert state.status == CompilationStatus.START

    def test_platform_chosen_status(self, bell_circuit):
        state = CompilationState(bell_circuit, platform="ibm")
        assert state.status == CompilationStatus.PLATFORM_CHOSEN

    def test_device_chosen_status(self, bell_circuit, montreal):
        state = CompilationState(bell_circuit, platform="ibm", device=montreal)
        assert state.status == CompilationStatus.DEVICE_CHOSEN  # H is not native

    def test_native_gates_status(self, montreal):
        circuit = QuantumCircuit(3)
        circuit.sx(0)
        circuit.cx(0, 2)  # qubits 0 and 2 are NOT connected on montreal
        state = CompilationState(circuit, platform="ibm", device=montreal)
        assert state.status == CompilationStatus.NATIVE_GATES

    def test_done_status(self, montreal):
        a, b = montreal.coupling_map.edges[0]
        circuit = QuantumCircuit(montreal.num_qubits)
        circuit.sx(a)
        circuit.cx(a, b)
        state = CompilationState(circuit, platform="ibm", device=montreal)
        assert state.status == CompilationStatus.DONE
        assert state.is_done

    def test_describe_mentions_status_and_device(self, bell_circuit, montreal):
        state = CompilationState(bell_circuit, platform="ibm", device=montreal)
        text = state.describe()
        assert "ibmq_montreal" in text and "status=" in text


class TestCompilationEnv:
    @pytest.fixture
    def env(self, tiny_suite):
        return CompilationEnv(tiny_suite, reward="fidelity", max_steps=25, seed=0)

    def test_requires_circuits(self):
        with pytest.raises(ValueError):
            CompilationEnv([], reward="fidelity")

    def test_observation_shape_and_range(self, env):
        obs, info = env.reset(seed=1)
        assert obs.shape == env.observation_space.shape
        assert np.all(obs >= 0) and np.all(obs <= 1)
        assert "circuit" in info

    def test_initial_masks_allow_platform_and_optimization_only(self, env):
        env.reset(seed=1)
        mask = env.action_masks()
        for action in env.actions:
            if action.kind in (ActionKind.PLATFORM, ActionKind.OPTIMIZATION):
                continue
            assert not mask[action.index], action.name

    def test_step_requires_reset(self, tiny_suite):
        env = CompilationEnv(tiny_suite)
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_platform_then_device_selection(self, env):
        env.reset(seed=1)
        env.step(env.action_by_name("select_platform_ibm").index)
        assert env.state.status == CompilationStatus.PLATFORM_CHOSEN
        mask = env.action_masks()
        valid_kinds = {env.actions[i].kind for i in np.flatnonzero(mask)}
        assert valid_kinds == {ActionKind.DEVICE}
        env.step(env.action_by_name("select_device_ibmq_montreal").index)
        assert env.state.device is not None

    def test_mapping_only_available_after_native(self):
        # A 4-qubit QFT has all-to-all interactions, so after synthesis it is
        # native but not yet mapped on a heavy-hex device.
        env = CompilationEnv([benchmark_circuit("qft", 4)], max_steps=25, seed=0)
        env.reset(seed=1)
        env.step(env.action_by_name("select_platform_ibm").index)
        env.step(env.action_by_name("select_device_ibmq_washington").index)
        mask = env.action_masks()
        mapping_valid = [
            bool(mask[a.index]) for a in env.actions if a.kind == ActionKind.MAPPING
        ]
        if env.state.status == CompilationStatus.DEVICE_CHOSEN:
            assert not any(mapping_valid)
        env.step(env.action_by_name("synthesis_basis_translator").index)
        assert env.state.status == CompilationStatus.NATIVE_GATES
        mask = env.action_masks()
        mapping_valid = [
            bool(mask[a.index]) for a in env.actions if a.kind == ActionKind.MAPPING
        ]
        assert any(mapping_valid)

    def test_full_episode_reaches_done_and_rewards(self, env):
        env.reset(seed=1)
        env.step(env.action_by_name("select_platform_ibm").index)
        env.step(env.action_by_name("select_device_ibmq_montreal").index)
        env.step(env.action_by_name("synthesis_basis_translator").index)
        env.step(env.action_by_name("map_sabre_layout_sabre_routing").index)
        assert env.state.status == CompilationStatus.DONE
        mask = env.action_masks()
        terminate = env.action_by_name(TERMINATE_ACTION_NAME)
        assert mask[terminate.index]
        _obs, reward, terminated, _truncated, info = env.step(terminate.index)
        assert terminated
        assert 0.0 < reward <= 1.0
        assert info["final_reward"] == reward

    def test_sparse_reward_before_termination(self, env):
        env.reset(seed=1)
        _obs, reward, *_ = env.step(env.action_by_name("select_platform_ibm").index)
        assert reward == 0.0

    def test_invalid_action_penalised_not_fatal(self, env):
        env.reset(seed=1)
        terminate = env.action_by_name(TERMINATE_ACTION_NAME)
        _obs, reward, terminated, _trunc, info = env.step(terminate.index)
        assert not terminated
        assert reward < 0
        assert info.get("invalid")

    def test_truncation_at_max_steps(self, tiny_suite):
        env = CompilationEnv(tiny_suite, max_steps=3, seed=0)
        env.reset(seed=1)
        optimization = next(a for a in env.actions if a.kind == ActionKind.OPTIMIZATION)
        truncated = False
        for _ in range(3):
            _obs, _r, _term, truncated, _info = env.step(optimization.index)
        assert truncated

    def test_fixed_device_mode_skips_selection(self, tiny_suite):
        env = CompilationEnv(tiny_suite, device_name="ibmq_washington", max_steps=15, seed=0)
        env.reset(seed=1)
        assert env.state.device.name == "ibmq_washington"
        mask = env.action_masks()
        valid_kinds = {env.actions[i].kind for i in np.flatnonzero(mask)}
        assert ActionKind.PLATFORM not in valid_kinds
        assert ActionKind.DEVICE not in valid_kinds

    def test_episode_cycles_through_circuits(self, tiny_suite):
        env = CompilationEnv(tiny_suite, seed=0)
        names = set()
        for _ in range(min(4, len(tiny_suite))):
            _obs, info = env.reset()
            names.add(info["circuit"])
        assert len(names) > 1

    def test_epoch_shuffle_is_seed_deterministic(self, tiny_suite):
        """Episode order is shuffled per epoch by the seeded RNG — reproducibly."""

        def episode_order(seed: int, episodes: int) -> list[str]:
            env = CompilationEnv(tiny_suite, seed=seed)
            order = []
            for _ in range(episodes):
                _obs, info = env.reset()
                order.append(info["circuit"])
            return order

        episodes = 2 * len(tiny_suite)
        first = episode_order(11, episodes)
        second = episode_order(11, episodes)
        other = episode_order(12, episodes)
        assert first == second
        # Every epoch covers each circuit exactly once.
        all_names = sorted(c.name for c in tiny_suite)
        assert sorted(first[: len(tiny_suite)]) == all_names
        assert sorted(first[len(tiny_suite):]) == all_names
        # Different seeds shuffle differently (with several circuits the odds
        # of two epochs agreeing by chance are negligible).
        if len(tiny_suite) >= 3:
            assert first != other or len(set(first)) == 1

    def test_reset_seed_controls_shuffle(self, tiny_suite):
        """Explicit reset seeds reproduce the same shuffled episode order."""

        def order_with_reset_seed(seed: int) -> list[str]:
            env = CompilationEnv(tiny_suite, seed=0)
            names = []
            for episode in range(len(tiny_suite)):
                _obs, info = env.reset(seed=seed if episode == 0 else None)
                names.append(info["circuit"])
            return names

        assert order_with_reset_seed(5) == order_with_reset_seed(5)

    def test_failed_pass_not_recorded_in_applied_actions(self, tiny_suite):
        """Only successfully applied passes enter the trace; failures go to info."""
        env = CompilationEnv(tiny_suite, seed=0)
        env.reset(seed=1)

        class _Boom(Exception):
            pass

        def exploding_runner_apply(pass_, circuit, context):
            raise _Boom("pass exploded")

        action = env.action_by_name("optimize_optimize_1q_gates")
        original_apply = env._runner.apply
        env._runner.apply = exploding_runner_apply
        try:
            _obs, reward, terminated, _trunc, info = env.step(action.index)
        finally:
            env._runner.apply = original_apply
        assert not terminated and reward == 0.0
        assert "error" in info and "_Boom" in info["error"]
        assert info["failed_action"] == action.name
        assert env.state.applied_actions == []
        # A subsequent successful action is still recorded normally.
        env.step(env.action_by_name("select_platform_ibm").index)
        assert env.state.applied_actions == ["select_platform_ibm"]

    def test_state_seed_mode_is_deterministic_per_state(self, tiny_suite):
        """seed_mode="state": same action on the same circuit state, same seed."""
        suite = [tiny_suite[0]]
        env_a = CompilationEnv(suite, seed=3, seed_mode="state")
        env_b = CompilationEnv(suite, seed=3, seed_mode="state")
        env_a.reset(seed=1)
        env_b.reset(seed=99)  # the reset seed must not matter in state mode
        action = env_a.action_by_name("optimize_optimize_1q_gates")
        seed_a = env_a._pass_seed(action, env_a.state.circuit)
        seed_b = env_b._pass_seed(action, env_b.state.circuit)
        assert seed_a == seed_b
        # A different base seed derives a different pass seed.
        env_c = CompilationEnv(suite, seed=4, seed_mode="state")
        env_c.reset(seed=1)
        assert env_c._pass_seed(action, env_c.state.circuit) != seed_a

    def test_unknown_seed_mode_rejected(self, tiny_suite):
        with pytest.raises(ValueError):
            CompilationEnv(tiny_suite, seed_mode="chaotic")

    def test_oversized_circuit_masks_small_platforms(self):
        big = QuantumCircuit(40, name="big")
        for q in range(39):
            big.cx(q, q + 1)
        env = CompilationEnv([big], seed=0)
        env.reset(seed=1)
        mask = env.action_masks()
        oqc = env.action_by_name("select_platform_oqc")
        ibm = env.action_by_name("select_platform_ibm")
        assert not mask[oqc.index]
        assert mask[ibm.index]


class TestPredictor:
    def test_compile_before_training_raises(self, bell_circuit):
        with pytest.raises(RuntimeError):
            Predictor().compile(bell_circuit)

    def test_trained_predictor_produces_executable_circuit(self, trained_predictor):
        circuit = benchmark_circuit("ghz", 3)
        result = trained_predictor.compile(circuit)
        assert result.reached_done
        assert result.device is not None
        assert result.device.is_executable(result.circuit)
        assert 0.0 <= result.reward <= 1.0
        assert result.actions[-1] == TERMINATE_ACTION_NAME or result.reached_done

    def test_result_summary_format(self, trained_predictor):
        result = trained_predictor.compile(benchmark_circuit("dj", 3))
        text = result.summary()
        assert "reward[fidelity]" in text

    def test_evaluate_alternative_metric(self, trained_predictor):
        value = trained_predictor.evaluate(benchmark_circuit("ghz", 3), reward="critical_depth")
        assert 0.0 <= value <= 1.0

    def test_save_and_load_round_trip(self, trained_predictor, tmp_path):
        path = tmp_path / "predictor.json"
        trained_predictor.save(path)
        restored = Predictor.load(path)
        # Settings survive the round trip.
        assert restored.reward_name == trained_predictor.reward_name
        assert restored.device_name == trained_predictor.device_name
        assert restored.max_steps == trained_predictor.max_steps
        assert restored.seed == trained_predictor.seed
        # Policy and value weights are restored bit-for-bit.
        for net in ("policy_net", "value_net"):
            saved = getattr(trained_predictor._agent, net).state_dict()
            loaded_net = getattr(restored._agent, net).state_dict()
            for key in ("weights", "biases"):
                assert len(saved[key]) == len(loaded_net[key])
                for a, b in zip(saved[key], loaded_net[key]):
                    np.testing.assert_array_equal(np.asarray(a), np.asarray(b))
        # The restored policy takes the identical greedy action sequence.
        circuit = benchmark_circuit("qft", 3)
        original = trained_predictor.compile(circuit)
        loaded = restored.compile(circuit)
        assert loaded.actions == original.actions
        assert loaded.device.name == original.device.name
        assert loaded.reward == pytest.approx(original.reward)

    def test_save_untrained_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            Predictor().save(tmp_path / "x.json")

    def test_feature_importance_keys(self, trained_predictor):
        importance = trained_predictor.policy_feature_importance(benchmark_circuit("ghz", 3))
        from repro.features import FEATURE_NAMES

        assert set(importance) == set(FEATURE_NAMES)

    def test_training_summary_recorded(self, trained_predictor):
        assert trained_predictor.training_summary is not None
        assert trained_predictor.training_summary.episodes > 0
