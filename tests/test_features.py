"""Unit tests for the SupermarQ features and observation extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, random_circuit
from repro.features import (
    FEATURE_NAMES,
    critical_depth,
    entanglement_ratio,
    feature_dict,
    feature_vector,
    liveness,
    parallelism,
    program_communication,
    supermarq_features,
)


@pytest.fixture
def ghz4() -> QuantumCircuit:
    circuit = QuantumCircuit(4)
    circuit.h(0)
    for q in range(3):
        circuit.cx(q, q + 1)
    return circuit


class TestProgramCommunication:
    def test_no_interaction_is_zero(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        assert program_communication(circuit) == 0.0

    def test_ghz_chain(self, ghz4):
        # Chain interaction graph on 4 qubits: degrees 1,2,2,1 -> 6 / 12
        assert program_communication(ghz4) == pytest.approx(0.5)

    def test_all_to_all_is_one(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        assert program_communication(circuit) == pytest.approx(1.0)

    def test_single_qubit_circuit(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        assert program_communication(circuit) == 0.0


class TestCriticalDepth:
    def test_no_two_qubit_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        assert critical_depth(circuit) == 0.0

    def test_fully_sequential_chain_is_one(self, ghz4):
        assert critical_depth(ghz4) == pytest.approx(1.0)

    def test_parallel_gates_lower_value(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        assert critical_depth(circuit) == pytest.approx(0.5)

    def test_bounded_by_one(self):
        circuit = random_circuit(5, 10, seed=1)
        assert 0.0 <= critical_depth(circuit) <= 1.0


class TestEntanglementRatio:
    def test_only_single_qubit_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        assert entanglement_ratio(circuit) == 0.0

    def test_half_and_half(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        assert entanglement_ratio(circuit) == pytest.approx(0.5)

    def test_measurements_ignored(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.measure_all()
        assert entanglement_ratio(circuit) == pytest.approx(1.0)


class TestParallelism:
    def test_sequential_circuit_is_zero(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(0)
        circuit.h(0)
        assert parallelism(circuit) == pytest.approx(0.0)

    def test_fully_parallel_layer_is_one(self):
        circuit = QuantumCircuit(4)
        for q in range(4):
            circuit.h(q)
        assert parallelism(circuit) == pytest.approx(1.0)

    def test_in_unit_interval(self):
        circuit = random_circuit(6, 8, seed=3)
        assert 0.0 <= parallelism(circuit) <= 1.0


class TestLiveness:
    def test_always_active_qubits(self):
        circuit = QuantumCircuit(2)
        for _ in range(3):
            circuit.h(0)
            circuit.h(1)
        assert liveness(circuit) == pytest.approx(1.0)

    def test_idle_qubit_reduces_liveness(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(0)
        circuit.h(0)
        circuit.h(1)
        assert liveness(circuit) < 1.0

    def test_in_unit_interval(self):
        circuit = random_circuit(5, 9, seed=4)
        assert 0.0 <= liveness(circuit) <= 1.0


class TestFeatureExtraction:
    def test_feature_vector_order_and_shape(self, ghz4):
        vector = feature_vector(ghz4)
        assert vector.shape == (len(FEATURE_NAMES),)
        named = feature_dict(ghz4)
        for i, name in enumerate(FEATURE_NAMES):
            assert vector[i] == pytest.approx(named[name])

    def test_all_features_normalised(self):
        for seed in range(5):
            circuit = random_circuit(6, 12, seed=seed)
            vector = feature_vector(circuit)
            assert np.all(vector >= 0.0) and np.all(vector <= 1.0)

    def test_supermarq_features_keys(self, ghz4):
        features = supermarq_features(ghz4)
        assert set(features) == {
            "program_communication",
            "critical_depth",
            "entanglement_ratio",
            "parallelism",
            "liveness",
        }

    def test_qubit_feature_reflects_active_qubits(self):
        small = QuantumCircuit(20)
        small.h(0)
        big = QuantumCircuit(20)
        for q in range(20):
            big.h(q)
        assert feature_dict(small)["num_qubits"] < feature_dict(big)["num_qubits"]

    def test_depth_feature_monotonic(self):
        shallow = QuantumCircuit(2)
        shallow.h(0)
        deep = QuantumCircuit(2)
        for _ in range(50):
            deep.h(0)
        assert feature_dict(shallow)["depth"] < feature_dict(deep)["depth"]

    def test_empty_circuit_features_are_finite(self):
        circuit = QuantumCircuit(3)
        vector = feature_vector(circuit)
        assert np.all(np.isfinite(vector))
