"""Unit tests for the RL substrate: networks, distributions, buffers, PPO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl import (
    PPO,
    Adam,
    Box,
    Discrete,
    Env,
    MaskedCategorical,
    MLP,
    PPOConfig,
    RolloutBuffer,
)


class TestSpaces:
    def test_box_contains(self):
        box = Box(0.0, 1.0, (3,))
        assert box.contains(np.array([0.1, 0.5, 1.0]))
        assert not box.contains(np.array([0.1, 1.5, 0.2]))
        assert not box.contains(np.array([0.1, 0.2]))

    def test_box_sample_within_bounds(self):
        box = Box(-1.0, 1.0, (4,))
        sample = box.sample(np.random.default_rng(0))
        assert box.contains(sample)

    def test_discrete(self):
        space = Discrete(5)
        assert space.contains(0) and space.contains(4)
        assert not space.contains(5)
        with pytest.raises(ValueError):
            Discrete(0)


class TestMLP:
    def test_output_shape(self):
        net = MLP(4, 3, (8, 8), seed=0)
        out = net(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_single_sample_promoted_to_batch(self):
        net = MLP(4, 2, (8,), seed=0)
        out = net(np.zeros(4))
        assert out.shape == (1, 2)

    def test_deterministic_given_seed(self):
        a = MLP(3, 2, seed=11)
        b = MLP(3, 2, seed=11)
        x = np.random.default_rng(0).normal(size=(4, 3))
        assert np.allclose(a(x), b(x))

    def test_gradient_check(self):
        """Backward pass matches numerical finite-difference gradients."""
        rng = np.random.default_rng(3)
        net = MLP(3, 2, (5,), seed=2, output_scale=1.0)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss_value() -> float:
            out, _ = net.forward(x)
            return float(0.5 * np.sum((out - target) ** 2))

        out, cache = net.forward(x)
        grads = net.backward(cache, out - target)
        flat = net.flatten_grads(grads)
        params = net.parameters()
        eps = 1e-6
        for param, grad in zip(params, flat):
            index = tuple(0 for _ in param.shape)
            original = param[index]
            param[index] = original + eps
            plus = loss_value()
            param[index] = original - eps
            minus = loss_value()
            param[index] = original
            numerical = (plus - minus) / (2 * eps)
            assert np.isclose(grad[index], numerical, rtol=1e-4, atol=1e-6)

    def test_state_dict_round_trip(self):
        net = MLP(3, 2, seed=5)
        other = MLP(3, 2, seed=99)
        other.load_state_dict(net.state_dict())
        x = np.ones((2, 3))
        assert np.allclose(net(x), other(x))


class TestAdam:
    def test_minimises_quadratic(self):
        param = np.array([5.0, -3.0])
        optimizer = Adam([param], learning_rate=0.1)
        for _ in range(500):
            optimizer.step([2 * param])  # gradient of ||x||^2
        assert np.allclose(param, 0.0, atol=1e-2)

    def test_gradient_length_mismatch(self):
        optimizer = Adam([np.zeros(2)])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(2), np.zeros(2)])


class TestMaskedCategorical:
    def test_probabilities_sum_to_one(self):
        dist = MaskedCategorical(np.array([[1.0, 2.0, 3.0]]))
        assert np.isclose(dist.probs.sum(), 1.0)

    def test_masked_actions_have_zero_probability(self):
        mask = np.array([[True, False, True]])
        dist = MaskedCategorical(np.array([[1.0, 5.0, 1.0]]), mask)
        assert dist.probs[0, 1] < 1e-6

    def test_all_invalid_mask_rejected(self):
        with pytest.raises(ValueError):
            MaskedCategorical(np.zeros((1, 3)), np.zeros((1, 3), dtype=bool))

    def test_sample_respects_mask(self):
        mask = np.array([[False, True, False]])
        dist = MaskedCategorical(np.zeros((1, 3)), mask)
        rng = np.random.default_rng(0)
        samples = [int(dist.sample(rng)[0]) for _ in range(20)]
        assert set(samples) == {1}

    def test_mode_is_argmax(self):
        dist = MaskedCategorical(np.array([[0.0, 3.0, 1.0]]))
        assert dist.mode()[0] == 1

    def test_log_prob_matches_probs(self):
        dist = MaskedCategorical(np.array([[0.5, 1.5, -1.0]]))
        log_prob = dist.log_prob(np.array([1]))[0]
        assert np.isclose(np.exp(log_prob), dist.probs[0, 1])

    def test_entropy_maximal_for_uniform(self):
        uniform = MaskedCategorical(np.zeros((1, 4)))
        peaked = MaskedCategorical(np.array([[10.0, 0.0, 0.0, 0.0]]))
        assert uniform.entropy()[0] > peaked.entropy()[0]
        assert np.isclose(uniform.entropy()[0], np.log(4))

    def test_log_prob_gradient_numerics(self):
        logits = np.array([[0.3, -0.7, 1.2]])
        actions = np.array([2])
        eps = 1e-6
        dist = MaskedCategorical(logits)
        analytic = dist.log_prob_grad_logits(actions)[0]
        for k in range(3):
            plus, minus = logits.copy(), logits.copy()
            plus[0, k] += eps
            minus[0, k] -= eps
            numerical = (
                MaskedCategorical(plus).log_prob(actions)[0]
                - MaskedCategorical(minus).log_prob(actions)[0]
            ) / (2 * eps)
            assert np.isclose(analytic[k], numerical, atol=1e-5)

    def test_entropy_gradient_numerics(self):
        logits = np.array([[0.1, 0.9, -0.4]])
        eps = 1e-6
        analytic = MaskedCategorical(logits).entropy_grad_logits()[0]
        for k in range(3):
            plus, minus = logits.copy(), logits.copy()
            plus[0, k] += eps
            minus[0, k] -= eps
            numerical = (
                MaskedCategorical(plus).entropy()[0] - MaskedCategorical(minus).entropy()[0]
            ) / (2 * eps)
            assert np.isclose(analytic[k], numerical, atol=1e-5)


class TestRolloutBuffer:
    def test_add_and_full(self):
        buffer = RolloutBuffer(2, 3, 4)
        buffer.add(np.zeros(3), 0, 1.0, False, False, 0.5, -0.1, np.ones(4, dtype=bool))
        assert not buffer.full
        buffer.add(np.zeros(3), 1, 0.0, True, False, 0.2, -0.3, np.ones(4, dtype=bool))
        assert buffer.full
        with pytest.raises(RuntimeError):
            buffer.add(np.zeros(3), 0, 0.0, False, False, 0.0, 0.0, np.ones(4, dtype=bool))

    def test_gae_single_step_episode(self):
        buffer = RolloutBuffer(1, 1, 2, gamma=0.9, gae_lambda=1.0)
        buffer.add(np.zeros(1), 0, 1.0, True, False, 0.4, 0.0, np.ones(2, dtype=bool))
        buffer.compute_returns_and_advantages(last_values=0.0)
        # advantage = r - V(s) for a terminal step
        assert buffer.advantages[0, 0] == pytest.approx(1.0 - 0.4)
        assert buffer.returns[0, 0] == pytest.approx(1.0)

    def test_gae_two_step_episode_matches_hand_computation(self):
        gamma, lam = 0.9, 0.8
        buffer = RolloutBuffer(2, 1, 2, gamma=gamma, gae_lambda=lam)
        buffer.add(np.zeros(1), 0, 0.0, False, False, 0.5, 0.0, np.ones(2, dtype=bool))
        buffer.add(np.zeros(1), 1, 1.0, True, False, 0.6, 0.0, np.ones(2, dtype=bool))
        buffer.compute_returns_and_advantages(last_values=0.0)
        delta1 = 1.0 - 0.6
        delta0 = 0.0 + gamma * 0.6 - 0.5
        assert buffer.advantages[1, 0] == pytest.approx(delta1)
        assert buffer.advantages[0, 0] == pytest.approx(delta0 + gamma * lam * delta1)

    def test_truncation_bootstraps_final_state_value(self):
        """Regression: truncation is not termination — V(s_final) enters the target.

        Before the fix, a ``max_steps`` truncation was stored as ``done`` and
        the return target of the final step collapsed to ``r`` instead of
        ``r + gamma * V(s_final)``, biasing every episode that hit the limit.
        """
        gamma = 0.9
        buffer = RolloutBuffer(1, 1, 2, gamma=gamma, gae_lambda=0.95)
        v_final = 0.7
        buffer.add(
            np.zeros(1), 0, 0.2, False, True, 0.4, 0.0, np.ones(2, dtype=bool),
            bootstrap_values=v_final,
        )
        buffer.compute_returns_and_advantages(last_values=123.0)  # must be ignored
        assert buffer.returns[0, 0] == pytest.approx(0.2 + gamma * v_final)
        assert buffer.advantages[0, 0] == pytest.approx(0.2 + gamma * v_final - 0.4)

    def test_truncation_cuts_gae_chain_like_termination(self):
        """The lambda-chain must not leak across a truncation boundary."""
        gamma, lam = 0.9, 0.8
        buffer = RolloutBuffer(2, 1, 2, gamma=gamma, gae_lambda=lam)
        buffer.add(np.zeros(1), 0, 0.5, False, True, 0.3, 0.0, np.ones(2, dtype=bool),
                   bootstrap_values=0.6)
        buffer.add(np.zeros(1), 0, 0.0, False, False, 0.2, 0.0, np.ones(2, dtype=bool))
        buffer.compute_returns_and_advantages(last_values=0.1)
        # Step 1 belongs to the next episode and bootstraps the rollout tail.
        delta1 = 0.0 + gamma * 0.1 - 0.2
        assert buffer.advantages[1, 0] == pytest.approx(delta1)
        # Step 0's advantage is purely its own delta: no lambda term crosses
        # the episode boundary, but the truncated state's value is in it.
        delta0 = 0.5 + gamma * 0.6 - 0.3
        assert buffer.advantages[0, 0] == pytest.approx(delta0)

    def test_vectorised_gae_matches_per_env_computation(self):
        """(n_steps, n_envs) GAE equals running each env through its own buffer."""
        gamma, lam = 0.95, 0.9
        rng = np.random.default_rng(7)
        n_steps, n_envs = 6, 3
        rewards = rng.normal(size=(n_steps, n_envs))
        values = rng.normal(size=(n_steps, n_envs))
        terminated = rng.random((n_steps, n_envs)) < 0.2
        truncated = (rng.random((n_steps, n_envs)) < 0.2) & ~terminated
        bootstrap = np.where(truncated, rng.random((n_steps, n_envs)), 0.0)
        last_values = rng.normal(size=n_envs)

        vec = RolloutBuffer(n_steps, 1, 2, gamma=gamma, gae_lambda=lam, n_envs=n_envs)
        for t in range(n_steps):
            vec.add(np.zeros((n_envs, 1)), np.zeros(n_envs, dtype=int), rewards[t],
                    terminated[t], truncated[t], values[t], np.zeros(n_envs),
                    np.ones((n_envs, 2), dtype=bool), bootstrap[t])
        vec.compute_returns_and_advantages(last_values)

        for env in range(n_envs):
            single = RolloutBuffer(n_steps, 1, 2, gamma=gamma, gae_lambda=lam)
            for t in range(n_steps):
                single.add(np.zeros(1), 0, rewards[t, env], terminated[t, env],
                           truncated[t, env], values[t, env], 0.0,
                           np.ones(2, dtype=bool), bootstrap[t, env])
            single.compute_returns_and_advantages(last_values[env])
            np.testing.assert_allclose(vec.advantages[:, env], single.advantages[:, 0])
            np.testing.assert_allclose(vec.returns[:, env], single.returns[:, 0])

    def test_minibatches_cover_all_steps(self):
        buffer = RolloutBuffer(8, 2, 3)
        for i in range(8):
            buffer.add(np.full(2, i), i % 3, 0.0, False, False, 0.0, 0.0, np.ones(3, dtype=bool))
        buffer.compute_returns_and_advantages(0.0)
        seen = []
        for batch in buffer.minibatches(3, np.random.default_rng(0)):
            seen.extend(batch.observations[:, 0].tolist())
        assert sorted(seen) == list(range(8))

    def test_minibatches_cover_all_envs(self):
        buffer = RolloutBuffer(4, 1, 2, n_envs=2)
        for t in range(4):
            buffer.add(np.array([[2 * t], [2 * t + 1]]), np.zeros(2, dtype=int),
                       np.zeros(2), False, False, np.zeros(2), np.zeros(2),
                       np.ones((2, 2), dtype=bool))
        buffer.compute_returns_and_advantages(np.zeros(2))
        seen = []
        for batch in buffer.minibatches(3, np.random.default_rng(1)):
            seen.extend(batch.observations[:, 0].tolist())
        assert sorted(seen) == list(range(8))


class _CorridorEnv(Env):
    """Minimal test environment: walk right to the goal within a step limit."""

    def __init__(self, length: int = 5):
        self.length = length
        self.observation_space = Box(0.0, 1.0, (2,))
        self.action_space = Discrete(2)
        self.position = 0
        self.steps = 0

    def _obs(self):
        return np.array([self.position / self.length, self.steps / 20])

    def reset(self, *, seed=None):
        self.position = 0
        self.steps = 0
        return self._obs(), {}

    def step(self, action):
        self.steps += 1
        if action == 1:
            self.position += 1
        terminated = self.position >= self.length
        reward = 1.0 if terminated else 0.0
        truncated = self.steps >= 20 and not terminated
        return self._obs(), reward, terminated, truncated, {}


class TestPPO:
    def test_learns_corridor_task(self):
        env = _CorridorEnv()
        agent = PPO(env, PPOConfig(n_steps=64, batch_size=32, n_epochs=4, ent_coef=0.0), seed=0)
        summary = agent.learn(4000)
        assert summary.mean_episode_reward > 0.9
        assert summary.mean_episode_length < 7

    def test_predict_deterministic_vs_stochastic(self):
        env = _CorridorEnv()
        agent = PPO(env, PPOConfig(n_steps=32, batch_size=16, n_epochs=2), seed=1)
        obs, _ = env.reset()
        greedy = agent.predict(obs, deterministic=True)
        assert greedy in (0, 1)

    def test_save_and_load_round_trip(self, tmp_path):
        env = _CorridorEnv()
        agent = PPO(env, PPOConfig(n_steps=32, batch_size=16, n_epochs=2), seed=2)
        agent.learn(200)
        path = tmp_path / "agent.json"
        agent.save(path)
        restored = PPO(_CorridorEnv(), seed=9)
        restored.load(path)
        obs, _ = env.reset()
        assert restored.predict(obs) == agent.predict(obs)

    def test_training_summary_counts(self):
        env = _CorridorEnv()
        agent = PPO(env, PPOConfig(n_steps=32, batch_size=16, n_epochs=2), seed=3)
        summary = agent.learn(300)
        assert summary.total_timesteps >= 300
        assert summary.episodes > 0
