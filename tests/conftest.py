"""Shared pytest fixtures for the repro test-suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Make the package importable without installation (mirrors `pip install -e .`).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import benchmark_suite  # noqa: E402
from repro.circuit import QuantumCircuit, random_circuit  # noqa: E402
from repro.core import Predictor  # noqa: E402
from repro.devices import Calibration, Device, get_device  # noqa: E402
from repro.devices.topologies import line_map  # noqa: E402
from repro.rl import PPOConfig  # noqa: E402


@pytest.fixture(scope="session")
def washington() -> Device:
    return get_device("ibmq_washington")


@pytest.fixture(scope="session")
def montreal() -> Device:
    return get_device("ibmq_montreal")


@pytest.fixture(scope="session")
def all_devices() -> list[Device]:
    from repro.devices import list_devices

    return [get_device(name) for name in list_devices()]


@pytest.fixture(scope="session")
def line5_device() -> Device:
    """A tiny 5-qubit line device (IBM gate set) for fast routing tests."""
    coupling = line_map(5)
    return Device(
        name="line5",
        platform="ibm",
        num_qubits=5,
        gate_set=get_device("ibmq_montreal").gate_set,
        coupling_map=coupling,
        calibration=Calibration.synthetic(
            coupling,
            seed=5,
            single_qubit_error=5e-4,
            two_qubit_error=8e-3,
            readout_error=1.5e-2,
        ),
        description="test-only 5-qubit line",
    )


@pytest.fixture
def bell_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def ghz5() -> QuantumCircuit:
    circuit = QuantumCircuit(5, name="ghz5")
    circuit.h(0)
    for q in range(4):
        circuit.cx(q, q + 1)
    return circuit


@pytest.fixture
def random_4q() -> QuantumCircuit:
    return random_circuit(4, 8, seed=42)


@pytest.fixture(scope="session")
def tiny_suite() -> list[QuantumCircuit]:
    """A small benchmark suite used by environment / evaluation tests."""
    return benchmark_suite(2, 4, step=1, names=["ghz", "dj", "qft", "wstate", "vqe"])


@pytest.fixture(scope="session")
def trained_predictor(tiny_suite) -> Predictor:
    """A Predictor trained with a very small budget (shared across tests)."""
    predictor = Predictor(
        reward="fidelity",
        max_steps=20,
        ppo_config=PPOConfig(n_steps=64, batch_size=32, n_epochs=3),
        seed=7,
    )
    predictor.train(tiny_suite, total_timesteps=1200)
    return predictor


def assert_allclose_phase(a: np.ndarray, b: np.ndarray) -> None:
    """Assert two operators are equal up to a global phase."""
    from repro.linalg import allclose_up_to_global_phase

    assert allclose_up_to_global_phase(a, b), "operators differ by more than a global phase"
