"""Unit tests for layout and routing passes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, random_circuit
from repro.devices import get_device
from repro.linalg import allclose_up_to_global_phase, circuit_unitary
from repro.passes import (
    BasicSwap,
    BasisTranslator,
    DenseLayout,
    PassContext,
    SabreLayout,
    SabreSwap,
    StochasticSwap,
    TketRouting,
    TrivialLayout,
    apply_layout,
)

_LAYOUTS = [TrivialLayout, DenseLayout, SabreLayout]
_ROUTERS = [BasicSwap, StochasticSwap, SabreSwap, TketRouting]


def _permutation_adjusted_equivalent(original, routed, final_layout, initial_layout, device):
    """Check unitary equivalence of a routed circuit up to the output permutation.

    Routing may permute qubits (tracked by ``final_layout``); appending SWAPs
    that undo the permutation must recover the laid-out circuit's unitary.
    """
    placed = apply_layout(original, initial_layout, device)
    fixed = routed.copy()
    # Undo the permutation: move each virtual wire back to its original position.
    current = dict(final_layout)
    for virtual in sorted(current):
        target = virtual
        actual = current[virtual]
        if actual == target:
            continue
        # find which virtual currently sits at `target`
        other = next(v for v, p in current.items() if p == target)
        fixed.swap(actual, target)
        current[virtual], current[other] = target, actual
    return allclose_up_to_global_phase(circuit_unitary(fixed), circuit_unitary(placed))


class TestLayouts:
    @pytest.mark.parametrize("layout_cls", _LAYOUTS)
    def test_layout_records_assignment(self, layout_cls, line5_device):
        circuit = random_circuit(3, 4, seed=1)
        context = PassContext(device=line5_device, seed=0)
        native = BasisTranslator().run(circuit, context)
        placed = layout_cls().run(native, context)
        assert placed.num_qubits == line5_device.num_qubits
        assert context.initial_layout is not None
        assert len(set(context.initial_layout.values())) == len(context.initial_layout)

    @pytest.mark.parametrize("layout_cls", _LAYOUTS)
    def test_layout_preserves_gate_counts(self, layout_cls, line5_device):
        circuit = random_circuit(3, 4, seed=2)
        context = PassContext(device=line5_device, seed=0)
        native = BasisTranslator().run(circuit, context)
        placed = layout_cls().run(native, context)
        assert placed.count_ops() == native.count_ops()

    def test_trivial_layout_is_identity(self, line5_device):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        context = PassContext(device=line5_device)
        TrivialLayout().run(circuit, context)
        assert context.initial_layout == {0: 0, 2: 2}

    def test_dense_layout_picks_connected_region(self, washington):
        circuit = QuantumCircuit(4)
        for q in range(3):
            circuit.cx(q, q + 1)
        context = PassContext(device=washington)
        DenseLayout().run(circuit, context)
        region = set(context.initial_layout.values())
        assert washington.coupling_map.subgraph_connected(region)

    def test_layout_rejects_too_large_circuits(self, line5_device):
        circuit = QuantumCircuit(9)
        for q in range(8):
            circuit.cx(q, q + 1)
        with pytest.raises(ValueError):
            TrivialLayout().run(circuit, PassContext(device=line5_device))

    def test_apply_layout_rejects_duplicate_targets(self, line5_device):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        with pytest.raises(ValueError, match="same physical qubit"):
            apply_layout(circuit, {0: 1, 1: 1}, line5_device)


class TestRouting:
    @pytest.mark.parametrize("router_cls", _ROUTERS)
    @pytest.mark.parametrize("seed", range(3))
    def test_routed_circuit_satisfies_coupling(self, router_cls, seed, line5_device):
        circuit = random_circuit(4, 6, seed=seed)
        context = PassContext(device=line5_device, seed=seed)
        native = BasisTranslator().run(circuit, context)
        placed = TrivialLayout().run(native, context)
        routed = router_cls().run(placed, context)
        assert line5_device.mapping_satisfied(routed)
        assert line5_device.gates_native(routed)

    @pytest.mark.parametrize("router_cls", _ROUTERS)
    def test_routed_circuit_is_equivalent_up_to_permutation(self, router_cls, line5_device):
        circuit = random_circuit(4, 5, seed=11)
        context = PassContext(device=line5_device, seed=3)
        native = BasisTranslator().run(circuit, context)
        placed = TrivialLayout().run(native, context)
        routed = router_cls().run(placed, context)
        assert context.final_layout is not None
        assert _permutation_adjusted_equivalent(
            native, routed, context.final_layout, context.initial_layout, line5_device
        )

    @pytest.mark.parametrize("router_cls", _ROUTERS)
    def test_already_routed_circuit_untouched(self, router_cls, line5_device):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        context = PassContext(device=line5_device, seed=0)
        routed = router_cls().run(circuit, context)
        assert routed.count_ops() == circuit.count_ops()

    @pytest.mark.parametrize("router_cls", _ROUTERS)
    def test_rejects_three_qubit_gates(self, router_cls, line5_device):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(ValueError, match="at most two qubits"):
            router_cls().run(circuit, PassContext(device=line5_device))

    def test_sabre_beats_or_matches_basic_on_chain(self, washington):
        """SABRE's lookahead should not need more SWAPs than naive routing."""
        circuit = QuantumCircuit(8)
        rng = np.random.default_rng(5)
        for _ in range(15):
            a, b = rng.choice(8, size=2, replace=False)
            circuit.cx(int(a), int(b))
        context_basic = PassContext(device=washington, seed=1)
        context_sabre = PassContext(device=washington, seed=1)
        native = BasisTranslator().run(circuit, PassContext(device=washington))
        placed_basic = TrivialLayout().run(native, context_basic)
        placed_sabre = TrivialLayout().run(native, context_sabre)
        basic = BasicSwap().run(placed_basic, context_basic)
        sabre = SabreSwap().run(placed_sabre, context_sabre)
        assert sabre.num_two_qubit_gates() <= basic.num_two_qubit_gates() * 1.5

    def test_routing_on_non_cx_device_stays_native(self):
        device = get_device("oqc_lucy")
        circuit = random_circuit(4, 5, seed=9)
        context = PassContext(device=device, seed=2)
        native = BasisTranslator().run(circuit, context)
        placed = TrivialLayout().run(native, context)
        routed = SabreSwap().run(placed, context)
        assert device.gates_native(routed)
        assert device.mapping_satisfied(routed)

    def test_measurements_are_remapped(self, line5_device):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        circuit.measure_all()
        context = PassContext(device=line5_device, seed=0)
        placed = TrivialLayout().run(circuit, context)
        routed = BasicSwap().run(placed, context)
        assert routed.count_ops()["measure"] == 3
