"""Tests for the compile-service subsystem and the pluggable cache stores."""

from __future__ import annotations

import pickle
import re
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api.batch import compile_batch
from repro.bench import benchmark_circuit
from repro.pipeline import CostAwareStore, DictStore, LruCache, TransformCache
from repro.service import CacheServer, CompileService, ServiceClient, SharedCacheStore


@pytest.fixture(scope="module")
def small_circuits():
    return [benchmark_circuit("ghz", 4), benchmark_circuit("qft", 4)]


@pytest.fixture(scope="module")
def cache_server():
    server = CacheServer(maxsize=512)
    yield server
    server.shutdown()


# ---------------------------------------------------------------------------------
# cache stores: counters, eviction, concurrency
# ---------------------------------------------------------------------------------


class TestDictStoreCounters:
    def test_stats_track_hits_misses_and_evictions(self):
        store = DictStore(maxsize=2)
        assert store.get("a") is None  # miss
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1  # hit
        store.put("c", 3)  # evicts "b" (LRU: "a" was touched)
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert store.get("b") is None  # the evicted key is gone
        assert store.get("a") == 1 and store.get("c") == 3

    def test_clear_resets_counters(self):
        store = DictStore(maxsize=2)
        store.put("a", 1)
        store.get("a")
        store.get("zzz")
        store.clear()
        assert store.stats() == {
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "hit_rate": 0.0,
        }


class TestLruCacheStats:
    def test_stats_correct_under_eviction(self):
        cache = LruCache(maxsize=4)
        for i in range(10):
            cache.put(i, i * i)
        assert len(cache) == 4
        assert cache.evictions == 6
        # Only the four most recent keys survive.
        hits = sum(cache.get(i) is not None for i in range(10))
        assert hits == 4
        assert cache.hits == 4 and cache.misses == 6
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["hit_rate"] == pytest.approx(0.4)

    def test_counter_attributes_stay_in_sync_with_stats(self):
        cache = LruCache(maxsize=8)
        cache.put("k", "v")
        cache.get("k")
        cache.get("missing")
        assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 0)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_thread_hammer(self):
        """Concurrent get/put/stats from many threads: no lost updates, no errors."""
        cache = LruCache(maxsize=64)
        n_threads, n_ops = 8, 300
        errors = []
        barrier = threading.Barrier(n_threads)

        def hammer(worker: int) -> None:
            try:
                barrier.wait(timeout=30)
                rng = np.random.default_rng(worker)
                for op in range(n_ops):
                    key = int(rng.integers(0, 96))  # 96 keys > maxsize: forces eviction
                    if op % 3 == 0:
                        cache.put(key, (worker, op))
                    else:
                        value = cache.get(key)
                        if value is not None:
                            assert isinstance(value, tuple) and len(value) == 2
                    if op % 50 == 0:
                        cache.stats()
            except Exception as exc:  # noqa: BLE001 - surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        stats = cache.stats()
        # Every operation was counted exactly once and the cap held.
        gets = n_threads * n_ops - n_threads * len(range(0, n_ops, 3))
        assert stats["hits"] + stats["misses"] == gets
        assert stats["entries"] <= 64
        assert stats["evictions"] > 0

    def test_analysis_cache_counts_evictions(self, small_circuits):
        cache = repro.AnalysisCache(maxsize=1)
        for circuit in small_circuits:
            cache.feature_vector(circuit)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 1


class TestSharedCacheStore:
    def test_round_trip_and_server_side_counters(self, cache_server):
        store = cache_server.store()
        store.put(("k", 1), {"payload": 7})
        assert store.get(("k", 1)) == {"payload": 7}
        assert store.get(("absent", 0)) is None
        stats = store.stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_pickled_client_sees_same_entries(self, cache_server):
        store = cache_server.store()
        store.put("shared-key", [1, 2, 3])
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get("shared-key") == [1, 2, 3]

    def test_lru_cache_over_shared_store(self, cache_server):
        first = LruCache(store=cache_server.store())
        second = LruCache(store=cache_server.store())
        first.put("cross", "process")
        assert second.get("cross") == "process"

    def test_store_after_shutdown_rejected(self):
        server = CacheServer(maxsize=4)
        server.shutdown()
        with pytest.raises(RuntimeError):
            server.store()


# ---------------------------------------------------------------------------------
# CompileService
# ---------------------------------------------------------------------------------


class TestCompileService:
    def test_round_trip_matches_compile_batch(self, small_circuits):
        """N clients submitting overlapping work == compile_batch, with shared hits."""
        backends = ["qiskit-o1", "tket-o1"]
        reference = compile_batch(
            small_circuits, backends, device="ibmq_washington", cache=None
        )
        with CompileService(max_workers=2) as service:
            clients = [ServiceClient(service) for _ in range(3)]
            futures = [
                (ci, backend, client.submit(circuit, backend, device="ibmq_washington"))
                for client in clients
                for ci, circuit in enumerate(small_circuits)
                for backend in backends
            ]
            results = {}
            for ci, backend, future in futures:
                result = future.result(timeout=120)
                assert result.succeeded
                results.setdefault((ci, backend), []).append(result)
            stats = service.stats()

        for (ci, backend), outcomes in results.items():
            expected = reference.get(ci, backend)
            for outcome in outcomes:
                assert outcome.reward == pytest.approx(expected.reward)
                assert outcome.scores == pytest.approx(expected.scores)
        # Three clients asked for identical work: the overlap must have been
        # served by the shared cache / in-flight coalescing, not recompiled.
        n_unique = len(small_circuits) * len(backends)
        assert stats["submitted"] == 3 * n_unique
        assert stats["completed"] == stats["submitted"]
        assert stats["cache_hits"] + stats["coalesced"] == 2 * n_unique
        assert stats["failed"] == 0
        assert stats["unfinished"] == 0

    def test_warm_cache_serves_second_wave(self, small_circuits):
        """Requests arriving after the first wave completed hit the shared cache."""
        backends = ["qiskit-o1", "tket-o1"]
        with CompileService(max_workers=2) as service:
            first = [
                service.submit(circuit, backend, device="ibmq_washington")
                for circuit in small_circuits
                for backend in backends
            ]
            rewards = [future.result(timeout=120).reward for future in first]
            before = service.stats()["cache"]["hits"]
            second = [
                service.submit(circuit, backend, device="ibmq_washington")
                for circuit in small_circuits
                for backend in backends
            ]
            warm = [future.result(timeout=120) for future in second]
            stats = service.stats()
        assert [r.reward for r in warm] == pytest.approx(rewards)
        assert all(r.metadata.get("cached") for r in warm)
        assert stats["cache"]["hits"] - before == len(warm)
        assert stats["cache_hits"] >= len(warm)

    def test_per_backend_lanes(self, small_circuits):
        with CompileService() as service:
            futures = [
                service.submit(small_circuits[0], name, device="ibmq_washington")
                for name in ("qiskit-o0", "tket-o0")
            ]
            for future in futures:
                assert future.result(timeout=120).succeeded
            lanes = service.stats()["lanes"]
        assert set(lanes) == {"qiskit-o0", "tket-o0"}
        assert all(lane["kind"] == "thread" for lane in lanes.values())
        assert all(lane["dispatched"] == 1 for lane in lanes.values())

    def test_process_lane_with_shared_store(self, small_circuits, cache_server):
        with CompileService(
            store=cache_server.store(), process_backends=("qiskit-o0",), max_workers=1
        ) as service:
            result = service.submit(
                small_circuits[0], "qiskit-o0", device="ibmq_washington"
            ).result(timeout=180)
            assert result.succeeded
            assert service.stats()["lanes"]["qiskit-o0"]["kind"] == "process"
        # A second service over the same server store reuses the entry.
        with CompileService(store=cache_server.store()) as second:
            again = second.submit(
                small_circuits[0], "qiskit-o0", device="ibmq_washington"
            ).result(timeout=120)
            assert again.metadata.get("cached") is True
            assert again.reward == pytest.approx(result.reward)

    def test_compile_failures_are_captured(self, small_circuits):
        class Failing:
            name = "svc-failing"

            def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
                raise RuntimeError("boom")

        with CompileService() as service:
            result = service.submit(small_circuits[0], Failing()).result(timeout=60)
            assert not result.succeeded
            assert "boom" in result.error
            assert service.stats()["failed"] == 1

    def test_invalid_submissions_fail_fast(self, small_circuits):
        with CompileService() as service:
            with pytest.raises(KeyError):
                service.submit(small_circuits[0], "no-such-backend")
            with pytest.raises(KeyError, match="unknown reward"):
                service.submit(small_circuits[0], "qiskit-o0", objective="no-such-objective")
            stats = service.stats()
            assert stats["submitted"] == 0 and stats["unfinished"] == 0

    def test_unpicklable_backend_rejected_for_process_lane(self, small_circuits):
        class Unpicklable:
            name = "svc-unpicklable"

            def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
                raise AssertionError("never reached")

            def __reduce__(self):
                raise TypeError("cannot pickle")

        with CompileService(process_backends=("svc-unpicklable",)) as service:
            result = service.submit(small_circuits[0], Unpicklable()).result(timeout=60)
            assert not result.succeeded
            assert "pickle" in result.error

    def test_shutdown_refuses_new_work_and_drains(self, small_circuits):
        service = CompileService()
        future = service.submit(small_circuits[0], "tket-o0", device="ibmq_washington")
        service.shutdown(drain=True)
        assert future.done() and future.result().succeeded
        with pytest.raises(RuntimeError):
            service.submit(small_circuits[0], "tket-o0")
        service.shutdown()  # idempotent

    def test_drain_timeout_returns_false_only_with_pending_work(self):
        with CompileService() as service:
            assert service.drain(timeout=0.5) is True

    def test_facade_service_path(self, small_circuits):
        with CompileService() as service:
            via_service = repro.compile(
                small_circuits[0], "qiskit-o0", device="ibmq_washington", service=service
            )
            direct = repro.compile(small_circuits[0], "qiskit-o0", device="ibmq_washington")
            assert via_service.reward == pytest.approx(direct.reward)
            assert service.stats()["submitted"] == 1

    def test_facade_qos_fields_require_service(self, small_circuits):
        with pytest.raises(ValueError, match="service"):
            repro.compile(small_circuits[0], "qiskit-o0", priority=1)
        with pytest.raises(ValueError, match="service"):
            repro.compile(small_circuits[0], "qiskit-o0", deadline=5.0)
        with CompileService() as service:
            result = repro.compile(
                small_circuits[0],
                "qiskit-o0",
                device="ibmq_washington",
                service=service,
                priority=3,
                deadline=120.0,
            )
            assert result.succeeded

    def test_compile_batch_qos_fields(self, small_circuits):
        with pytest.raises(ValueError, match="executor='service'"):
            compile_batch(small_circuits, ["qiskit-o0"], priority=1)
        with pytest.raises(ValueError, match="executor='service'"):
            compile_batch(small_circuits, ["qiskit-o0"], deadline=1.0)
        with CompileService() as service:
            batch = compile_batch(
                small_circuits,
                ["qiskit-o0"],
                device="ibmq_washington",
                cache=None,
                executor="service",
                service=service,
                priority=2,
                deadline=300.0,
            )
        assert not batch.failures

    def test_compile_batch_service_duplicates_keep_qos_semantics(self, small_circuits):
        """Duplicate (circuit, backend) entries must get identical QoS verdicts
        through the service — a deadline=0 sweep expires *every* copy instead
        of recompiling duplicates synchronously without a deadline."""
        with CompileService() as service:
            batch = compile_batch(
                [small_circuits[0], small_circuits[0]],
                ["qiskit-o1"],
                device="ibmq_washington",
                cache=None,
                executor="service",
                service=service,
                deadline=0,
            )
        assert len(batch.results) == 2
        for result in batch.results:
            assert not result.succeeded
            assert result.metadata.get("deadline_exceeded") is True

    def test_cost_aware_store_backs_the_service_cache(self, small_circuits):
        store = CostAwareStore(maxsize=64)
        with CompileService(store=store) as service:
            first = service.submit(
                small_circuits[0], "qiskit-o0", device="ibmq_washington"
            ).result(timeout=120)
            again = service.submit(
                small_circuits[0], "qiskit-o0", device="ibmq_washington"
            ).result(timeout=120)
        assert first.succeeded and again.metadata.get("cached") is True
        stats = store.stats()
        assert stats["entries"] == 1 and stats["hits"] >= 1
        # The entry's cost was taken from the observed compile wall-time.
        assert stats["resident_cost"] == pytest.approx(first.wall_time)

    def test_compile_batch_service_executor(self, small_circuits):
        threaded = compile_batch(
            small_circuits, ["qiskit-o1", "tket-o0"], device="ibmq_washington", cache=None
        )
        with CompileService(max_workers=2) as service:
            serviced = compile_batch(
                small_circuits,
                ["qiskit-o1", "tket-o0"],
                device="ibmq_washington",
                cache=None,
                executor="service",
                service=service,
            )
        assert [r.reward for r in serviced] == pytest.approx([r.reward for r in threaded])
        assert not serviced.failures

    def test_compile_batch_service_argument_validation(self, small_circuits):
        with CompileService() as service:
            with pytest.raises(ValueError, match="executor='service'"):
                compile_batch(
                    small_circuits, ["qiskit-o0"], executor="thread", service=service
                )

    def test_ticket_rpc_surface(self, small_circuits):
        with CompileService() as service:
            ticket = service.submit_request(
                small_circuits[0], "qiskit-o0", "ibmq_washington"
            )
            result = service.wait_result(ticket, timeout=120)
            assert result.succeeded
            with pytest.raises(KeyError):
                service.wait_result(ticket)  # tickets are single-use
            assert service.ping() == "compile-service"


class TestRemoteService:
    def test_remote_client_round_trip(self, small_circuits, tmp_path):
        """`python -m repro.service` serves a remote ServiceClient."""
        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin", "HOME": str(tmp_path)},
        )
        try:
            address = authkey = None
            for _ in range(50):
                line = proc.stdout.readline()
                if not line:
                    break
                match = re.search(r"listening on ([\d.]+):(\d+)", line)
                if match:
                    address = (match.group(1), int(match.group(2)))
                match = re.search(r"authkey: ([0-9a-f]+)", line)
                if match:
                    authkey = bytes.fromhex(match.group(1))
                    break
            assert address is not None and authkey is not None, "server did not start"
            with ServiceClient(address=address, authkey=authkey) as client:
                assert client.ping() == "compile-service"
                futures = client.submit_many(
                    small_circuits, backend="tket-o0", device="ibmq_washington"
                )
                rewards = [future.result(timeout=180).reward for future in futures]
                assert all(reward > 0 for reward in rewards)
                stats = client.stats()
                assert stats["completed"] == len(small_circuits)
                # QoS parity: priority and deadline ride the RPC protocol, so
                # remote semantics match in-process ones exactly.
                urgent = client.submit(
                    small_circuits[0],
                    backend="tket-o0",
                    device="ibmq_washington",
                    priority=5,
                ).result(timeout=180)
                assert urgent.succeeded
                expired = client.submit(
                    small_circuits[1], backend="qiskit-o1", deadline=0
                ).result(timeout=180)
                assert not expired.succeeded
                assert expired.metadata.get("deadline_exceeded") is True
                assert "DeadlineExceeded" in expired.error
                assert client.stats()["deadline_exceeded"] == 1
                # pass_overrides parity: the stage swap rides the RPC too.
                swapped = client.submit(
                    small_circuits[0],
                    backend="qiskit-o1",
                    device="ibmq_washington",
                    pass_overrides={"routing": "tket-routing"},
                ).result(timeout=180)
                assert swapped.succeeded
                assert "tket_routing" in swapped.actions
                assert "+routing=tket_routing" in swapped.backend
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=20)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck server
                proc.kill()

    def test_client_requires_exactly_one_target(self):
        with pytest.raises(ValueError):
            ServiceClient()
        with pytest.raises(ValueError):
            ServiceClient(address=("127.0.0.1", 1))  # authkey missing


# ---------------------------------------------------------------------------------
# vec-env fleets over the shared store
# ---------------------------------------------------------------------------------


class TestVecEnvSharedStore:
    FLOW = [
        "synthesis_basis_translator",
        "optimize_optimize_1q_gates",
        "map_dense_layout_sabre_routing",
        "optimize_cx_cancellation",
        "terminate",
    ]

    def _drive(self, vec, n_envs, episodes):
        probe = repro.CompilationEnv(
            [benchmark_circuit("ghz", 4)], device_name="ibmq_washington", max_steps=25, seed=3
        )
        probe.reset()
        vec.reset(seed=3)
        for _ in range(episodes):
            for name in self.FLOW:
                index = probe.action_by_name(name).index
                vec.step(np.full(n_envs, index))

    def test_async_fleet_shares_transforms_through_server(self, cache_server):
        cache_server.store().clear()
        circuits = [benchmark_circuit("ghz", 4)]
        vec = repro.make_compilation_vec_env(
            circuits,
            2,
            backend="async",
            device_name="ibmq_washington",
            max_steps=25,
            seed=3,
            shared_store=cache_server.store(),
        )
        try:
            self._drive(vec, 2, episodes=2)
        finally:
            vec.close()
        stats = cache_server.stats()
        # Both worker processes memoise into the server: the second member
        # (and the second episode) must be served from it.
        assert stats["hits"] > 0
        assert stats["entries"] > 0

    def test_sync_fleet_accepts_shared_store(self, cache_server):
        cache_server.store().clear()
        circuits = [benchmark_circuit("ghz", 4)]
        vec = repro.make_compilation_vec_env(
            circuits,
            2,
            device_name="ibmq_washington",
            max_steps=25,
            seed=3,
            shared_store=cache_server.store(),
        )
        try:
            self._drive(vec, 2, episodes=1)
            members = vec.envs
            assert all(isinstance(m.transform_cache, TransformCache) for m in members)
        finally:
            vec.close()
        assert cache_server.stats()["hits"] > 0


# ---------------------------------------------------------------------------------
# experimental fixed-point preset backends
# ---------------------------------------------------------------------------------


class TestIterPresetBackends:
    @pytest.mark.parametrize("name,base", [("qiskit-o3-iter", "qiskit-o3"), ("tket-o2-iter", "tket-o2")])
    def test_registered_and_executable(self, name, base, washington):
        backend = repro.get_backend(name)
        assert backend.name == name
        circuit = benchmark_circuit("qft", 5)
        result = repro.compile(circuit, name, device="ibmq_washington")
        assert result.succeeded
        assert washington.is_executable(result.circuit)
        baseline = repro.compile(circuit, base, device="ibmq_washington")
        # Extra fixed-point rounds must never make the circuit worse than the
        # single-round schedule on the 2q-gate count the reward tracks.
        assert (
            result.circuit.num_two_qubit_gates() <= baseline.circuit.num_two_qubit_gates()
        )

    def test_iter_schedule_wraps_post_stage(self):
        backend = repro.get_backend("qiskit-o3-iter")
        stages = {entry["stage"]: entry for entry in backend.schedule}
        base = {entry["stage"]: entry for entry in repro.get_backend("qiskit-o3").schedule}
        assert stages["post_optimization"]["passes"] == base["post_optimization"]["passes"]

    def test_resolve_backend_type_error_lists_names(self):
        with pytest.raises(TypeError, match="qiskit-o3"):
            repro.api.facade.resolve_backend(123)


# ---------------------------------------------------------------------------------
# pass overrides through the service stack
# ---------------------------------------------------------------------------------


class TestServicePassOverrides:
    def test_submit_with_overrides_swaps_the_stage(self, washington):
        circuit = benchmark_circuit("ghz", 4)
        with CompileService() as service:
            result = service.submit(
                circuit,
                "qiskit-o3",
                device="ibmq_washington",
                pass_overrides={"routing": "tket-routing"},
            ).result()
        assert result.succeeded
        assert "tket_routing" in result.actions
        assert "+routing=tket_routing" in result.backend
        assert washington.is_executable(result.circuit)

    def test_overridden_and_base_requests_never_share_cache(self):
        circuit = benchmark_circuit("ghz", 4)
        with CompileService() as service:
            base = service.submit(circuit, "qiskit-o3", device="ibmq_washington").result()
            swapped = service.submit(
                circuit,
                "qiskit-o3",
                device="ibmq_washington",
                pass_overrides={"routing": "basic_swap"},
            ).result()
            again = service.submit(
                circuit,
                "qiskit-o3",
                device="ibmq_washington",
                pass_overrides={"routing": "basic_swap"},
            ).result()
        assert base.backend != swapped.backend
        assert "sabre_swap" in base.actions and "basic_swap" in swapped.actions
        assert again.metadata.get("cached")  # same override → shared cache entry

    def test_bad_override_fails_fast_in_caller_thread(self):
        with CompileService() as service:
            with pytest.raises(KeyError):
                service.submit(
                    benchmark_circuit("ghz", 3),
                    "qiskit-o3",
                    pass_overrides={"routing": "warp_drive"},
                )
            with pytest.raises(TypeError, match="does not support"):
                service.submit(
                    benchmark_circuit("ghz", 3),
                    "best-of",
                    pass_overrides={"routing": "tket-routing"},
                )

    def test_client_in_process_forwards_overrides(self, washington):
        with CompileService() as service:
            client = ServiceClient(service)
            result = client.submit(
                benchmark_circuit("ghz", 4),
                "qiskit-o3",
                device="ibmq_washington",
                pass_overrides={"routing": "tket_routing"},
            ).result()
        assert "tket_routing" in result.actions
