"""Unit tests for OpenQASM 2 import/export."""

from __future__ import annotations

import math

import pytest

from repro.circuit import QasmError, QuantumCircuit, from_qasm, random_circuit, to_qasm
from repro.linalg import allclose_up_to_global_phase, circuit_unitary


class TestExport:
    def test_header_and_registers(self, bell_circuit):
        text = to_qasm(bell_circuit)
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text
        assert "creg c[2];" in text

    def test_gate_lines(self, bell_circuit):
        text = to_qasm(bell_circuit)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text

    def test_parameter_formatting_pi(self):
        circuit = QuantumCircuit(1)
        circuit.rz(math.pi / 2, 0)
        assert "pi*1/2" in to_qasm(circuit)

    def test_measure_line(self):
        circuit = QuantumCircuit(2)
        circuit.measure(0, 1)
        assert "measure q[0] -> c[1];" in to_qasm(circuit)

    def test_barrier_line(self):
        circuit = QuantumCircuit(2)
        circuit.barrier(0, 1)
        assert "barrier q[0],q[1];" in to_qasm(circuit)


class TestImport:
    def test_simple_parse(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        cx q[0],q[1];
        measure q[0] -> c[0];
        """
        circuit = from_qasm(text)
        assert circuit.num_qubits == 2
        assert [i.name for i in circuit] == ["h", "cx", "measure"]

    def test_parameter_expression(self):
        circuit = from_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nrz(pi/4) q[0];\n')
        assert circuit[0].params[0] == pytest.approx(math.pi / 4)

    def test_u1_maps_to_p(self):
        circuit = from_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nu1(0.5) q[0];\n')
        assert circuit[0].name == "p"

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError, match="unsupported gate"):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nmystery q[0];\n')

    def test_bad_parameter_expression_rejected(self):
        with pytest.raises(ValueError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nrz(__import__) q[0];\n')


class TestMalformedInput:
    """Trust-boundary hardening: every bad input is a QasmError, never a
    KeyError/IndexError leaking parser internals."""

    HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\ncreg c[2];\n'

    def test_qasm_error_is_value_error(self):
        assert issubclass(QasmError, ValueError)

    def test_undeclared_quantum_register(self):
        with pytest.raises(QasmError, match="undeclared quantum register 'r'"):
            from_qasm(self.HEADER + "h r[0];\n")

    def test_undeclared_register_in_measurement(self):
        with pytest.raises(QasmError, match="undeclared"):
            from_qasm(self.HEADER + "measure r[0] -> c[0];\n")
        with pytest.raises(QasmError, match="undeclared classical register"):
            from_qasm(self.HEADER + "measure q[0] -> d[0];\n")

    def test_out_of_range_qubit_index(self):
        with pytest.raises(QasmError, match=r"index 2 out of range .* q\[2\]"):
            from_qasm(self.HEADER + "h q[2];\n")

    def test_out_of_range_clbit_index(self):
        with pytest.raises(QasmError, match="out of range"):
            from_qasm(self.HEADER + "measure q[0] -> c[5];\n")

    def test_duplicate_register_name(self):
        with pytest.raises(QasmError, match="duplicate register name 'q'"):
            from_qasm('OPENQASM 2.0;\nqreg q[2];\nqreg q[3];\ncreg c[2];\n')

    def test_creg_shadowing_qreg_is_duplicate(self):
        with pytest.raises(QasmError, match="duplicate register name 'q'"):
            from_qasm('OPENQASM 2.0;\nqreg q[2];\ncreg q[2];\n')

    def test_register_declared_after_statement(self):
        with pytest.raises(QasmError, match="declared after first statement"):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nh q[0];\nqreg r[1];\n')

    def test_gate_broadcast_rejected(self):
        with pytest.raises(QasmError, match="broadcast"):
            from_qasm(self.HEADER + "h q;\n")

    def test_gate_without_operands(self):
        with pytest.raises(QasmError, match="no operands"):
            from_qasm(self.HEADER + "h ;\n")

    def test_garbage_line(self):
        with pytest.raises(QasmError, match="cannot parse"):
            from_qasm(self.HEADER + "!!! nonsense;\n")

    def test_non_string_input(self):
        with pytest.raises(QasmError, match="must be a string"):
            from_qasm(12345)

    def test_bad_parameter_is_qasm_error(self):
        with pytest.raises(QasmError, match="parameter expression"):
            from_qasm(self.HEADER + "rz(1/0) q[0];\n")

    def test_two_registers_get_offsets(self):
        circuit = from_qasm(
            'OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncreg c[4];\ncx a[1],b[0];\n'
        )
        assert circuit.num_qubits == 4
        assert circuit[0].qubits == (1, 2)

    def test_barrier_bare_register_expands(self):
        circuit = from_qasm('OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nbarrier q;\n')
        assert circuit[0].qubits == (0, 1, 2)

    def test_barrier_undeclared_register(self):
        with pytest.raises(QasmError, match="undeclared"):
            from_qasm('OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nbarrier r;\n')


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuit_round_trip_unitary(self, seed):
        circuit = random_circuit(3, 5, seed=seed)
        rebuilt = from_qasm(to_qasm(circuit))
        assert allclose_up_to_global_phase(circuit_unitary(rebuilt), circuit_unitary(circuit))

    def test_round_trip_preserves_counts(self, ghz5):
        ghz5.measure_all()
        rebuilt = from_qasm(to_qasm(ghz5))
        assert rebuilt.count_ops() == ghz5.count_ops()
