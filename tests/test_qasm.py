"""Unit tests for OpenQASM 2 import/export."""

from __future__ import annotations

import math

import pytest

from repro.circuit import QuantumCircuit, from_qasm, random_circuit, to_qasm
from repro.linalg import allclose_up_to_global_phase, circuit_unitary


class TestExport:
    def test_header_and_registers(self, bell_circuit):
        text = to_qasm(bell_circuit)
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text
        assert "creg c[2];" in text

    def test_gate_lines(self, bell_circuit):
        text = to_qasm(bell_circuit)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text

    def test_parameter_formatting_pi(self):
        circuit = QuantumCircuit(1)
        circuit.rz(math.pi / 2, 0)
        assert "pi*1/2" in to_qasm(circuit)

    def test_measure_line(self):
        circuit = QuantumCircuit(2)
        circuit.measure(0, 1)
        assert "measure q[0] -> c[1];" in to_qasm(circuit)

    def test_barrier_line(self):
        circuit = QuantumCircuit(2)
        circuit.barrier(0, 1)
        assert "barrier q[0],q[1];" in to_qasm(circuit)


class TestImport:
    def test_simple_parse(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        cx q[0],q[1];
        measure q[0] -> c[0];
        """
        circuit = from_qasm(text)
        assert circuit.num_qubits == 2
        assert [i.name for i in circuit] == ["h", "cx", "measure"]

    def test_parameter_expression(self):
        circuit = from_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nrz(pi/4) q[0];\n')
        assert circuit[0].params[0] == pytest.approx(math.pi / 4)

    def test_u1_maps_to_p(self):
        circuit = from_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nu1(0.5) q[0];\n')
        assert circuit[0].name == "p"

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError, match="unsupported gate"):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nmystery q[0];\n')

    def test_bad_parameter_expression_rejected(self):
        with pytest.raises(ValueError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nrz(__import__) q[0];\n')


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuit_round_trip_unitary(self, seed):
        circuit = random_circuit(3, 5, seed=seed)
        rebuilt = from_qasm(to_qasm(circuit))
        assert allclose_up_to_global_phase(circuit_unitary(rebuilt), circuit_unitary(circuit))

    def test_round_trip_preserves_counts(self, ghz5):
        ghz5.measure_all()
        rebuilt = from_qasm(to_qasm(ghz5))
        assert rebuilt.count_ops() == ghz5.count_ops()
