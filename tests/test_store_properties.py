"""Seeded randomized property tests for every :class:`CacheStore` implementation.

Each store (:class:`DictStore`, :class:`CostAwareStore`, and a
:class:`SharedCacheStore` client of a live :class:`CacheServer` under both
eviction policies) is driven through long seeded sequences of random
put/get/clear operations against a reference model, checking after every
operation that:

* capacity is never exceeded;
* ``hits + misses`` always equals the number of lookups performed;
* a ``get`` returns exactly the value last ``put`` for that key, or ``None``
  for keys never inserted or already evicted;
* eviction counters reconcile with the number of insertions and residents;
* :class:`CostAwareStore` never evicts the most expensive resident while a
  cheaper entry is available, and prefers evicting cheap/stale entries.

The sequences are deterministic (``numpy`` RNG seeded per case), so a failure
reproduces exactly.  Run alongside the service stress tests with
``pytest -m stress``.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.pipeline import CacheStore, CostAwareStore, DictStore, LruCache
from repro.service import CacheServer

pytestmark = pytest.mark.stress

MAXSIZE = 8
KEY_SPACE = 24  # 3x capacity: every sequence forces plenty of evictions
N_OPS = 400
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def lru_server():
    with CacheServer(maxsize=MAXSIZE, policy="lru") as server:
        yield server


@pytest.fixture(scope="module")
def cost_server():
    with CacheServer(maxsize=MAXSIZE, policy="cost") as server:
        yield server


def _store_factories(request) -> dict:
    return {
        "dict": lambda: DictStore(MAXSIZE),
        "cost": lambda: CostAwareStore(MAXSIZE),
        "shared-lru": lambda: request.getfixturevalue("lru_server").store(),
        "shared-cost": lambda: request.getfixturevalue("cost_server").store(),
    }


@pytest.fixture(params=["dict", "cost", "shared-lru", "shared-cost"])
def store(request) -> CacheStore:
    built = _store_factories(request)[request.param]()
    built.clear()  # shared stores are module-scoped servers: start clean
    return built


class TestStoreInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_ops_hold_invariants(self, store, seed):
        rng = np.random.default_rng(seed)
        model: dict[str, int] = {}  # key -> value we expect get() to return
        lookups = 0
        prev = store.stats()

        for step in range(N_OPS):
            key = f"k{int(rng.integers(0, KEY_SPACE))}"
            op = rng.random()
            if op < 0.45:  # put
                value = step
                cost = float(rng.integers(1, 100))
                store.put(key, value, cost)
                model[key] = value
                stats = store.stats()
                # One put changes residency by at most one entry: either the
                # key was already resident (nothing moves), or it was added
                # below capacity (+1 entry), or it displaced exactly one
                # entry (eviction at capacity).
                delta = (
                    stats["entries"] - prev["entries"],
                    stats["evictions"] - prev["evictions"],
                )
                assert delta in ((0, 0), (1, 0), (0, 1)), f"step {step}: put moved {delta}"
                if delta == (0, 1):
                    assert stats["entries"] == MAXSIZE, (
                        f"step {step}: eviction while below capacity"
                    )
            elif op < 0.98:  # get
                value = store.get(key)
                lookups += 1
                stats = store.stats()
                if value is not None:
                    # Never a stale or foreign value: exactly the last put.
                    assert value == model[key], f"step {step}: wrong value for {key}"
                else:
                    # A miss is only legal for keys never put or evicted.
                    if key in model:
                        del model[key]  # evicted by the store: drop our copy
            else:  # rare full clear
                store.clear()
                model.clear()
                lookups = 0
                stats = store.stats()
                assert stats["entries"] == 0, f"step {step}: clear left entries"
                assert stats["hits"] == stats["misses"] == stats["evictions"] == 0, (
                    f"step {step}: clear left counters behind"
                )

            assert stats["entries"] <= MAXSIZE, f"step {step}: capacity exceeded"
            assert stats["hits"] + stats["misses"] == lookups, (
                f"step {step}: hit+miss counters drifted from lookup count"
            )
            assert 0.0 <= stats["hit_rate"] <= 1.0
            prev = stats

    @pytest.mark.parametrize("seed", SEEDS)
    def test_eviction_is_lossy_but_never_corrupting(self, store, seed):
        """Overfill by 4x: survivors return their exact values, the rest None."""
        rng = np.random.default_rng(seed)
        values = {f"k{i}": int(rng.integers(0, 10_000)) for i in range(4 * MAXSIZE)}
        for key, value in values.items():
            store.put(key, value, float(rng.integers(1, 50)))
        stats = store.stats()
        assert stats["entries"] == MAXSIZE
        assert stats["evictions"] == len(values) - MAXSIZE
        survivors = 0
        for key, value in values.items():
            got = store.get(key)
            if got is not None:
                assert got == value
                survivors += 1
        assert survivors == MAXSIZE


class TestCostAwareEviction:
    def test_most_expensive_entry_never_evicted_first(self):
        """Randomized: an eviction must never wipe out the most expensive
        cost tier — the costliest resident at decision time always survives."""
        rng = np.random.default_rng(7)
        store = CostAwareStore(MAXSIZE)
        for step in range(300):
            before = store.snapshot()
            key = f"k{step}"
            cost = float(rng.integers(1, 1000))
            store.put(key, step, cost)
            after = store.snapshot()
            evicted = set(before) - set(after)
            if evicted and before:
                # Residents at decision time = everything in `before` plus the
                # entry being inserted; the max of their costs must still be
                # resident after the eviction.
                decision_costs = [c for c, _tick in before.values()] + [cost]
                max_cost = max(decision_costs)
                surviving_costs = [c for c, _tick in after.values()]
                assert max(surviving_costs) == max_cost, (
                    f"step {step}: eviction removed the entire max-cost tier "
                    f"({max_cost}); survivors {surviving_costs}"
                )
            # Touch a random resident so recency varies between steps.
            residents = list(after)
            if residents:
                store.get(residents[int(rng.integers(0, len(residents)))])

    def test_cheap_entry_eventually_admitted_into_expensive_store(self):
        """A store saturated with expensive ties must not refuse a cheap key
        forever: the stale expensive entries age out and it gets admitted."""
        store = CostAwareStore(2)
        store.put("a", 1, 5.0)
        store.put("b", 2, 5.0)
        for attempt in range(50):
            store.put("cheap", attempt, 1.0)
            if store.get("cheap") is not None:
                break
        else:
            pytest.fail("cheap entry was never admitted")
        # The freshest expensive entry survived throughout.
        assert 5.0 in [cost for cost, _tick in store.snapshot().values()]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_max_tier_tracking_survives_overwrites(self, seed):
        """The incrementally-tracked max-cost tier must match reality after any
        mix of inserts, overwrites (raising or lowering a key's cost), and
        evictions — overwriting the most expensive key is the tricky path."""
        rng = np.random.default_rng(seed)
        store = CostAwareStore(MAXSIZE)
        for step in range(300):
            key = f"k{int(rng.integers(0, MAXSIZE + 4))}"  # small space: overwrites
            store.put(key, step, float(rng.integers(1, 20)))  # narrow range: cost ties
            snapshot = store.snapshot()
            costs = [cost for cost, _tick in snapshot.values()]
            assert store._max_cost == max(costs), f"step {step}: stale max cost"
            assert store._max_count == costs.count(max(costs)), (
                f"step {step}: stale max-tier count"
            )

    def test_cheap_stale_evicted_before_expensive_stale(self):
        store = CostAwareStore(4)
        store.put("cheap", 1, 1.0)
        store.put("pricey", 2, 50.0)
        store.put("mid-a", 3, 10.0)
        store.put("mid-b", 4, 10.0)
        store.put("new", 5, 5.0)  # overflow: "cheap" is the lowest-scoring
        assert store.get("cheap") is None
        assert store.get("pricey") == 2
        assert store.stats()["evictions"] == 1
        assert store.stats()["cost_evicted"] == 1.0

    def test_cost_inferred_from_wall_time(self):
        class FakeResult:
            def __init__(self, wall_time):
                self.wall_time = wall_time

        store = CostAwareStore(2)
        store.put("slow", FakeResult(9.0))
        store.put("fast", FakeResult(0.001))
        store.put("other", FakeResult(0.5))  # overflow: "fast" goes first
        assert store.get("fast") is None
        assert store.get("slow") is not None

    def test_recency_orders_equal_costs(self):
        store = CostAwareStore(3)
        store.put("a", 1, 5.0)
        store.put("b", 2, 5.0)
        store.put("c", 3, 5.0)
        assert store.get("a") == 1  # refresh "a": "b" is now the stalest
        store.put("d", 4, 5.0)
        assert store.get("b") is None
        assert store.get("a") == 1 and store.get("c") == 3 and store.get("d") == 4

    def test_plugs_into_lru_cache_front(self):
        cache = LruCache(maxsize=4, store=CostAwareStore(4))
        cache.put("k", "v", 2.5)
        assert cache.get("k") == "v"
        assert cache.hits == 1 and cache.misses == 0
        stats = cache.stats()
        assert stats["resident_cost"] == 2.5

    def test_zero_capacity_store_is_harmless(self):
        """maxsize=0 (caching disabled) must not crash puts, matching DictStore."""
        store = CostAwareStore(0)
        store.put("k", 1, 2.0)
        assert len(store) == 0
        assert store.get("k") is None
        assert store.stats()["evictions"] == 1

    def test_snapshot_does_not_touch_counters(self):
        store = CostAwareStore(4)
        store.put("k", 1, 3.0)
        before = store.stats()
        snap = store.snapshot()
        assert snap["k"][0] == 3.0
        assert store.stats() == before


class TestSharedStoreParity:
    """The server-backed stores must behave like their in-process twins."""

    @pytest.mark.parametrize("policy", ["lru", "cost"])
    def test_policy_reaches_the_server(self, request, policy):
        server = request.getfixturevalue(f"{'lru' if policy == 'lru' else 'cost'}_server")
        store = server.store()
        store.clear()
        store.put("probe", 42, 7.0)
        stats = store.stats()
        assert stats["entries"] == 1
        if policy == "cost":
            # cost-aware counters only exist on the cost policy
            assert stats["resident_cost"] == 7.0
        else:
            assert "resident_cost" not in stats

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            CacheServer(maxsize=4, policy="random")
