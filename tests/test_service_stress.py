"""Deterministic concurrency stress tests for the QoS compile service.

The service went multi-threaded (priority lanes, autoscaling supervisor,
coalescing across clients) — correctness under concurrency can't be
eyeballed, so this suite hammers one service from many client threads and
asserts the invariants that matter:

* no future is ever lost or resolved twice, whatever mix of priorities and
  coalescible work N clients throw at the queue;
* under a saturated single-worker lane, a high-priority request strictly
  overtakes every queued low-priority one;
* an expired deadline (``deadline=0`` is the extreme case) never reaches a
  worker — the backend is not called, no lane is even created;
* the autoscaler's scale-up/scale-down events land in ``stats()``.

Everything is driven by events and seeded RNGs — no timing assumptions
beyond generous join timeouts — so the suite is deterministic on slow CI.
Run it alone with ``pytest -m stress``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.api.result import CompilationResult
from repro.bench import benchmark_circuit
from repro.service import CompileService, DeadlineExceeded, ServiceClient, ServiceTimeout

pytestmark = pytest.mark.stress


def _result(circuit, backend_name: str, objective: str) -> CompilationResult:
    return CompilationResult(
        circuit=circuit,
        device=None,
        reward=1.0,
        reward_name=objective,
        backend=backend_name,
        wall_time=0.001,
    )


class RecordingBackend:
    """Scripted backend that records every compile call it receives."""

    def __init__(self, name: str, delay: float = 0.0):
        self.name = name
        self.delay = delay
        self.lock = threading.Lock()
        self.calls: list[int] = []

    def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
        with self.lock:
            self.calls.append(seed)
        if self.delay:
            time.sleep(self.delay)
        return _result(circuit, self.name, objective)


class GatedBackend(RecordingBackend):
    """Backend whose seed-0 compile blocks until released (lane saturator)."""

    def __init__(self, name: str):
        super().__init__(name)
        self.seed0_running = threading.Event()
        self.release = threading.Event()

    def compile(self, circuit, *, device=None, objective="fidelity", seed=0):
        if seed == 0:
            self.seed0_running.set()
            assert self.release.wait(timeout=60), "gate never released"
        return super().compile(circuit, device=device, objective=objective, seed=seed)


@pytest.fixture()
def circuit():
    return benchmark_circuit("ghz", 4)


class TestNoLostOrDuplicatedFutures:
    N_CLIENTS = 6
    N_PER_CLIENT = 25

    def test_hammer_mixed_priorities(self, circuit):
        """N client threads, mixed priorities, overlapping seeds: every future
        resolves exactly once and the accounting adds up."""
        backend = RecordingBackend("stress-hammer")
        resolved: list[tuple[int, CompilationResult]] = []
        resolve_lock = threading.Lock()
        futures_per_client: list[list[Future]] = [[] for _ in range(self.N_CLIENTS)]
        errors: list[Exception] = []
        barrier = threading.Barrier(self.N_CLIENTS)

        with CompileService(max_workers=3, autoscale_interval=0.05) as service:

            def client_thread(index: int) -> None:
                try:
                    client = ServiceClient(service)
                    rng = np.random.default_rng(index)
                    barrier.wait(timeout=30)
                    def on_done(fut: Future, idx: int = index) -> None:
                        with resolve_lock:
                            resolved.append((idx, fut.result()))

                    for _ in range(self.N_PER_CLIENT):
                        # Seeds overlap across clients on purpose: the shared
                        # cache and in-flight coalescing paths must not lose
                        # or double-resolve futures either.
                        future = client.submit(
                            circuit,
                            backend,
                            seed=int(rng.integers(0, 12)),
                            priority=int(rng.integers(-2, 3)),
                        )
                        future.add_done_callback(on_done)
                        futures_per_client[index].append(future)
                except Exception as exc:  # noqa: BLE001 - surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=client_thread, args=(i,))
                for i in range(self.N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            all_futures = [f for per_client in futures_per_client for f in per_client]
            results = [future.result(timeout=120) for future in all_futures]
            stats = service.stats()

        total = self.N_CLIENTS * self.N_PER_CLIENT
        # No future lost: one result per submission, all distinct futures.
        assert len(all_futures) == total
        assert len({id(future) for future in all_futures}) == total
        assert all(isinstance(result, CompilationResult) for result in results)
        assert all(result.succeeded for result in results)
        # No future resolved twice: each done-callback fired exactly once.
        assert len(resolved) == total
        # Accounting: every submission completed, nothing left behind, and
        # the overlap was served without recompiling (12 unique seeds).
        assert stats["submitted"] == total
        assert stats["completed"] == total
        assert stats["failed"] == 0
        assert stats["unfinished"] == 0
        # Every request was served exactly one way: compiled as an owner,
        # from the shared cache, or coalesced onto in-flight work.  (Exactly
        # one *compile per seed* is deliberately NOT asserted: a request may
        # race the owner's cache fill and recompile — best-effort by design.)
        assert stats["cache_hits"] + stats["coalesced"] + len(backend.calls) == total
        assert len(set(backend.calls)) <= 12  # never a seed outside the workload


class TestStrictPriorityOrdering:
    N_LOW = 8

    def test_high_priority_overtakes_saturated_lane(self, circuit):
        """With one worker pinned by a blocker, a later high-priority request
        must complete before all 8 queued low-priority ones."""
        backend = GatedBackend("stress-gate")
        completion_order: list[int] = []
        order_lock = threading.Lock()

        def record(seed: int):
            def callback(_fut: Future) -> None:
                with order_lock:
                    completion_order.append(seed)

            return callback

        with CompileService(max_workers=1, autoscale=False) as service:
            blocker = service.submit(circuit, backend, seed=0)
            assert backend.seed0_running.wait(timeout=30)
            # The single worker is now pinned: everything below queues.
            low_futures = []
            for seed in range(1, self.N_LOW + 1):
                future = service.submit(circuit, backend, seed=seed, priority=0)
                future.add_done_callback(record(seed))
                low_futures.append(future)
            high = service.submit(circuit, backend, seed=99, priority=10)
            high.add_done_callback(record(99))
            # submit() only enqueues onto the scheduler queue; wait until the
            # scheduler has moved all nine requests into the lane's priority
            # queue before releasing the worker, or it could pop a low one
            # that simply arrived first.
            deadline = time.time() + 30
            while time.time() < deadline:
                lane = service.stats()["lanes"]["stress-gate"]
                if lane["queue_depth"] >= self.N_LOW + 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("scheduler never queued all nine requests")
            backend.release.set()
            for future in [blocker, high, *low_futures]:
                assert future.result(timeout=60).succeeded

        # The worker processed the high-priority request first, before any of
        # the >= 8 low-priority requests that were queued ahead of it.
        assert backend.calls[0] == 0  # the blocker
        assert backend.calls[1] == 99
        assert completion_order[0] == 99
        assert set(completion_order[1:]) == set(range(1, self.N_LOW + 1))
        # Ties (all priority 0) ran in submission order.
        assert completion_order[1:] == sorted(completion_order[1:])


class TestDeadlines:
    def test_zero_deadline_never_reaches_a_worker(self, circuit):
        backend = RecordingBackend("stress-deadline")
        with CompileService() as service:
            result = service.submit(circuit, backend, deadline=0).result(timeout=30)
            stats = service.stats()
        assert not result.succeeded
        assert result.error.startswith("DeadlineExceeded")
        assert result.metadata["deadline_exceeded"] is True
        assert backend.calls == []  # never compiled ...
        assert "stress-deadline" not in stats["lanes"]  # ... no lane even created
        assert stats["deadline_exceeded"] == 1
        assert stats["completed"] == 1 and stats["failed"] == 1

    def test_zero_deadline_served_from_warm_cache(self, circuit):
        """deadline=0 is cache-or-nothing: a warm key is served for free, only
        a cold key expires."""
        backend = RecordingBackend("stress-warm")
        with CompileService() as service:
            assert service.submit(circuit, backend, seed=3).result(timeout=30).succeeded
            warm = service.submit(circuit, backend, seed=3, deadline=0).result(timeout=30)
            cold = service.submit(circuit, backend, seed=4, deadline=0).result(timeout=30)
        assert warm.succeeded and warm.metadata.get("cached") is True
        assert not cold.succeeded and cold.metadata.get("deadline_exceeded") is True
        assert backend.calls == [3]  # one compile total; deadline=0 never compiled

    def test_expired_request_skipped_while_fresh_ones_compile(self, circuit):
        """A deadline that expires while queued behind a blocker is skipped by
        the worker; requests without deadlines still complete."""
        backend = GatedBackend("stress-expire")
        with CompileService(max_workers=1, autoscale=False) as service:
            blocker = service.submit(circuit, backend, seed=0)
            assert backend.seed0_running.wait(timeout=30)
            doomed = service.submit(circuit, backend, seed=1, deadline=0.05)
            patient = service.submit(circuit, backend, seed=2)
            time.sleep(0.2)  # let the doomed deadline lapse while queued
            backend.release.set()
            assert blocker.result(timeout=60).succeeded
            expired = doomed.result(timeout=60)
            assert patient.result(timeout=60).succeeded
            stats = service.stats()
        assert not expired.succeeded
        assert expired.metadata.get("deadline_exceeded") is True
        assert 1 not in backend.calls  # the expired request never compiled
        assert stats["deadline_exceeded"] == 1

    def test_negative_deadline_rejected(self, circuit):
        with CompileService() as service:
            with pytest.raises(ValueError, match="deadline"):
                service.submit(circuit, "qiskit-o0", deadline=-1)
            assert service.stats()["submitted"] == 0

    def test_deadline_exceeded_exception_exported(self):
        assert issubclass(DeadlineExceeded, RuntimeError)


class TestAutoscaler:
    def test_scale_events_surface_in_stats(self, circuit):
        """A burst against a 1-worker lane must scale it up; idleness must
        scale it back down — both visible in stats()."""
        backend = RecordingBackend("stress-scale", delay=0.02)
        with CompileService(
            max_workers=4, min_workers=1, autoscale_interval=0.05
        ) as service:
            futures = [service.submit(circuit, backend, seed=seed) for seed in range(40)]
            for future in futures:
                assert future.result(timeout=120).succeeded
            deadline = time.time() + 30
            while time.time() < deadline:
                stats = service.stats()
                scaler = stats["autoscaler"]
                if scaler["scale_ups"] >= 1 and scaler["scale_downs"] >= 1:
                    break
                time.sleep(0.05)
        assert scaler["enabled"] is True
        assert scaler["scale_ups"] >= 1, "burst never triggered a scale-up"
        assert scaler["scale_downs"] >= 1, "idle lane never scaled down"
        events = scaler["events"]
        ups = [e for e in events if e["event"] == "scale_up"]
        downs = [e for e in events if e["event"] == "scale_down"]
        assert ups and downs
        assert all(e["lane"] == "stress-scale" for e in events)
        assert all(e["to_workers"] > e["from_workers"] for e in ups)
        assert all(e["to_workers"] == e["from_workers"] - 1 for e in downs)
        assert all(e["to_workers"] <= 4 and e["to_workers"] >= 1 for e in events)

    def test_autoscale_disabled_pins_lane_at_max(self, circuit):
        backend = RecordingBackend("stress-pinned")
        with CompileService(max_workers=3, autoscale=False) as service:
            assert service.submit(circuit, backend).result(timeout=30).succeeded
            lane = service.stats()["lanes"]["stress-pinned"]
            assert lane["workers"] == 3
            assert service.stats()["autoscaler"]["enabled"] is False


class TestDeadCacheStoreResilience:
    def test_raising_store_degrades_to_uncached_service(self, circuit):
        """A cache store whose server died (every get/put raises) must not
        fail requests, kill lane workers, or leave futures unresolved."""

        class DeadStore:
            def get(self, key):
                raise ConnectionRefusedError("cache server gone")

            def put(self, key, value, cost=None):
                raise ConnectionRefusedError("cache server gone")

            def stats(self):
                return {"entries": 0, "hits": 0, "misses": 0, "evictions": 0, "hit_rate": 0.0}

            def clear(self):
                pass

        backend = RecordingBackend("stress-deadstore")
        with CompileService(store=DeadStore(), max_workers=2) as service:
            for wave in range(2):  # second wave proves the workers survived
                futures = [
                    service.submit(circuit, backend, seed=wave * 4 + i) for i in range(4)
                ]
                for future in futures:
                    assert future.result(timeout=60).succeeded
            stats = service.stats()
        assert stats["completed"] == 8 and stats["failed"] == 0
        assert stats["unfinished"] == 0
        assert len(backend.calls) == 8  # nothing cached, everything compiled


class TestServiceTimeoutRegression:
    def test_timeout_message_carries_queue_depth(self, circuit):
        """ServiceClient.result must raise ServiceTimeout with the queue depth
        at expiry, not a bare futures TimeoutError."""
        backend = GatedBackend("stress-timeout")
        with CompileService(max_workers=1, autoscale=False) as service:
            client = ServiceClient(service)
            blocked = client.submit(circuit, backend, seed=0)
            assert backend.seed0_running.wait(timeout=30)
            queued = client.submit_many([circuit] * 3, backend, seed=1)
            with pytest.raises(ServiceTimeout, match=r"^no result within 0\.2s \(queue depth \d+ at expiry\)$") as excinfo:
                client.result(blocked, timeout=0.2)
            assert excinfo.value.timeout == 0.2
            assert excinfo.value.queue_depth >= 1  # the three queued requests
            # Catchable as either spelling, on every supported Python.
            assert isinstance(excinfo.value, TimeoutError)
            assert isinstance(excinfo.value, FutureTimeoutError)
            backend.release.set()
            assert client.result(blocked, timeout=60).succeeded
            # submit_many coalesced the identical circuits onto one compile.
            for future in queued:
                assert client.result(future, timeout=60).succeeded
