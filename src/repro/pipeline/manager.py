"""The :class:`PassManager`: one scheduling substrate for every execution layer.

Before this layer existed the repo ran compilation passes through three
hand-rolled loops: the Qiskit-/TKET-style preset pipelines threaded passes
through local closures, the RL environment applied action payloads ad hoc,
and the API backends wrapped the presets without sharing anything.  The
``PassManager`` replaces all three with one declarative scheduler:

* a schedule is a sequence of :class:`Stage`\\ s — pure data: a name, the
  passes to run, an optional condition, and whether the stage contributes to
  the recorded pass trace;
* flow controllers such as :class:`RepeatUntilStable` implement fixed-point
  loops (repeat a pass group until the circuit stops changing);
* a :class:`PassRunner` executes individual passes and keeps a shared
  :class:`~repro.pipeline.properties.AnalysisCache` consistent by carrying
  preserved analysis results from the input to the output circuit.

The preset levels (``repro.compilers.presets``), the built-in API backends
and the RL hot loop (``repro.core.environment``) all execute through this
module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..circuit.circuit import QuantumCircuit
from ..obs import timed_span
from ..passes.base import BasePass, PassContext
from ..profiling import profiler
from .properties import AnalysisCache, TransformCache

__all__ = ["PassRunner", "RepeatUntilStable", "Stage", "PassManager"]

#: a stage condition: decides at run time whether the stage executes
StageCondition = Callable[[QuantumCircuit, PassContext], bool]


class PassRunner:
    """Executes passes one at a time against a shared analysis cache.

    This is the single choke point through which every pass execution flows
    — preset schedules, backend compilations and RL actions alike.  After a
    pass produces a new circuit, the analysis results the pass declared as
    preserved are migrated to the new circuit's property set.

    ``transform_cache``, when given, memoises whole pass applications keyed
    by (pass, input fingerprint, device, seed).  This is only sound when the
    context is constructed per application and discarded afterwards — the RL
    environment's step loop and vectorised fleets — because a memo hit skips
    any context mutation; :class:`PassManager` therefore never sets it.
    """

    def __init__(
        self,
        cache: AnalysisCache | None = None,
        transform_cache: TransformCache | None = None,
    ):
        self.cache = cache
        self.transform_cache = transform_cache

    def apply(
        self, pass_: BasePass, circuit: QuantumCircuit, context: PassContext
    ) -> QuantumCircuit:
        key = None
        if self.transform_cache is not None:
            key = TransformCache.key(pass_.name, circuit, context.device, context.seed)
            memo = self.transform_cache.get(key)
            if memo is not None:
                return memo
        registry = profiler()
        if registry.enabled:
            # Per-pass wall time through the one choke point every pass
            # execution flows through; ``items`` counts processed gates.
            with registry.timed(f"pass.{pass_.name}", items=len(circuit)):
                out = pass_.run(circuit, context)
        else:
            out = pass_.run(circuit, context)
        if self.cache is not None and out is not circuit:
            self.cache.carry_forward(circuit, out, pass_.preserves)
        if key is not None:
            self.transform_cache.put(key, out)
        return out


class RepeatUntilStable:
    """Fixed-point flow controller: repeat a pass group until the circuit is stable.

    Stability is judged by the circuit fingerprint — the loop stops as soon
    as one full iteration leaves the circuit structurally unchanged, or after
    ``max_iterations`` rounds.  This is the controller behind re-optimization
    loops: optimization passes that enable each other can run to quiescence
    without a hand-written loop.
    """

    def __init__(
        self,
        passes: Sequence[BasePass],
        *,
        max_iterations: int = 8,
        name: str = "repeat_until_stable",
    ):
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.passes = tuple(passes)
        self.max_iterations = max_iterations
        self.name = name
        self.requires_device = any(p.requires_device for p in self.passes)

    def execute(
        self,
        circuit: QuantumCircuit,
        context: PassContext,
        emit: Callable[[BasePass, QuantumCircuit], QuantumCircuit],
    ) -> QuantumCircuit:
        """Run the body through ``emit`` until the fingerprint stops changing."""
        for _ in range(self.max_iterations):
            before = circuit.fingerprint()
            for pass_ in self.passes:
                circuit = emit(pass_, circuit)
            if circuit.fingerprint() == before:
                break
        return circuit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(p.name for p in self.passes)
        return f"RepeatUntilStable([{inner}], max_iterations={self.max_iterations})"


@dataclass(frozen=True)
class Stage:
    """One declarative stage of a schedule.

    ``passes`` holds :class:`~repro.passes.base.BasePass` instances and/or
    flow controllers.  ``condition`` (if given) is evaluated against the
    current circuit and context when the stage is reached; a falsy result
    skips the whole stage.  Stages with ``record_trace=False`` execute without
    contributing to the recorded pass trace (used by clean-up stages that are
    an implementation detail rather than part of the advertised flow).
    """

    name: str
    passes: tuple = ()
    condition: StageCondition | None = None
    record_trace: bool = True

    def pass_names(self) -> list[str]:
        names: list[str] = []
        for item in self.passes:
            if isinstance(item, RepeatUntilStable):
                names.extend(p.name for p in item.passes)
            else:
                names.append(item.name)
        return names


class PassManager:
    """Runs a declarative schedule of stages over a circuit.

    The manager owns no mutable per-run state: the context, the trace list
    and the working circuit are per ``run()`` call, so one manager instance
    can be shared across threads (the batch service) and across compilations
    (the preset backends).
    """

    def __init__(
        self,
        stages: Iterable[Stage],
        *,
        name: str = "pipeline",
        cache: AnalysisCache | None = None,
    ):
        self.stages = tuple(stages)
        seen: set[str] = set()
        for stage in self.stages:
            if stage.name in seen:
                raise ValueError(
                    f"duplicate stage name {stage.name!r} in schedule {name!r}; "
                    "stage names must be unique so overrides and profiling can "
                    "address stages unambiguously"
                )
            seen.add(stage.name)
        self.name = name
        self.cache = cache
        self.requires_device = any(
            getattr(item, "requires_device", False)
            for stage in self.stages
            for item in stage.passes
        )

    def run(
        self,
        circuit: QuantumCircuit,
        context: PassContext | None = None,
        *,
        trace: list[str] | None = None,
    ) -> QuantumCircuit:
        """Execute the schedule and return the transformed circuit.

        ``trace``, when given, collects the names of the applied passes in
        order (stages with ``record_trace=False`` excluded).
        """
        context = context or PassContext()
        runner = PassRunner(self.cache)
        for stage in self.stages:
            if stage.condition is not None and not stage.condition(circuit, context):
                continue
            recording = trace if stage.record_trace else None

            def emit(pass_: BasePass, circ: QuantumCircuit) -> QuantumCircuit:
                if recording is not None:
                    recording.append(pass_.name)
                return runner.apply(pass_, circ, context)

            # Per-stage wall time under the stage's schedule name, so
            # --profile and /metrics attribute time to the same names that
            # overrides address (pass-level timings nest inside).  One
            # measurement feeds both the profile registry (when enabled) and
            # a child span of the request's trace (when one is active on
            # this thread); with both off the block runs untimed.
            with timed_span(f"stage.{stage.name}", items=len(circuit)):
                circuit = self._run_stage(stage, circuit, context, emit)
        return circuit

    @staticmethod
    def _run_stage(
        stage: Stage,
        circuit: QuantumCircuit,
        context: PassContext,
        emit: Callable[[BasePass, QuantumCircuit], QuantumCircuit],
    ) -> QuantumCircuit:
        for item in stage.passes:
            if isinstance(item, RepeatUntilStable):
                circuit = item.execute(circuit, context, emit)
            else:
                circuit = emit(item, circuit)
        return circuit

    # -- introspection ---------------------------------------------------------------

    def describe(self) -> list[dict]:
        """The schedule as plain data (stage name, passes, conditional flags)."""
        return [
            {
                "stage": stage.name,
                "passes": stage.pass_names(),
                "conditional": stage.condition is not None,
                "record_trace": stage.record_trace,
            }
            for stage in self.stages
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PassManager({self.name!r}, stages={[s.name for s in self.stages]})"
