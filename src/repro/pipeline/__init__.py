"""Pipeline layer: declarative pass scheduling plus shared analysis caching.

``PassManager`` executes declarative :class:`Stage` schedules (with flow
controllers such as :class:`RepeatUntilStable`); ``AnalysisCache`` memoises
expensive per-circuit analyses (DAG, feature vector, executability checks)
keyed by circuit fingerprint, with results carried across passes according
to each pass's ``preserves`` declaration.  The preset compilers, the API
backends and the RL environment all execute through this layer.
"""

from ..passes.base import AnalysisDomain
from .manager import PassManager, PassRunner, RepeatUntilStable, Stage
from .properties import (
    ActiveQubitsAnalysis,
    AnalysisCache,
    AnalysisPass,
    CacheStore,
    CostAwareStore,
    DagAnalysis,
    DictStore,
    FeatureVectorAnalysis,
    LruCache,
    MappingAnalysis,
    NativeGatesAnalysis,
    PropertySet,
    TransformCache,
)

__all__ = [
    "AnalysisDomain",
    "PassManager",
    "PassRunner",
    "RepeatUntilStable",
    "Stage",
    "AnalysisCache",
    "CacheStore",
    "CostAwareStore",
    "DictStore",
    "LruCache",
    "TransformCache",
    "AnalysisPass",
    "PropertySet",
    "DagAnalysis",
    "FeatureVectorAnalysis",
    "ActiveQubitsAnalysis",
    "NativeGatesAnalysis",
    "MappingAnalysis",
]
