"""Shared analysis results: :class:`PropertySet` and :class:`AnalysisCache`.

Every expensive per-circuit computation in the framework — building the DAG
view, extracting the seven observation features, checking native-gate and
coupling-map executability — used to be recomputed from scratch at every
consumer: once per RL step, once per pass-pipeline stage, once per backend.
This module centralises them:

* an :class:`AnalysisPass` wraps one such computation and names the
  :class:`~repro.passes.base.AnalysisDomain` it belongs to;
* a :class:`PropertySet` holds the computed values for *one* circuit state;
* an :class:`AnalysisCache` maps circuit fingerprints
  (:meth:`~repro.circuit.circuit.QuantumCircuit.fingerprint`) to property
  sets with LRU eviction, so identical circuit states — the same training
  circuit across episodes, a no-op optimization pass, a platform-selection
  step that does not touch the circuit — share one computation.

Transformation passes declare which domains they *preserve*; the pipeline
layer calls :meth:`AnalysisCache.carry_forward` after each pass so preserved
results migrate to the new circuit's property set instead of being redone.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Any, Iterable

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DAGCircuit
from ..devices.device import Device
from ..passes.base import AnalysisDomain

__all__ = [
    "AnalysisPass",
    "PropertySet",
    "AnalysisCache",
    "CacheStore",
    "CostAwareStore",
    "DictStore",
    "LruCache",
    "TransformCache",
    "DagAnalysis",
    "FeatureVectorAnalysis",
    "ActiveQubitsAnalysis",
    "NativeGatesAnalysis",
    "MappingAnalysis",
]


class PropertySet(dict):
    """Analysis results for one circuit state, keyed by analysis key.

    A thin ``dict`` subclass so pipeline code can attach free-form entries
    next to the structured analyses (mirroring Qiskit's property set).
    """

    def domain_keys(self, domain: str) -> list[str]:
        """All keys belonging to ``domain`` (device-keyed analyses share a prefix)."""
        return [key for key in self if key == domain or key.startswith(f"{domain}@")]


class AnalysisPass(ABC):
    """One cacheable per-circuit computation.

    Analyses are pure functions of the circuit (and, for device-dependent
    checks, the device); they never modify the circuit.  ``domain`` ties the
    analysis to the :class:`~repro.passes.base.AnalysisDomain` vocabulary that
    transformation passes use in their ``preserves`` declarations.
    """

    #: the analysis domain this computation belongs to
    domain: str = "analysis"
    #: True if the result depends on the target device
    requires_device: bool = False

    def key(self, device: Device | None = None) -> str:
        """The property-set key (device-dependent analyses key per device)."""
        if self.requires_device:
            if device is None:
                raise ValueError(f"analysis {self.domain!r} requires a device")
            return f"{self.domain}@{device.name}"
        return self.domain

    @abstractmethod
    def analyse(self, circuit: QuantumCircuit, device: Device | None = None) -> Any:
        """Compute the analysis result for ``circuit``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(domain={self.domain!r})"


class DagAnalysis(AnalysisPass):
    """Dependency-DAG view of the circuit (consumed by optimization/routing)."""

    domain = AnalysisDomain.DAG

    def analyse(self, circuit: QuantumCircuit, device: Device | None = None) -> DAGCircuit:
        return DAGCircuit.from_circuit(circuit)


class FeatureVectorAnalysis(AnalysisPass):
    """The seven-feature RL observation vector (the hottest analysis)."""

    domain = AnalysisDomain.FEATURES

    def analyse(self, circuit: QuantumCircuit, device: Device | None = None) -> np.ndarray:
        from ..features.extraction import feature_vector

        return feature_vector(circuit)


class ActiveQubitsAnalysis(AnalysisPass):
    """Qubits touched by at least one non-barrier instruction."""

    domain = AnalysisDomain.ACTIVE_QUBITS

    def analyse(self, circuit: QuantumCircuit, device: Device | None = None) -> frozenset[int]:
        return frozenset(circuit.active_qubits())


class NativeGatesAnalysis(AnalysisPass):
    """Per-device check: does the circuit only use native gates?"""

    domain = AnalysisDomain.NATIVE_GATES
    requires_device = True

    def analyse(self, circuit: QuantumCircuit, device: Device | None = None) -> bool:
        assert device is not None
        return device.gates_native(circuit)


class MappingAnalysis(AnalysisPass):
    """Per-device check: do all two-qubit gates respect the coupling map?"""

    domain = AnalysisDomain.MAPPING
    requires_device = True

    def analyse(self, circuit: QuantumCircuit, device: Device | None = None) -> bool:
        assert device is not None
        return device.mapping_satisfied(circuit)


#: singleton analysis instances used by the convenience accessors
_DAG = DagAnalysis()
_FEATURES = FeatureVectorAnalysis()
_ACTIVE = ActiveQubitsAnalysis()
_NATIVE = NativeGatesAnalysis()
_MAPPING = MappingAnalysis()


class AnalysisCache:
    """Thread-safe LRU cache of :class:`PropertySet`\\ s keyed by circuit fingerprint.

    One instance is shared across an entire pipeline run or RL training run;
    circuits that hash to the same fingerprint (same structure) share their
    analysis results regardless of object identity.
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, PropertySet] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.reward_hits = 0
        self.reward_evaluations = 0

    # -- core API -------------------------------------------------------------------

    def properties(self, circuit: QuantumCircuit) -> PropertySet:
        """The property set for ``circuit``'s current state (created on demand)."""
        fingerprint = circuit.fingerprint()
        with self._lock:
            props = self._entries.get(fingerprint)
            if props is None:
                props = PropertySet()
                self._entries[fingerprint] = props
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.evictions += 1
            else:
                self._entries.move_to_end(fingerprint)
            return props

    def get(
        self,
        circuit: QuantumCircuit,
        analysis: AnalysisPass,
        device: Device | None = None,
    ) -> Any:
        """Run ``analysis`` on ``circuit`` — or return the cached result."""
        props = self.properties(circuit)
        key = analysis.key(device)
        with self._lock:
            if key in props:
                self.hits += 1
                return props[key]
            self.misses += 1
        value = analysis.analyse(circuit, device)
        with self._lock:
            props[key] = value
        return value

    def carry_forward(
        self,
        source: QuantumCircuit,
        target: QuantumCircuit,
        preserves: frozenset[str],
    ) -> None:
        """Migrate preserved analysis results from ``source`` to ``target``.

        Called after a transformation pass turned ``source`` into ``target``;
        every cached entry whose domain the pass declared in ``preserves`` is
        copied to the target's property set.
        """
        if not preserves:
            return
        source_fp = source.fingerprint()
        target_fp = target.fingerprint()
        if source_fp == target_fp:
            return  # same structure, same property set — nothing to migrate
        with self._lock:
            props = self._entries.get(source_fp)
            if not props:
                return
            # Snapshot under the lock: another thread's get() may insert into
            # the same property set while we iterate.
            carried = {
                key: props[key]
                for domain in preserves
                for key in props.domain_keys(domain)
            }
        if not carried:
            return
        target_props = self.properties(target)
        with self._lock:
            for key, value in carried.items():
                target_props.setdefault(key, value)

    # -- convenience accessors ---------------------------------------------------------

    def dag(self, circuit: QuantumCircuit) -> DAGCircuit:
        return self.get(circuit, _DAG)

    def feature_vector(self, circuit: QuantumCircuit) -> np.ndarray:
        # Return a copy: observations flow into RL buffers that must not alias
        # the cached array.
        return self.get(circuit, _FEATURES).copy()

    def warm_features(self, circuits: "Iterable[QuantumCircuit]") -> int:
        """Bulk-load feature vectors for ``circuits`` through the batched kernel.

        One :func:`~repro.features.extraction.feature_vectors_batch` sweep
        amortises the per-circuit instruction-table pass; the rows land in the
        same property-set slots :meth:`feature_vector` reads, so fleet members
        (and anything else sharing this cache) get warm hits instead of N cold
        extractions.  Circuits whose features are already cached are skipped.
        Returns the number of vectors computed.
        """
        from ..features.extraction import feature_vectors_batch

        key = _FEATURES.key(None)
        cold = []
        for circuit in circuits:
            props = self.properties(circuit)
            with self._lock:
                if key in props:
                    continue
            cold.append((circuit, props))
        if not cold:
            return 0
        vectors = feature_vectors_batch([circuit for circuit, _props in cold])
        with self._lock:
            for (_circuit, props), vector in zip(cold, vectors):
                props.setdefault(key, vector)
        return len(cold)

    def active_qubits(self, circuit: QuantumCircuit) -> frozenset[int]:
        return self.get(circuit, _ACTIVE)

    def gates_native(self, circuit: QuantumCircuit, device: Device) -> bool:
        return self.get(circuit, _NATIVE, device)

    def mapping_satisfied(self, circuit: QuantumCircuit, device: Device) -> bool:
        return self.get(circuit, _MAPPING, device)

    def is_executable(self, circuit: QuantumCircuit, device: Device) -> bool:
        return self.gates_native(circuit, device) and self.mapping_satisfied(circuit, device)

    def reward(
        self,
        circuit: QuantumCircuit,
        device: Device,
        reward_name: str,
        reward_fn: "Callable[[QuantumCircuit, Device], float]",
    ) -> float:
        """Evaluate ``reward_fn`` on a terminal state — or return the cached value.

        Keyed by circuit fingerprint (via the property set) plus reward
        function and device, so episodes terminating in the same circuit on
        the same device pay for the reward computation once.  Reward entries
        use their own namespace (``reward:<name>@<device>``), which no pass
        declares in ``preserves`` — they are never carried forward across
        transformations.
        """
        props = self.properties(circuit)
        key = f"reward:{reward_name}@{device.name}"
        with self._lock:
            if key in props:
                self.reward_hits += 1
                return props[key]
        value = float(reward_fn(circuit, device))
        with self._lock:
            self.reward_evaluations += 1
            props[key] = value
        return value

    # -- bookkeeping -------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
                "reward_hits": self.reward_hits,
                "reward_evaluations": self.reward_evaluations,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0
            self.reward_hits = self.reward_evaluations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class CacheStore(ABC):
    """Where a flat cache keeps its entries — the pluggable storage backend.

    :class:`LruCache` (and therefore ``TransformCache`` and the batch
    service's ``CompilationCache``) delegates every storage operation to a
    store.  The default :class:`DictStore` is a private in-process dict; the
    compile-service subsystem provides a server-backed implementation
    (:class:`repro.service.SharedCacheStore`) so worker processes and
    ``AsyncVectorEnv`` members can share one set of entries across process
    boundaries.  Stores own the eviction policy *and* the hit/miss/eviction
    counters, so shared stores aggregate statistics across every client.
    """

    @abstractmethod
    def get(self, key) -> Any:
        """The cached value for ``key``, or ``None`` (counted as hit/miss)."""

    @abstractmethod
    def put(self, key, value, cost: float | None = None) -> None:
        """Insert ``key`` → ``value``, evicting per the store's policy.

        ``cost`` is the observed price of recomputing the value (compile
        wall-time in seconds for compilation results).  Stores whose eviction
        policy is cost-blind (:class:`DictStore`) ignore it;
        :class:`CostAwareStore` uses it to evict cheap-to-recompute entries
        first.
        """

    @abstractmethod
    def stats(self) -> dict[str, float]:
        """Counters: ``entries`` / ``hits`` / ``misses`` / ``evictions`` / ``hit_rate``."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry and reset the counters."""

    def __len__(self) -> int:
        return int(self.stats()["entries"])


class DictStore(CacheStore):
    """Thread-safe in-process LRU store with hit/miss/eviction counters."""

    def __init__(self, maxsize: int = 2048):
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key, value, cost: float | None = None) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict[str, float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class CostAwareStore(CacheStore):
    """Thread-safe store that evicts cheap-to-recompute entries first.

    Pure LRU treats a 2-second ``best-of`` compilation and a 2-millisecond
    ``qiskit-o0`` one as equally worth keeping; under capacity pressure that
    throws away exactly the entries that hurt most to lose.  This store keeps,
    per entry, the observed cost of recomputing it (compile wall-time in
    seconds, taken from ``cost=`` or inferred from the value's ``wall_time``
    attribute) and a last-touched tick, and scores residents as::

        score = cost / (1 + age_in_accesses)

    On overflow the lowest-scoring entry is evicted — a cheap stale entry goes
    long before an expensive one — with one guarantee on top of the scoring:
    the most recently touched entry of the highest cost tier is never evicted,
    so the most expensive resident always survives an eviction no matter how
    the scores fall.  (Only that one representative is protected: stale
    entries that merely *tie* the maximum cost age out like everything else.)

    Drop-in for :class:`DictStore` anywhere a :class:`CacheStore` is accepted:
    ``CompilationCache(store=CostAwareStore(...))``,
    ``TransformCache(store=...)``, or server-side behind a
    :class:`repro.service.CacheServer` (``policy="cost"``).
    """

    def __init__(self, maxsize: int = 2048, *, default_cost: float = 1.0):
        self.maxsize = maxsize
        self.default_cost = default_cost
        self._lock = threading.Lock()
        #: key -> [value, cost, last_touched_tick]
        self._entries: dict[Any, list] = {}
        self._tick = 0
        # The max-cost tier is tracked incrementally so an eviction is a
        # single scan and puts below capacity stay O(1).  Max-cost entries
        # only leave through overwrites, the all-tie fallback, or clear() —
        # never through scored eviction — which keeps the counters exact.
        self._max_cost = 0.0
        self._max_count = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.cost_evicted = 0.0

    def _score(self, entry: list) -> float:
        return entry[1] / (1 + (self._tick - entry[2]))

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            self._tick += 1
            if entry is None:
                self.misses += 1
                return None
            entry[2] = self._tick
            self.hits += 1
            return entry[0]

    def put(self, key, value, cost: float | None = None) -> None:
        if cost is None:
            cost = getattr(value, "wall_time", None) or self.default_cost
        cost = float(cost)
        with self._lock:
            self._tick += 1
            previous = self._entries.pop(key, None)
            if previous is not None:
                # Settle the old entry's tier accounting with the entry fully
                # removed, so a recompute never sees old and new at once.
                self._drop_from_max_tier(previous[1])
            self._entries[key] = [value, cost, self._tick]
            if cost > self._max_cost:
                self._max_cost = cost
                self._max_count = 1
            elif cost == self._max_cost:
                self._max_count += 1
            while len(self._entries) > self.maxsize:
                self._evict_one()

    def _drop_from_max_tier(self, cost: float) -> None:
        """Account for a max-tier entry leaving (overwrite or tie-fallback evict)."""
        if cost == self._max_cost:
            self._max_count -= 1
            if self._max_count == 0:
                self._max_cost = max(
                    (entry[1] for entry in self._entries.values()), default=0.0
                )
                self._max_count = sum(
                    1 for entry in self._entries.values() if entry[1] == self._max_cost
                )

    def _evict_one(self) -> None:
        """Evict the lowest-scoring entry, sparing the most expensive resident.

        Exactly one max-cost entry — the most recently touched — is off
        limits, so "the most expensive entry" always survives an eviction.
        Protecting only one representative (not the whole tie tier) matters:
        stale expensive ties age out normally, and a cheap newcomer facing a
        store full of expensive entries is only rejected until their scores
        decay below its own, never permanently.
        """
        protected = None
        protected_tick = -1
        for key, entry in self._entries.items():
            if entry[1] == self._max_cost and entry[2] > protected_tick:
                protected, protected_tick = key, entry[2]
        candidates = [key for key in self._entries if key != protected]
        if candidates:
            victim = min(candidates, key=lambda key: self._score(self._entries[key]))
        else:
            # The protected entry is the only resident (maxsize 0, or an
            # overflow of a 0-capacity store): there is nothing else to give.
            victim = protected
        entry = self._entries.pop(victim)
        self._drop_from_max_tier(entry[1])
        self.cost_evicted += entry[1]
        self.evictions += 1

    def snapshot(self) -> dict[Any, tuple[float, int]]:
        """``{key: (cost, last_touched_tick)}`` for the current residents.

        Introspection for monitoring and the property-test suite; does not
        touch recency or the hit/miss counters.
        """
        with self._lock:
            return {key: (entry[1], entry[2]) for key, entry in self._entries.items()}

    def stats(self) -> dict[str, float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
                "cost_evicted": self.cost_evicted,
                "resident_cost": sum(entry[1] for entry in self._entries.values()),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._tick = 0
            self._max_cost = 0.0
            self._max_count = 0
            self.hits = self.misses = self.evictions = 0
            self.cost_evicted = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class LruCache:
    """Key/value cache with hit/miss/eviction bookkeeping and pluggable storage.

    The shared base of every flat result cache in the framework
    (:class:`TransformCache` here, ``CompilationCache`` in the batch
    service); :class:`AnalysisCache` keeps its own structure because its
    entries are per-circuit property *sets*, not single values.

    ``store`` selects where entries live: the default is a private
    thread-safe :class:`DictStore`; pass a
    :class:`repro.service.SharedCacheStore` to share one entry set (and one
    set of counters) with other processes through a cache server.
    """

    def __init__(self, maxsize: int = 2048, *, store: CacheStore | None = None):
        self.maxsize = maxsize
        self.store = store if store is not None else DictStore(maxsize)

    def get(self, key):
        return self.store.get(key)

    def put(self, key, value, cost: float | None = None) -> None:
        self.store.put(key, value, cost)

    @property
    def hits(self) -> int:
        return int(self.store.stats()["hits"])

    @property
    def misses(self) -> int:
        return int(self.store.stats()["misses"])

    @property
    def evictions(self) -> int:
        return int(self.store.stats()["evictions"])

    @property
    def hit_rate(self) -> float:
        return float(self.store.stats()["hit_rate"])

    def stats(self) -> dict[str, float]:
        return self.store.stats()

    def clear(self) -> None:
        self.store.clear()

    def __len__(self) -> int:
        return len(self.store)


class TransformCache(LruCache):
    """Thread-safe LRU memo of pass applications.

    Keys are ``(pass name, input circuit fingerprint, device name, seed)``
    — everything a deterministic pass's output depends on.  Values are the
    output circuits, returned *by object*: circuits are immutable by the
    pass contract (enforced by the registry-wide no-input-mutation property
    test), so sharing the instance also shares its cached fingerprint and
    analysis entries.

    Sound only where the :class:`~repro.passes.base.PassContext` is built per
    application and discarded afterwards (the RL environment's step loop):
    replaying a memoised result skips any context mutation the original run
    performed.  The :class:`~repro.pipeline.manager.PassManager`, which
    threads one context through a whole schedule, must not use it.
    """

    def __init__(self, maxsize: int = 4096, *, store: CacheStore | None = None):
        super().__init__(maxsize, store=store)

    @staticmethod
    def key(
        pass_name: str,
        circuit: QuantumCircuit,
        device: Device | None,
        seed: int,
    ) -> tuple:
        return (
            pass_name,
            circuit.fingerprint(),
            device.name if device is not None else None,
            seed,
        )
