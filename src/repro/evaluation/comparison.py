"""Comparison of the RL compiler against the Qiskit/TKET-style baselines.

This implements the core of the paper's evaluation protocol (Section IV-B):
every benchmark circuit is compiled once with the trained RL model and once
with each baseline at its highest optimization level (Qiskit O3, TKET O2,
both targeting ``ibmq_washington``), and all three results are scored with
the same reward function.  The absolute difference "RL minus baseline" is
what Figs. 3a-f plot.

The comparison is built on the unified backend registry
(:mod:`repro.api`): the trained :class:`~repro.core.predictor.Predictor` is
wrapped in a :class:`~repro.api.backends.PredictorBackend` and swept together
with the named baseline backends through :func:`repro.api.compile_batch`, so
baseline compilations are cached — comparing several reward models over the
same suite compiles each baseline circuit only once.  Unfinished RL
compilations and baseline failures are surfaced as
:class:`RuntimeWarning`\\ s (and scored 0.0) instead of silently collapsing
into the statistics.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..api.backends import PredictorBackend
from ..api.batch import CompilationCache, compile_batch
from ..circuit.circuit import QuantumCircuit
from ..core.predictor import Predictor
from ..devices.library import get_device
from ..reward.functions import reward_function

__all__ = ["ComparisonRecord", "ComparisonSummary", "compare_predictor", "summarize"]


@dataclass
class ComparisonRecord:
    """Reward values for one circuit under the RL model and both baselines."""

    circuit_name: str
    benchmark: str
    num_qubits: int
    metric: str
    rl_reward: float
    qiskit_reward: float
    tket_reward: float
    rl_device: str | None = None

    @property
    def diff_vs_qiskit(self) -> float:
        return self.rl_reward - self.qiskit_reward

    @property
    def diff_vs_tket(self) -> float:
        return self.rl_reward - self.tket_reward


@dataclass
class ComparisonSummary:
    """Aggregate statistics over a list of comparison records."""

    metric: str
    num_circuits: int
    fraction_better_or_equal_qiskit: float
    fraction_better_or_equal_tket: float
    mean_diff_qiskit: float
    mean_diff_tket: float
    records: list[ComparisonRecord] = field(default_factory=list)

    def format_table(self) -> str:
        lines = [
            f"Metric: {self.metric} ({self.num_circuits} circuits)",
            f"  outperforms or matches Qiskit-O3 in {100 * self.fraction_better_or_equal_qiskit:.1f}% of cases",
            f"  outperforms or matches TKET-O2   in {100 * self.fraction_better_or_equal_tket:.1f}% of cases",
            f"  mean reward difference vs Qiskit-O3: {self.mean_diff_qiskit:+.4f}",
            f"  mean reward difference vs TKET-O2:   {self.mean_diff_tket:+.4f}",
        ]
        return "\n".join(lines)


def _scored(result, metric_name: str, circuit_name: str) -> float:
    """The requested metric of one batch result, warning on failures."""
    if not result.succeeded:
        warnings.warn(
            f"{result.backend} compilation of {circuit_name!r} failed "
            f"({result.error}); scoring it as 0.0",
            RuntimeWarning,
            stacklevel=3,
        )
        return 0.0
    return float(result.scores[metric_name])


def compare_predictor(
    predictor: Predictor,
    circuits: list[QuantumCircuit],
    *,
    baseline_device: str = "ibmq_washington",
    metric: str | None = None,
    seed: int = 0,
    qiskit_backend: str = "qiskit-o3",
    tket_backend: str = "tket-o2",
    max_workers: int | None = None,
    cache: CompilationCache | None = None,
) -> list[ComparisonRecord]:
    """Compile every circuit with the RL model and both baselines; score all three.

    The RL model is free to select its own target device (as in the paper);
    the baseline backends always target ``baseline_device``.  All results are
    scored with ``metric`` (default: the predictor's own reward function) on
    the device each compiled circuit actually targets.  The three backends are
    swept through :func:`repro.api.compile_batch`, so baseline compilations
    are cached and reused across calls (default: the process-wide cache; pass
    ``cache`` for an isolated one).
    """
    metric_name = metric or predictor.reward_name
    reward_function(metric_name)  # fail fast on unknown metrics
    device = get_device(baseline_device)
    rl = PredictorBackend(predictor)
    batch_kwargs = {} if cache is None else {"cache": cache}
    batch = compile_batch(
        circuits,
        backends=[rl, qiskit_backend, tket_backend],
        device=device,
        objective=metric_name,
        seed=seed,
        max_workers=max_workers,
        **batch_kwargs,
    )
    records: list[ComparisonRecord] = []
    for index, circuit in enumerate(circuits):
        rl_result = batch.get(index, rl.name)
        qiskit_result = batch.get(index, qiskit_backend)
        tket_result = batch.get(index, tket_backend)
        records.append(
            ComparisonRecord(
                circuit_name=circuit.name,
                benchmark=str(circuit.metadata.get("benchmark", circuit.name.rsplit("_", 1)[0])),
                num_qubits=len(circuit.active_qubits() or {0}),
                metric=metric_name,
                rl_reward=_scored(rl_result, metric_name, circuit.name),
                qiskit_reward=_scored(qiskit_result, metric_name, circuit.name),
                tket_reward=_scored(tket_result, metric_name, circuit.name),
                rl_device=rl_result.device.name if rl_result.device else None,
            )
        )
    return records


def summarize(records: list[ComparisonRecord]) -> ComparisonSummary:
    """Aggregate a record list into the headline percentages of the paper."""
    if not records:
        raise ValueError("cannot summarise an empty record list")
    diffs_qiskit = np.array([r.diff_vs_qiskit for r in records])
    diffs_tket = np.array([r.diff_vs_tket for r in records])
    return ComparisonSummary(
        metric=records[0].metric,
        num_circuits=len(records),
        fraction_better_or_equal_qiskit=float(np.mean(diffs_qiskit >= -1e-9)),
        fraction_better_or_equal_tket=float(np.mean(diffs_tket >= -1e-9)),
        mean_diff_qiskit=float(diffs_qiskit.mean()),
        mean_diff_tket=float(diffs_tket.mean()),
        records=list(records),
    )
