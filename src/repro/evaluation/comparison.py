"""Comparison of the RL compiler against the Qiskit/TKET-style baselines.

This implements the core of the paper's evaluation protocol (Section IV-B):
every benchmark circuit is compiled once with the trained RL model and once
with each baseline at its highest optimization level (Qiskit O3, TKET O2,
both targeting ``ibmq_washington``), and all three results are scored with
the same reward function.  The absolute difference "RL minus baseline" is
what Figs. 3a-f plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..compilers.presets import compile_qiskit_style, compile_tket_style
from ..core.predictor import Predictor
from ..devices.library import get_device
from ..reward.functions import reward_function

__all__ = ["ComparisonRecord", "ComparisonSummary", "compare_predictor", "summarize"]


@dataclass
class ComparisonRecord:
    """Reward values for one circuit under the RL model and both baselines."""

    circuit_name: str
    benchmark: str
    num_qubits: int
    metric: str
    rl_reward: float
    qiskit_reward: float
    tket_reward: float
    rl_device: str | None = None

    @property
    def diff_vs_qiskit(self) -> float:
        return self.rl_reward - self.qiskit_reward

    @property
    def diff_vs_tket(self) -> float:
        return self.rl_reward - self.tket_reward


@dataclass
class ComparisonSummary:
    """Aggregate statistics over a list of comparison records."""

    metric: str
    num_circuits: int
    fraction_better_or_equal_qiskit: float
    fraction_better_or_equal_tket: float
    mean_diff_qiskit: float
    mean_diff_tket: float
    records: list[ComparisonRecord] = field(default_factory=list)

    def format_table(self) -> str:
        lines = [
            f"Metric: {self.metric} ({self.num_circuits} circuits)",
            f"  outperforms or matches Qiskit-O3 in {100 * self.fraction_better_or_equal_qiskit:.1f}% of cases",
            f"  outperforms or matches TKET-O2   in {100 * self.fraction_better_or_equal_tket:.1f}% of cases",
            f"  mean reward difference vs Qiskit-O3: {self.mean_diff_qiskit:+.4f}",
            f"  mean reward difference vs TKET-O2:   {self.mean_diff_tket:+.4f}",
        ]
        return "\n".join(lines)


def compare_predictor(
    predictor: Predictor,
    circuits: list[QuantumCircuit],
    *,
    baseline_device: str = "ibmq_washington",
    metric: str | None = None,
    seed: int = 0,
) -> list[ComparisonRecord]:
    """Compile every circuit with the RL model and both baselines; score all three.

    The RL model is free to select its own target device (as in the paper);
    the baselines always target ``baseline_device``.  All results are scored
    with ``metric`` (default: the predictor's own reward function) on the
    device each compiled circuit actually targets.
    """
    metric_name = metric or predictor.reward_name
    metric_fn = reward_function(metric_name)
    device = get_device(baseline_device)
    records: list[ComparisonRecord] = []
    for circuit in circuits:
        result = predictor.compile(circuit)
        if result.device is not None and result.reached_done:
            rl_reward = float(metric_fn(result.circuit, result.device))
        else:
            rl_reward = 0.0
        qiskit = compile_qiskit_style(circuit, device, optimization_level=3, seed=seed)
        tket = compile_tket_style(circuit, device, optimization_level=2, seed=seed)
        records.append(
            ComparisonRecord(
                circuit_name=circuit.name,
                benchmark=str(circuit.metadata.get("benchmark", circuit.name.rsplit("_", 1)[0])),
                num_qubits=len(circuit.active_qubits() or {0}),
                metric=metric_name,
                rl_reward=rl_reward,
                qiskit_reward=float(metric_fn(qiskit.circuit, device)),
                tket_reward=float(metric_fn(tket.circuit, device)),
                rl_device=result.device.name if result.device else None,
            )
        )
    return records


def summarize(records: list[ComparisonRecord]) -> ComparisonSummary:
    """Aggregate a record list into the headline percentages of the paper."""
    if not records:
        raise ValueError("cannot summarise an empty record list")
    diffs_qiskit = np.array([r.diff_vs_qiskit for r in records])
    diffs_tket = np.array([r.diff_vs_tket for r in records])
    return ComparisonSummary(
        metric=records[0].metric,
        num_circuits=len(records),
        fraction_better_or_equal_qiskit=float(np.mean(diffs_qiskit >= -1e-9)),
        fraction_better_or_equal_tket=float(np.mean(diffs_tket >= -1e-9)),
        mean_diff_qiskit=float(diffs_qiskit.mean()),
        mean_diff_tket=float(diffs_tket.mean()),
        records=list(records),
    )
