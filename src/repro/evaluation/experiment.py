"""End-to-end experiment driver reproducing the paper's evaluation.

``run_experiment`` performs the full pipeline of Section IV: build the
benchmark suite, train one model per reward function, compare every model
against the baseline backends (default Qiskit-O3 / TKET-O2, Figs. 3a-f), and
compute the cross-model reward matrix (Table I).

The comparisons run through the unified backend registry (:mod:`repro.api`):
baselines are addressed by backend name and swept with the caching batch
service, so the baseline compilations are shared across the per-reward models
instead of being recomputed three times.

Budgets are configurable so the identical code path runs both at paper scale
(200 circuits, 100k timesteps — hours) and at test/benchmark scale (a handful
of circuits, a few thousand timesteps — minutes).  Environment variables
``REPRO_TRAIN_STEPS``, ``REPRO_MIN_QUBITS``, ``REPRO_MAX_QUBITS`` and
``REPRO_QUBIT_STEP`` override the defaults used by the benchmark harness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..bench.suite import benchmark_suite
from ..circuit.circuit import QuantumCircuit
from ..core.predictor import Predictor
from ..core.training import TrainingConfig, train_all_models
from ..reward.functions import REWARD_FUNCTIONS
from ..rl.ppo import PPOConfig
from .comparison import ComparisonRecord, ComparisonSummary, compare_predictor, summarize
from .figures import (
    HistogramData,
    PerBenchmarkData,
    per_benchmark_differences,
    reward_difference_histogram,
)
from .tables import CrossModelTable, cross_model_rewards

__all__ = ["ExperimentConfig", "ExperimentResults", "run_experiment", "default_config_from_env"]


@dataclass
class ExperimentConfig:
    """Scale knobs for the end-to-end experiment."""

    train_timesteps: int = 100_000
    min_qubits: int = 2
    max_qubits: int = 20
    qubit_step: int = 2
    benchmark_names: list[str] | None = None
    max_episode_steps: int = 25
    baseline_device: str = "ibmq_washington"
    seed: int = 0
    rewards: list[str] = field(default_factory=lambda: list(REWARD_FUNCTIONS))
    #: registered backend names the RL models are compared against
    qiskit_backend: str = "qiskit-o3"
    tket_backend: str = "tket-o2"
    #: worker-pool size for batch compilation (None: one worker per CPU;
    #: thread-based, so overlap is limited to NumPy-heavy passes)
    max_workers: int | None = None


@dataclass
class ExperimentResults:
    """Everything needed to regenerate the paper's figures and table."""

    config: ExperimentConfig
    models: dict[str, Predictor]
    records: dict[str, list[ComparisonRecord]]
    summaries: dict[str, ComparisonSummary]
    histograms: dict[str, HistogramData]
    per_benchmark: dict[str, PerBenchmarkData]
    table1: CrossModelTable


def default_config_from_env(**overrides) -> ExperimentConfig:
    """Build a config from environment variables (reduced-scale defaults)."""
    config = ExperimentConfig(
        train_timesteps=int(os.environ.get("REPRO_TRAIN_STEPS", 3000)),
        min_qubits=int(os.environ.get("REPRO_MIN_QUBITS", 2)),
        max_qubits=int(os.environ.get("REPRO_MAX_QUBITS", 6)),
        qubit_step=int(os.environ.get("REPRO_QUBIT_STEP", 2)),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def build_suite(config: ExperimentConfig) -> list[QuantumCircuit]:
    """The benchmark suite used for both training and evaluation (as in the paper)."""
    return benchmark_suite(
        config.min_qubits,
        config.max_qubits,
        names=config.benchmark_names,
        step=config.qubit_step,
    )


def run_experiment(config: ExperimentConfig | None = None) -> ExperimentResults:
    """Run the full train-and-evaluate pipeline of the paper's Section IV."""
    config = config or default_config_from_env()
    suite = build_suite(config)

    training_config = TrainingConfig(
        total_timesteps=config.train_timesteps,
        max_steps=config.max_episode_steps,
        seed=config.seed,
        ppo=PPOConfig(n_steps=128, batch_size=64, n_epochs=6),
    )
    all_models = train_all_models(suite, training_config)
    models = {name: model for name, model in all_models.items() if name in config.rewards}

    records: dict[str, list[ComparisonRecord]] = {}
    summaries: dict[str, ComparisonSummary] = {}
    histograms: dict[str, HistogramData] = {}
    per_benchmark: dict[str, PerBenchmarkData] = {}
    for reward_name, model in models.items():
        reward_records = compare_predictor(
            model,
            suite,
            baseline_device=config.baseline_device,
            seed=config.seed,
            qiskit_backend=config.qiskit_backend,
            tket_backend=config.tket_backend,
            max_workers=config.max_workers,
        )
        records[reward_name] = reward_records
        summaries[reward_name] = summarize(reward_records)
        histograms[reward_name] = reward_difference_histogram(reward_records)
        per_benchmark[reward_name] = per_benchmark_differences(reward_records)

    table1 = cross_model_rewards(models, suite)
    return ExperimentResults(
        config=config,
        models=models,
        records=records,
        summaries=summaries,
        histograms=histograms,
        per_benchmark=per_benchmark,
        table1=table1,
    )
