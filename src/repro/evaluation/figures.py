"""Data generation for the paper's Fig. 3 (histograms and per-benchmark bars).

Figures 3a-c show histograms of the absolute reward difference between the
RL compiler and each baseline; Figures 3d-f show the mean difference per
benchmark family.  The functions here turn comparison records into exactly
those series and render them as text (the repository is plot-library free).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .comparison import ComparisonRecord

__all__ = [
    "HistogramData",
    "PerBenchmarkData",
    "reward_difference_histogram",
    "per_benchmark_differences",
    "format_histogram",
    "format_per_benchmark",
]


@dataclass
class HistogramData:
    """Relative-frequency histogram of reward differences (one Fig. 3a-c panel)."""

    metric: str
    bin_edges: np.ndarray
    qiskit_frequencies: np.ndarray
    tket_frequencies: np.ndarray

    @property
    def bin_centers(self) -> np.ndarray:
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])


@dataclass
class PerBenchmarkData:
    """Mean reward difference per benchmark family (one Fig. 3d-f panel)."""

    metric: str
    benchmarks: list[str]
    mean_diff_qiskit: np.ndarray
    mean_diff_tket: np.ndarray


def reward_difference_histogram(
    records: list[ComparisonRecord], *, bins: int = 21, value_range: float | None = None
) -> HistogramData:
    """Histogram of RL-minus-baseline reward differences (Figs. 3a-c)."""
    diffs_qiskit = np.array([r.diff_vs_qiskit for r in records])
    diffs_tket = np.array([r.diff_vs_tket for r in records])
    if value_range is None:
        value_range = float(
            max(0.1, np.max(np.abs(np.concatenate([diffs_qiskit, diffs_tket]))) * 1.05)
        )
    edges = np.linspace(-value_range, value_range, bins + 1)
    qiskit_counts, _ = np.histogram(diffs_qiskit, bins=edges)
    tket_counts, _ = np.histogram(diffs_tket, bins=edges)
    total = max(1, len(records))
    return HistogramData(
        metric=records[0].metric if records else "",
        bin_edges=edges,
        qiskit_frequencies=qiskit_counts / total,
        tket_frequencies=tket_counts / total,
    )


def per_benchmark_differences(records: list[ComparisonRecord]) -> PerBenchmarkData:
    """Mean reward difference per benchmark family (Figs. 3d-f)."""
    benchmarks = sorted({r.benchmark for r in records})
    mean_qiskit = []
    mean_tket = []
    for benchmark in benchmarks:
        subset = [r for r in records if r.benchmark == benchmark]
        mean_qiskit.append(float(np.mean([r.diff_vs_qiskit for r in subset])))
        mean_tket.append(float(np.mean([r.diff_vs_tket for r in subset])))
    return PerBenchmarkData(
        metric=records[0].metric if records else "",
        benchmarks=benchmarks,
        mean_diff_qiskit=np.array(mean_qiskit),
        mean_diff_tket=np.array(mean_tket),
    )


def format_histogram(data: HistogramData, *, width: int = 40) -> str:
    """Render a histogram as aligned text rows (paper Fig. 3a-c style)."""
    lines = [f"Reward-difference histogram ({data.metric}): RL minus baseline"]
    peak = max(float(data.qiskit_frequencies.max()), float(data.tket_frequencies.max()), 1e-9)
    for center, q_freq, t_freq in zip(
        data.bin_centers, data.qiskit_frequencies, data.tket_frequencies
    ):
        q_bar = "#" * int(round(width * q_freq / peak))
        t_bar = "*" * int(round(width * t_freq / peak))
        lines.append(f"{center:+7.3f} | qiskit {q_freq:5.3f} {q_bar:<{width}} | tket {t_freq:5.3f} {t_bar}")
    return "\n".join(lines)


def format_per_benchmark(data: PerBenchmarkData) -> str:
    """Render the per-benchmark mean differences as a table (Fig. 3d-f style)."""
    lines = [
        f"Mean reward difference per benchmark ({data.metric}): RL minus baseline",
        f"{'benchmark':<18} {'vs Qiskit-O3':>14} {'vs TKET-O2':>14}",
    ]
    for name, dq, dt in zip(data.benchmarks, data.mean_diff_qiskit, data.mean_diff_tket):
        lines.append(f"{name:<18} {dq:>+14.4f} {dt:>+14.4f}")
    lines.append(
        f"{'average':<18} {float(data.mean_diff_qiskit.mean()):>+14.4f} "
        f"{float(data.mean_diff_tket.mean()):>+14.4f}"
    )
    return "\n".join(lines)
