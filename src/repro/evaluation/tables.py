"""Data generation for the paper's Table I (cross-model reward matrix).

Table I evaluates each of the three trained models (one per reward function)
under *all three* reward functions, confirming that the model trained for a
metric achieves the best average value of that metric.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..core.predictor import Predictor
from ..reward.functions import REWARD_FUNCTIONS, reward_function

__all__ = ["CrossModelTable", "cross_model_rewards", "format_table1"]


@dataclass
class CrossModelTable:
    """Average reward of each trained model under each evaluation metric."""

    #: row order (models, by the metric they were trained for)
    trained_for: list[str]
    #: column order (evaluation metrics)
    evaluated_on: list[str]
    #: values[i][j] = average reward of model trained_for[i] under evaluated_on[j]
    values: np.ndarray

    def value(self, trained: str, evaluated: str) -> float:
        return float(
            self.values[self.trained_for.index(trained), self.evaluated_on.index(evaluated)]
        )

    def diagonal_is_best(self) -> bool:
        """The paper's claim: each metric is maximised by the model trained for it."""
        for j, _metric in enumerate(self.evaluated_on):
            column = self.values[:, j]
            if int(np.argmax(column)) != j:
                return False
        return True


def cross_model_rewards(
    models: dict[str, Predictor], circuits: list[QuantumCircuit]
) -> CrossModelTable:
    """Compute the Table I matrix for trained ``models`` over ``circuits``."""
    metric_names = [m for m in REWARD_FUNCTIONS if m in models]
    values = np.zeros((len(metric_names), len(metric_names)))
    for i, trained_metric in enumerate(metric_names):
        predictor = models[trained_metric]
        results = [predictor.compile(circuit) for circuit in circuits]
        failed = [r.circuit.name for r in results if not r.succeeded]
        if failed:
            warnings.warn(
                f"model trained for {trained_metric!r} failed to compile "
                f"{len(failed)}/{len(results)} circuits ({', '.join(failed[:5])}"
                f"{', ...' if len(failed) > 5 else ''}); scoring them as 0.0",
                RuntimeWarning,
                stacklevel=2,
            )
        for j, eval_metric in enumerate(metric_names):
            reward_function(eval_metric)  # fail fast on unknown metrics
            # Unified results are pre-scored under every metric.
            rewards = [
                result.scores.get(eval_metric, 0.0) if result.succeeded else 0.0
                for result in results
            ]
            values[i, j] = float(np.mean(rewards))
    return CrossModelTable(metric_names, list(metric_names), values)


def format_table1(table: CrossModelTable) -> str:
    """Render the cross-model matrix in the layout of the paper's Table I."""
    header = f"{'Model trained for...':<22}" + "".join(
        f"{name:>16}" for name in table.evaluated_on
    )
    lines = ["Average result for...", header]
    for i, trained in enumerate(table.trained_for):
        row = f"{trained:<22}" + "".join(f"{table.values[i, j]:>16.3f}" for j in range(len(table.evaluated_on)))
        lines.append(row)
    lines.append(
        "diagonal dominant: " + ("yes" if table.diagonal_is_best() else "no")
    )
    return "\n".join(lines)
