"""Evaluation harness: RL-vs-baseline comparisons, Fig. 3 data, Table I data."""

from .comparison import ComparisonRecord, ComparisonSummary, compare_predictor, summarize
from .experiment import (
    ExperimentConfig,
    ExperimentResults,
    build_suite,
    default_config_from_env,
    run_experiment,
)
from .figures import (
    HistogramData,
    PerBenchmarkData,
    format_histogram,
    format_per_benchmark,
    per_benchmark_differences,
    reward_difference_histogram,
)
from .tables import CrossModelTable, cross_model_rewards, format_table1

__all__ = [
    "ComparisonRecord",
    "ComparisonSummary",
    "compare_predictor",
    "summarize",
    "HistogramData",
    "PerBenchmarkData",
    "reward_difference_histogram",
    "per_benchmark_differences",
    "format_histogram",
    "format_per_benchmark",
    "CrossModelTable",
    "cross_model_rewards",
    "format_table1",
    "ExperimentConfig",
    "ExperimentResults",
    "run_experiment",
    "default_config_from_env",
    "build_suite",
]
