"""Gateway observability: ring-buffer time series + Prometheus exposition.

Two collectors feed the ``/metrics`` and ``/v1/stats`` endpoints:

* :class:`LatencyWindow` — a bounded reservoir of recent request latencies,
  kept per label (per tenant and per priority class), from which p50/p95 are
  computed on demand.  The service itself only tracks mean/max; percentiles
  are a gateway concern because only the gateway sees per-tenant identity.
* :class:`StatsSampler` — a daemon thread that snapshots
  ``CompileService.stats()`` every ``interval`` seconds into a ring buffer
  (`deque(maxlen=...)`), giving ``/v1/stats`` a queue-depth / worker-count /
  hit-rate time series without any external metrics stack.

:func:`render_prometheus` serialises both (plus the tenant and fair-share
counters) in the Prometheus text exposition format, so a real deployment can
scrape the gateway directly.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from collections import deque

__all__ = ["LatencyWindow", "StatsSampler", "render_prometheus", "quantile"]


def quantile(samples: "list[float]", q: float) -> float:
    """Nearest-rank quantile over unsorted samples (0.0 for an empty list).

    The rank is rounded half-up via ``floor(rank + 0.5)`` — ``round()``
    would use banker's rounding (``round(0.5) == 0``), which picks the
    sample *below* the requested rank whenever ``q * (n - 1)`` lands exactly
    on ``.5`` (e.g. the median of two samples).
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, max(0, int(math.floor(q * (len(ordered) - 1) + 0.5)))
    )
    return ordered[index]


class LatencyWindow:
    """Recent request latencies, bucketed by a label (tenant, priority, ...).

    Two views over the same observations:

    * a bounded reservoir per label from which p50/p95 are computed on
      demand (:meth:`summary`) — human-friendly, but quantiles of quantiles
      cannot be aggregated by a scrape stack;
    * a cumulative histogram per label (:meth:`histogram`) with the
      Prometheus bucket convention (``le`` upper bounds, counts never
      reset), which *can* be summed across instances and turned into any
      quantile server-side.
    """

    #: histogram upper bounds in seconds (``+Inf`` is implicit)
    HISTOGRAM_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

    def __init__(self, window: int = 512):
        self.window = window
        self._buckets: dict[str, deque] = {}
        self._totals: dict[str, int] = {}
        #: label -> per-bucket counts (len(HISTOGRAM_BUCKETS) + 1 for +Inf)
        self._hist_counts: dict[str, list[int]] = {}
        self._hist_sums: dict[str, float] = {}
        self._lock = threading.Lock()

    def observe(self, label: str, seconds: float) -> None:
        with self._lock:
            bucket = self._buckets.get(label)
            if bucket is None:
                bucket = self._buckets[label] = deque(maxlen=self.window)
                self._hist_counts[label] = [0] * (len(self.HISTOGRAM_BUCKETS) + 1)
                self._hist_sums[label] = 0.0
            bucket.append(seconds)
            self._totals[label] = self._totals.get(label, 0) + 1
            self._hist_counts[label][bisect.bisect_left(self.HISTOGRAM_BUCKETS, seconds)] += 1
            self._hist_sums[label] += seconds

    def histogram(self) -> dict:
        """``{label: {buckets: [(le, cumulative_count), ...], sum, count}}``.

        Bucket counts are cumulative (every observation ``<= le``) and never
        reset, matching the Prometheus histogram exposition contract; the
        trailing ``+Inf`` bucket equals ``count``.
        """
        with self._lock:
            counts = {label: list(row) for label, row in self._hist_counts.items()}
            sums = dict(self._hist_sums)
        out: dict = {}
        for label, row in counts.items():
            cumulative = 0
            buckets = []
            for bound, count in zip(self.HISTOGRAM_BUCKETS, row):
                cumulative += count
                buckets.append((bound, cumulative))
            buckets.append((float("inf"), cumulative + row[-1]))
            out[label] = {
                "buckets": buckets,
                "sum": sums[label],
                "count": buckets[-1][1],
            }
        return out

    def summary(self) -> dict:
        """``{label: {count, p50, p95, mean}}`` over the retained window."""
        with self._lock:
            snapshot = {label: list(bucket) for label, bucket in self._buckets.items()}
            totals = dict(self._totals)
        return {
            label: {
                "count": totals[label],
                "window": len(samples),
                "p50_seconds": quantile(samples, 0.50),
                "p95_seconds": quantile(samples, 0.95),
                "mean_seconds": sum(samples) / len(samples) if samples else 0.0,
            }
            for label, samples in snapshot.items()
        }


class StatsSampler:
    """Ring-buffer time series over a ``stats()``-shaped callable."""

    def __init__(self, stats_fn, *, interval: float = 1.0, capacity: int = 600):
        self._stats_fn = stats_fn
        self.interval = interval
        self._samples: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    def start(self) -> "StatsSampler":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="gateway-stats-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2)
            self._thread = None

    def sample_once(self) -> "dict | None":
        """Take one sample immediately (also what the loop calls)."""
        try:
            stats = self._stats_fn()
        except Exception:  # noqa: BLE001 - a dying service must not kill sampling
            return None
        point = {
            "time": time.time(),
            "queue_depth": stats.get("queue_depth", 0),
            "in_flight": stats.get("in_flight", 0),
            "submitted": stats.get("submitted", 0),
            "completed": stats.get("completed", 0),
            "failed": stats.get("failed", 0),
            "cache_hit_rate": stats.get("cache", {}).get("hit_rate", 0.0),
            "lane_workers": {
                name: lane.get("workers", 0)
                for name, lane in stats.get("lanes", {}).items()
            },
        }
        with self._lock:
            self._samples.append(point)
        return point

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def series(self, last: "int | None" = None) -> list[dict]:
        with self._lock:
            samples = list(self._samples)
        return samples[-last:] if last else samples


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _line(name: str, value, labels: "dict | None" = None) -> str:
    if labels:
        body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items()))
        return f"{name}{{{body}}} {value}"
    return f"{name} {value}"


def render_prometheus(
    service_stats: dict,
    *,
    gateway_counters: "dict | None" = None,
    tenant_stats: "dict | None" = None,
    latency: "LatencyWindow | None" = None,
    health: "dict | None" = None,
) -> str:
    """Serialise service + gateway metrics in Prometheus text format."""
    lines: list[str] = []

    def metric(name: str, kind: str, help_text: str, rows: list[str]) -> None:
        if not rows:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(rows)

    metric(
        "repro_service_requests_total",
        "counter",
        "Requests accepted by the compile service.",
        [_line("repro_service_requests_total", service_stats.get("submitted", 0))],
    )
    metric(
        "repro_service_completed_total",
        "counter",
        "Requests resolved (including structured failures).",
        [_line("repro_service_completed_total", service_stats.get("completed", 0))],
    )
    metric(
        "repro_service_failed_total",
        "counter",
        "Requests resolved as failures (compile errors, deadline expiries).",
        [_line("repro_service_failed_total", service_stats.get("failed", 0))],
    )
    metric(
        "repro_service_queue_depth",
        "gauge",
        "Requests waiting in the scheduler and lane queues.",
        [_line("repro_service_queue_depth", service_stats.get("queue_depth", 0))],
    )
    metric(
        "repro_service_in_flight",
        "gauge",
        "Requests currently being compiled.",
        [_line("repro_service_in_flight", service_stats.get("in_flight", 0))],
    )
    cache = service_stats.get("cache", {})
    metric(
        "repro_service_cache_hit_rate",
        "gauge",
        "Service result-cache hit rate.",
        [_line("repro_service_cache_hit_rate", round(cache.get("hit_rate", 0.0), 6))],
    )
    lanes = service_stats.get("lanes", {})
    metric(
        "repro_service_lane_workers",
        "gauge",
        "Live worker threads per backend lane.",
        [
            _line("repro_service_lane_workers", lane.get("workers", 0), {"lane": name})
            for name, lane in sorted(lanes.items())
        ],
    )
    metric(
        "repro_service_lane_queue_depth",
        "gauge",
        "Queued requests per backend lane.",
        [
            _line(
                "repro_service_lane_queue_depth", lane.get("queue_depth", 0), {"lane": name}
            )
            for name, lane in sorted(lanes.items())
        ],
    )
    profiling = service_stats.get("profiling", {})
    if profiling.get("enabled"):
        counters = profiling.get("counters", {})
        metric(
            "repro_service_hotpath_seconds_total",
            "counter",
            "Wall time spent per profiled pass / kernel (requires --profile).",
            [
                _line(
                    "repro_service_hotpath_seconds_total",
                    round(entry.get("total_seconds", 0.0), 6),
                    {"site": name},
                )
                for name, entry in sorted(counters.items())
            ],
        )
        metric(
            "repro_service_hotpath_calls_total",
            "counter",
            "Invocations per profiled pass / kernel (requires --profile).",
            [
                _line(
                    "repro_service_hotpath_calls_total",
                    entry.get("calls", 0),
                    {"site": name},
                )
                for name, entry in sorted(counters.items())
            ],
        )
        metric(
            "repro_service_hotpath_items_total",
            "counter",
            "Work items (gates, circuits) processed per profiled site.",
            [
                _line(
                    "repro_service_hotpath_items_total",
                    entry.get("items", 0),
                    {"site": name},
                )
                for name, entry in sorted(counters.items())
                if entry.get("items", 0)
            ],
        )
    if health is not None:
        metric(
            "repro_gateway_ready",
            "gauge",
            "1 while the gateway accepts new work, 0 while draining/stopped.",
            [_line("repro_gateway_ready", 1 if health.get("status") == "ok" else 0)],
        )
    for name, value in sorted((gateway_counters or {}).items()):
        metric(
            f"repro_gateway_{name}_total",
            "counter",
            f"Gateway counter: {name.replace('_', ' ')}.",
            [_line(f"repro_gateway_{name}_total", value)],
        )
    tenant_rows_served = []
    tenant_rows_limited = []
    for name, entry in sorted((tenant_stats or {}).items()):
        tenant_rows_served.append(
            _line("repro_gateway_tenant_served_total", entry["served"], {"tenant": name})
        )
        tenant_rows_limited.append(
            _line(
                "repro_gateway_tenant_rate_limited_total",
                entry["rate_limited"],
                {"tenant": name},
            )
        )
    metric(
        "repro_gateway_tenant_served_total",
        "counter",
        "Accepted compile submissions per tenant.",
        tenant_rows_served,
    )
    metric(
        "repro_gateway_tenant_rate_limited_total",
        "counter",
        "429 responses per tenant.",
        tenant_rows_limited,
    )
    if latency is not None:
        rows = []
        for label, entry in sorted(latency.summary().items()):
            for q_name, q_value in (("0.5", entry["p50_seconds"]), ("0.95", entry["p95_seconds"])):
                rows.append(
                    _line(
                        "repro_gateway_request_latency_quantile_seconds",
                        round(q_value, 6),
                        {"label": label, "quantile": q_name},
                    )
                )
        metric(
            "repro_gateway_request_latency_quantile_seconds",
            "gauge",
            "Recent request latency quantiles per tenant / priority class "
            "(windowed; not aggregatable — prefer the histogram).",
            rows,
        )
        # The aggregatable view: cumulative histogram buckets a scrape stack
        # can sum across gateway instances and re-quantile server-side.
        hist_rows = []
        for label, entry in sorted(latency.histogram().items()):
            for bound, count in entry["buckets"]:
                le = "+Inf" if math.isinf(bound) else format(bound, "g")
                hist_rows.append(
                    _line(
                        "repro_gateway_request_latency_seconds_bucket",
                        count,
                        {"label": label, "le": le},
                    )
                )
            hist_rows.append(
                _line(
                    "repro_gateway_request_latency_seconds_sum",
                    round(entry["sum"], 6),
                    {"label": label},
                )
            )
            hist_rows.append(
                _line(
                    "repro_gateway_request_latency_seconds_count",
                    entry["count"],
                    {"label": label},
                )
            )
        metric(
            "repro_gateway_request_latency_seconds",
            "histogram",
            "Request latency per tenant / priority class (cumulative buckets).",
            hist_rows,
        )
    return "\n".join(lines) + "\n"
