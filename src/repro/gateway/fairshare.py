"""Weighted fair-share scheduling: tenant weights → service priorities.

The compile service already schedules strictly by integer ``priority=``
(higher first, FIFO within a priority).  That is exactly the hook a gateway
needs for multi-tenant fairness: assign every request a priority that encodes
*how far ahead of its fair share* the tenant is, and the service's priority
queues do the rest — one hot tenant queues behind everyone it has already
out-consumed instead of starving them.

The algorithm is stride scheduling (virtual-time weighted fair queueing):

* each tenant owns a **virtual time** that advances by ``1 / weight`` per
  request — heavy (high-weight) tenants advance slowly, so they are allowed
  proportionally more requests before falling behind;
* a request's priority is the *negated* virtual time at submission (scaled to
  an integer), so the tenant with the lowest virtual time — the one furthest
  *below* its fair share — always runs first on a saturated lane;
* the **system virtual clock** (the floor) advances only as requests
  *complete* (:meth:`FairShareScheduler.complete`), and an idle or new
  tenant's virtual time is lifted to it on arrival.  Sitting out therefore
  banks no credit — but a newcomer still overtakes a hot tenant's queued
  backlog, because queued-not-served work has not advanced the clock.

Clients may still send a small per-request ``priority`` hint (clamped to the
tenant's ``max_priority``); it nudges ordering between nearly-tied requests
but cannot overcome a whole-share deficit, because one fair-share step is
:data:`FairShareScheduler.RESOLUTION` priority units.
"""

from __future__ import annotations

import threading

__all__ = ["FairShareScheduler"]


class FairShareScheduler:
    """Maps (tenant, weight) onto the compile service's integer priorities."""

    #: priority units per unit of virtual time; one weight-1 request costs
    #: exactly this many units, and hints are clamped well below it
    RESOLUTION = 1000

    def __init__(self):
        self._vtimes: dict[str, float] = {}
        self._requests: dict[str, int] = {}
        self._floor = 0.0
        self._lock = threading.Lock()

    def next_ticket(self, tenant: str, weight: float = 1.0, hint: int = 0) -> tuple:
        """Charge one request to ``tenant``; returns ``(priority, vtime)``.

        ``priority`` goes to the service; ``vtime`` must be handed back to
        :meth:`complete` when the request resolves, advancing the system
        clock.  ``hint`` is added verbatim (callers clamp it to the tenant's
        cap); it is worth less than one fair-share step by construction.
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        with self._lock:
            vtime = max(self._vtimes.get(tenant, self._floor), self._floor)
            self._vtimes[tenant] = vtime + 1.0 / weight
            self._requests[tenant] = self._requests.get(tenant, 0) + 1
            return -round(vtime * self.RESOLUTION) + int(hint), vtime

    def next_priority(self, tenant: str, weight: float = 1.0, hint: int = 0) -> int:
        """:meth:`next_ticket` for callers that do not feed completions back."""
        return self.next_ticket(tenant, weight, hint=hint)[0]

    def complete(self, vtime: float) -> None:
        """Advance the system virtual clock past one completed request."""
        with self._lock:
            if vtime > self._floor:
                self._floor = vtime

    def stats(self) -> dict:
        """Per-tenant virtual time / request counters (for ``/v1/stats``)."""
        with self._lock:
            return {
                "floor": self._floor,
                "tenants": {
                    name: {
                        "virtual_time": self._vtimes[name],
                        "requests": self._requests.get(name, 0),
                        "behind_fair_share": self._vtimes[name] - self._floor,
                    }
                    for name in self._vtimes
                },
            }
