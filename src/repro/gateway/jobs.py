"""Gateway job bookkeeping: id'd requests, lifecycle events, SSE plumbing.

Every HTTP compilation — synchronous or not — becomes a :class:`Job`: an
unguessable id a tenant can poll (``GET /v1/jobs/<id>``), fetch the result of
(``/result``) and stream progress from (``/events``).  The :class:`JobStore`
owns them: tenant-scoped lookup (a tenant can only see its own jobs), bounded
retention of finished jobs, and a per-job condition variable that wakes
server-sent-event streams the moment a new lifecycle event lands.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.result import CompilationResult

__all__ = ["Job", "JobStore"]

#: terminal job state
DONE = "done"


class Job:
    """One gateway compilation request and its lifecycle event log."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        backend: str,
        future: Future,
        *,
        mode: str = "sync",
        priority: int = 0,
        deadline: float | None = None,
        circuit_name: str = "",
        trace_id: "str | None" = None,
    ):
        self.id = job_id
        self.tenant = tenant
        self.backend = backend
        self.future = future
        self.mode = mode
        self.priority = priority
        self.deadline = deadline
        self.circuit_name = circuit_name
        #: the request's trace id (echoed on responses, key into /trace)
        self.trace_id = trace_id
        #: the finished span tree (set by the gateway's done callback; the
        #: ``GET /v1/jobs/<id>/trace`` payload)
        self.trace: "dict | None" = None
        #: wall-clock stamps for display (API payloads, dashboards) only
        self.created_at = time.time()
        self.finished_at: float | None = None
        #: monotonic stamps for *measuring*: an NTP step between creation and
        #: completion must not produce negative or wildly skewed latencies
        self.created_monotonic = time.monotonic()
        self.finished_monotonic: float | None = None
        self.state = "queued"
        self.result: "CompilationResult | None" = None
        self._events: list[dict] = []
        self._cond = threading.Condition()
        self.record("queued", {"backend": backend, "priority": priority})

    # -- event log ---------------------------------------------------------------------

    def record(self, event: str, data: "dict | None" = None) -> None:
        """Append one lifecycle event and wake any SSE stream waiting on it."""
        with self._cond:
            if self.state == DONE and event != DONE:
                return  # late/racing transition after completion: ignore
            self.state = "running" if event == "started" else self.state
            if event == DONE:
                self.state = DONE
                self.finished_at = time.time()
                self.finished_monotonic = time.monotonic()
            self._events.append(
                {"event": event, "time": time.time(), "data": data or {}}
            )
            self._cond.notify_all()

    def finish(self, result: "CompilationResult") -> None:
        """Mark the job done exactly once (idempotent across racing callers)."""
        with self._cond:
            if self.state == DONE:
                return
            self.result = result
        self.record(
            DONE,
            {
                "succeeded": result.succeeded,
                "error": result.error,
                "deadline_exceeded": bool(result.metadata.get("deadline_exceeded")),
                "cached": bool(result.metadata.get("cached")),
            },
        )

    def events_since(self, index: int, timeout: float | None = None) -> list[dict]:
        """Events after ``index``; blocks up to ``timeout`` for a new one.

        Returns an empty list on timeout (SSE streams emit a keepalive and
        wait again) — and immediately once the job is done and the log is
        exhausted.
        """
        with self._cond:
            if index >= len(self._events) and self.state != DONE:
                self._cond.wait(timeout)
            return self._events[index:]

    @property
    def done(self) -> bool:
        return self.state == DONE

    def elapsed(self) -> float:
        """Seconds from creation to completion (or to now, if unfinished).

        Measured on the monotonic clock — ``created_at``/``finished_at`` are
        wall-clock display stamps whose difference is wrong across an NTP
        step, which is exactly what latency metrics must not inherit.
        """
        end = self.finished_monotonic
        if end is None:
            end = time.monotonic()
        return end - self.created_monotonic

    def describe(self) -> dict:
        """The ``GET /v1/jobs/<id>`` JSON view."""
        with self._cond:
            events = list(self._events)
            state = self.state
            finished_at = self.finished_at
        payload = {
            "job_id": self.id,
            "tenant": self.tenant,
            "backend": self.backend,
            "circuit": self.circuit_name,
            "mode": self.mode,
            "trace_id": self.trace_id,
            "state": state,
            "priority": self.priority,
            "deadline": self.deadline,
            "created_at": self.created_at,
            "finished_at": finished_at,
            "events": events,
        }
        if finished_at is not None:
            # Monotonic measurement; the wall-clock stamps above stay for
            # display, but their difference is not a duration.
            payload["wall_seconds"] = self.elapsed()
        return payload


class JobStore:
    """Thread-safe registry of jobs with bounded finished-job retention."""

    def __init__(self, max_finished: int = 1024):
        self.max_finished = max(1, max_finished)
        self._jobs: dict[str, Job] = {}
        #: finished job ids in completion order (retention ring)
        self._finished: list[str] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def create(
        self,
        tenant: str,
        backend: str,
        future: Future,
        **kwargs,
    ) -> Job:
        # Counter for ordering/debuggability, token for unguessability: job
        # ids are capability-ish (knowing one shortcuts tenant scoping only
        # for your own jobs — lookups still check the tenant).
        job_id = f"job-{next(self._ids)}-{secrets.token_hex(4)}"
        job = Job(job_id, tenant, backend, future, **kwargs)
        with self._lock:
            self._jobs[job_id] = job
        return job

    def get(self, job_id: str, tenant: "str | None" = None) -> "Job | None":
        """Look up a job; non-admin callers only see their own tenant's jobs."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return None
        if tenant is not None and job.tenant != tenant:
            return None  # indistinguishable from absent: no existence oracle
        return job

    def mark_finished(self, job: Job) -> None:
        """Enter the retention ring; the oldest finished jobs are dropped."""
        with self._lock:
            self._finished.append(job.id)
            while len(self._finished) > self.max_finished:
                victim = self._finished.pop(0)
                self._jobs.pop(victim, None)

    def unfinished_count(self) -> int:
        with self._lock:
            return sum(1 for job in self._jobs.values() if not job.done)

    def stats(self) -> dict:
        with self._lock:
            return {
                "tracked": len(self._jobs),
                "finished_retained": len(self._finished),
                "unfinished": sum(1 for job in self._jobs.values() if not job.done),
                "max_finished": self.max_finished,
            }
