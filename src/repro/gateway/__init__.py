"""HTTP/JSON gateway: the multi-tenant public surface over the compile service.

Everything before this package speaks Python (``repro.compile``) or the
pickle RPC protocol (``repro.service``).  The gateway turns one
:class:`~repro.service.CompileService` into something any HTTP client can
use — QASM in, compiled QASM + metrics out — with production tenancy
built in:

* **Endpoints** — ``POST /v1/compile`` (sync or ``mode=async``),
  ``GET /v1/jobs/<id>`` / ``/result`` / ``/events`` (server-sent progress) /
  ``/trace`` (the request's span tree), ``GET /v1/stats``, ``GET /metrics``
  (Prometheus), ``GET /dashboard`` (self-contained live ops page),
  ``GET /healthz``, ``POST /admin/drain``.
* **Observability** — every request carries one trace id end to end
  (``X-Repro-Trace-Id`` honoured inbound, echoed on every response), spans
  from the gateway through the service's queues down to individual pipeline
  stages, a bounded slow-request log, latency histograms, and optional
  trace-stamped JSON logging (``--json-logs``).
* **Tenancy** — API-key auth from a JSON keyfile, per-tenant token-bucket
  rate limits (429 + ``Retry-After``), and weighted fair-share scheduling
  mapped onto the service's ``priority=`` metadata so one hot tenant cannot
  starve the rest.
* **Zero dependencies** — stdlib ``http.server`` / ``urllib`` only; runs
  anywhere the package runs.

Quickstart::

    from repro.service import CompileService
    from repro.gateway import GatewayClient, GatewayServer, Tenant

    with CompileService() as service:
        with GatewayServer(service, tenants=[Tenant("alice", "alice-key")]) as gw:
            client = GatewayClient(gw.url, api_key="alice-key")
            result = client.compile(circuit, backend="qiskit-o3")

Or standalone: ``python -m repro.gateway --port 8080 --keys tenants.json``.
"""

from __future__ import annotations

from .auth import AuthError, RateLimited, Tenant, TenantRegistry, TokenBucket
from .client import GatewayClient, GatewayError
from .fairshare import FairShareScheduler
from .jobs import Job, JobStore
from .metrics import LatencyWindow, StatsSampler, render_prometheus
from .server import GatewayServer

__all__ = [
    "AuthError",
    "FairShareScheduler",
    "GatewayClient",
    "GatewayError",
    "GatewayServer",
    "Job",
    "JobStore",
    "LatencyWindow",
    "RateLimited",
    "StatsSampler",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "render_prometheus",
]
