"""The ``GET /dashboard`` page: a self-contained live ops view.

One HTML document, zero external assets — styles and scripts are inline and
charts are drawn on ``<canvas>`` elements, so the page works from an
air-gapped deployment and never phones out.  The JS polls ``/v1/stats``
(same-origin, with the API key the operator pastes into the header field —
kept in ``localStorage``) every couple of seconds and renders:

* stat tiles: queue depth, in-flight, cache hit rate, lane workers, gateway
  state;
* sparklines over the :class:`~repro.gateway.metrics.StatsSampler` ring
  buffer (queue depth, cache hit rate, total lane workers);
* the per-tenant / per-priority latency table (count, p50, p95, mean);
* the slow-request table from the gateway's
  :class:`~repro.obs.SlowRequestLog`, expandable to each trace's span
  breakdown.

The page is deliberately dumb: every number it shows comes verbatim from
``/v1/stats``, so anything visible here is equally available to ``curl``.
"""

from __future__ import annotations

__all__ = ["render_dashboard"]

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro gateway dashboard</title>
<style>
  :root { --bg:#11151c; --panel:#1a2029; --line:#2a3342; --fg:#d7dde7;
          --dim:#8a94a6; --accent:#4cc38a; --warn:#e5a50a; --bad:#e05561; }
  * { box-sizing: border-box; }
  body { margin:0; background:var(--bg); color:var(--fg);
         font:14px/1.45 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace; }
  header { display:flex; gap:12px; align-items:center; padding:10px 16px;
           border-bottom:1px solid var(--line); flex-wrap:wrap; }
  header h1 { font-size:15px; margin:0; font-weight:600; }
  header .state { padding:2px 8px; border-radius:4px; background:var(--panel); }
  header .state.ok { color:var(--accent); }
  header .state.bad { color:var(--bad); }
  header input { background:var(--panel); color:var(--fg); border:1px solid var(--line);
                 border-radius:4px; padding:4px 8px; width:180px; }
  header .err { color:var(--bad); }
  main { padding:16px; display:grid; gap:16px; max-width:1100px; margin:0 auto; }
  .tiles { display:grid; grid-template-columns:repeat(auto-fit, minmax(150px, 1fr)); gap:10px; }
  .tile { background:var(--panel); border:1px solid var(--line); border-radius:6px; padding:10px 12px; }
  .tile .v { font-size:22px; font-weight:600; }
  .tile .k { color:var(--dim); font-size:12px; }
  .panel { background:var(--panel); border:1px solid var(--line); border-radius:6px; padding:12px; }
  .panel h2 { margin:0 0 8px; font-size:13px; color:var(--dim); font-weight:600;
              text-transform:uppercase; letter-spacing:.05em; }
  .charts { display:grid; grid-template-columns:repeat(auto-fit, minmax(280px, 1fr)); gap:16px; }
  canvas { width:100%; height:80px; display:block; }
  table { width:100%; border-collapse:collapse; font-size:13px; }
  th, td { text-align:left; padding:4px 8px; border-bottom:1px solid var(--line); }
  th { color:var(--dim); font-weight:600; }
  td.num, th.num { text-align:right; font-variant-numeric:tabular-nums; }
  tr.slow-row { cursor:pointer; }
  tr.slow-row:hover td { background:#202837; }
  td .bar { display:inline-block; height:9px; background:var(--accent);
            border-radius:2px; vertical-align:middle; margin-right:6px; }
  .breakdown td { color:var(--dim); border-bottom:none; padding:1px 8px; }
  .muted { color:var(--dim); }
</style>
</head>
<body>
<header>
  <h1>repro gateway</h1>
  <span id="state" class="state">connecting&hellip;</span>
  <span class="muted">poll <span id="age">-</span></span>
  <span style="flex:1"></span>
  <label class="muted" for="key">API key</label>
  <input id="key" type="password" placeholder="X-API-Key" autocomplete="off">
  <span id="err" class="err"></span>
</header>
<main>
  <div class="tiles" id="tiles"></div>
  <div class="charts">
    <div class="panel"><h2>queue depth</h2><canvas id="c-queue"></canvas></div>
    <div class="panel"><h2>cache hit rate</h2><canvas id="c-hit"></canvas></div>
    <div class="panel"><h2>lane workers</h2><canvas id="c-workers"></canvas></div>
  </div>
  <div class="panel" id="shards-panel" style="display:none"><h2>cache shards</h2>
    <table id="shards"><thead><tr>
      <th>shard</th><th>state</th><th class="num">entries</th><th class="num">hits</th>
      <th class="num">misses</th><th class="num">timeouts</th><th class="num">reconnects</th>
    </tr></thead><tbody></tbody></table>
  </div>
  <div class="panel" id="peers-panel" style="display:none"><h2>cluster peers</h2>
    <table id="peers"><thead><tr>
      <th>peer</th><th>state</th><th class="num">backlog</th><th class="num">forwarded</th>
      <th class="num">rescued</th><th class="num">errors</th>
    </tr></thead><tbody></tbody></table>
  </div>
  <div class="panel"><h2>latency by label</h2>
    <table id="latency"><thead><tr>
      <th>label</th><th class="num">count</th><th class="num">p50</th>
      <th class="num">p95</th><th class="num">mean</th>
    </tr></thead><tbody></tbody></table>
  </div>
  <div class="panel"><h2>slowest requests <span class="muted">(click a row for its span breakdown)</span></h2>
    <table id="slow"><thead><tr>
      <th>trace</th><th>tenant</th><th>backend</th><th>status</th><th class="num">seconds</th>
    </tr></thead><tbody></tbody></table>
  </div>
</main>
<script>
"use strict";
const POLL_MS = 2000;
const $ = (id) => document.getElementById(id);
const keyInput = $("key");
keyInput.value = localStorage.getItem("repro-api-key") || "";
keyInput.addEventListener("change", () => {
  localStorage.setItem("repro-api-key", keyInput.value);
  poll();
});

function fmtSecs(s) {
  if (s == null) return "-";
  if (s < 0.001) return (s * 1e6).toFixed(0) + "us";
  if (s < 1) return (s * 1e3).toFixed(1) + "ms";
  return s.toFixed(2) + "s";
}

function tile(k, v) {
  return '<div class="tile"><div class="v">' + v + '</div><div class="k">' + k + "</div></div>";
}

function esc(text) {
  const div = document.createElement("div");
  div.textContent = String(text);
  return div.innerHTML;
}

function sparkline(canvas, values, color) {
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth || 280, h = canvas.clientHeight || 80;
  canvas.width = w * dpr; canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, w, h);
  if (!values.length) { return; }
  const max = Math.max(1e-9, ...values), pad = 4;
  ctx.beginPath();
  values.forEach((v, i) => {
    const x = pad + (w - 2 * pad) * (values.length === 1 ? 1 : i / (values.length - 1));
    const y = h - pad - (h - 2 * pad) * (v / max);
    i === 0 ? ctx.moveTo(x, y) : ctx.lineTo(x, y);
  });
  ctx.strokeStyle = color; ctx.lineWidth = 1.5; ctx.stroke();
  ctx.fillStyle = color; ctx.globalAlpha = 0.15;
  ctx.lineTo(w - pad, h - pad); ctx.lineTo(pad, h - pad); ctx.closePath(); ctx.fill();
  ctx.globalAlpha = 1;
  ctx.fillStyle = "#8a94a6"; ctx.font = "11px monospace";
  ctx.fillText(String(+values[values.length - 1].toFixed(3)), 6, 12);
}

function render(stats) {
  const gw = stats.gateway || {}, svc = stats.service || {};
  const series = stats.timeseries || [];
  const state = $("state");
  state.textContent = gw.status || "?";
  state.className = "state " + (gw.status === "ok" ? "ok" : "bad");
  const lanes = svc.lanes || {};
  const workers = Object.values(lanes).reduce((a, l) => a + (l.workers || 0), 0);
  const hitRate = ((svc.cache || {}).hit_rate || 0);
  let tiles =
    tile("queue depth", svc.queue_depth ?? "-") +
    tile("in flight", svc.in_flight ?? "-") +
    tile("cache hit rate", (hitRate * 100).toFixed(1) + "%") +
    tile("lane workers", workers + " / " + Object.keys(lanes).length + " lanes") +
    tile("submitted", svc.submitted ?? "-") +
    tile("failed", svc.failed ?? "-");
  const cache = svc.cache || {};
  if (cache.sharded) {
    const up = (cache.shard_count || 0) - (cache.shards_down || 0);
    tiles += tile("cache shards up", up + " / " + (cache.shard_count || 0));
  }
  const fwd = svc.forwarding;
  if (fwd) {
    tiles += tile("forwarded to peers", (fwd.forwarded ?? 0) + " (" + (fwd.outstanding ?? 0) + " live)");
  }
  $("tiles").innerHTML = tiles;
  renderShards(cache);
  renderPeers(fwd);
  sparkline($("c-queue"), series.map(p => p.queue_depth || 0), "#e5a50a");
  sparkline($("c-hit"), series.map(p => p.cache_hit_rate || 0), "#4cc38a");
  sparkline($("c-workers"), series.map(p =>
    Object.values(p.lane_workers || {}).reduce((a, v) => a + v, 0)), "#6f9df7");
  const latRows = Object.entries(gw.latency || {}).sort().map(([label, e]) =>
    "<tr><td>" + esc(label) + '</td><td class="num">' + e.count +
    '</td><td class="num">' + fmtSecs(e.p50_seconds) +
    '</td><td class="num">' + fmtSecs(e.p95_seconds) +
    '</td><td class="num">' + fmtSecs(e.mean_seconds) + "</td></tr>").join("");
  $("latency").querySelector("tbody").innerHTML =
    latRows || '<tr><td colspan="5" class="muted">no requests yet</td></tr>';
  renderSlow(gw.slow_requests || []);
}

function renderShards(cache) {
  const panel = $("shards-panel");
  if (!cache.sharded || !(cache.shards || []).length) { panel.style.display = "none"; return; }
  panel.style.display = "";
  $("shards").querySelector("tbody").innerHTML = cache.shards.map(s =>
    "<tr><td>" + esc(s.shard) + "</td><td>" +
    (s.down ? '<span class="err">down</span>' : "up") +
    '</td><td class="num">' + (s.entries ?? "-") +
    '</td><td class="num">' + (s.hits ?? "-") +
    '</td><td class="num">' + (s.misses ?? "-") +
    '</td><td class="num">' + (s.timeouts ?? 0) +
    '</td><td class="num">' + (s.reconnects ?? 0) + "</td></tr>").join("");
}

function renderPeers(fwd) {
  const panel = $("peers-panel");
  if (!fwd || !(fwd.peers || []).length) { panel.style.display = "none"; return; }
  panel.style.display = "";
  $("peers").querySelector("tbody").innerHTML = fwd.peers.map(p =>
    "<tr><td>" + esc(p.peer) + "</td><td>" +
    (p.down ? '<span class="err">down</span>' : (p.ready ? "ready" : "draining")) +
    '</td><td class="num">' + (p.backlog ?? "-") +
    '</td><td class="num">' + (p.forwarded ?? 0) +
    '</td><td class="num">' + (p.rescued ?? 0) +
    '</td><td class="num">' + (p.errors ?? 0) + "</td></tr>").join("");
}

const openTraces = new Set();
function renderSlow(entries) {
  const body = $("slow").querySelector("tbody");
  if (!entries.length) {
    body.innerHTML = '<tr><td colspan="5" class="muted">no completed requests yet</td></tr>';
    return;
  }
  const maxSecs = Math.max(1e-9, ...entries.map(e => e.seconds));
  body.innerHTML = entries.map(e => {
    const id = esc(e.trace_id);
    let rows = '<tr class="slow-row" data-trace="' + id + '"><td>' + id.slice(0, 12) +
      "&hellip;</td><td>" + esc(e.tenant || "-") + "</td><td>" + esc(e.backend || "-") +
      "</td><td>" + esc(e.status) + '</td><td class="num"><span class="bar" style="width:' +
      Math.round(60 * e.seconds / maxSecs) + 'px"></span>' + fmtSecs(e.seconds) + "</td></tr>";
    if (openTraces.has(e.trace_id)) {
      rows += (e.breakdown || []).map(s =>
        '<tr class="breakdown"><td colspan="4" style="padding-left:' +
        (16 + 14 * s.depth) + 'px">' + esc(s.name) +
        (s.status !== "ok" ? ' <span class="err">[' + esc(s.status) + "]</span>" : "") +
        '</td><td class="num">' + fmtSecs(s.duration) + "</td></tr>").join("");
    }
    return rows;
  }).join("");
  body.querySelectorAll("tr.slow-row").forEach(row => {
    row.addEventListener("click", () => {
      const id = row.dataset.trace;
      openTraces.has(id) ? openTraces.delete(id) : openTraces.add(id);
      renderSlow(entries);
    });
  });
}

let lastOk = null;
async function poll() {
  const headers = {};
  if (keyInput.value) headers["X-API-Key"] = keyInput.value;
  try {
    const resp = await fetch("/v1/stats", { headers });
    if (!resp.ok) {
      $("err").textContent = "stats: HTTP " + resp.status +
        (resp.status === 401 ? " (set the API key)" : "");
      return;
    }
    $("err").textContent = "";
    lastOk = Date.now();
    render(await resp.json());
  } catch (e) {
    $("err").textContent = "stats: " + e;
  }
}
setInterval(() => {
  $("age").textContent = lastOk ? ((Date.now() - lastOk) / 1000).toFixed(0) + "s ago" : "-";
}, 500);
setInterval(poll, POLL_MS);
poll();
</script>
</body>
</html>
"""


def render_dashboard() -> str:
    """The dashboard HTML document (static; all liveness is client-side JS)."""
    return _PAGE
