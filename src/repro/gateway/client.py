""":class:`GatewayClient` — a stdlib HTTP client for the gateway.

Used by the tests, benchmarks and examples, and a reasonable starting point
for real non-Python clients (every call is one plain HTTP request; the wire
format is documented by example in the README).  Only ``urllib.request`` is
used — no third-party HTTP stack::

    client = GatewayClient("http://127.0.0.1:8080", api_key="alice-key")
    result = client.compile(circuit, backend="qiskit-o3", device="ibmq_washington")
    print(result.reward, result.wall_time)

    job_id = client.submit(circuit, backend="tket-o2")       # async
    for event in client.events(job_id):                       # SSE progress
        print(event["event"])
    result = client.result(job_id)
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import TYPE_CHECKING

from ..api.result import CompilationResult
from ..circuit.qasm import to_qasm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..circuit.circuit import QuantumCircuit

__all__ = ["GatewayClient", "GatewayError"]


class GatewayError(Exception):
    """A non-2xx gateway response, carrying the structured error payload."""

    def __init__(self, status: int, error_type: str, message: str, retry_after=None):
        self.status = status
        self.error_type = error_type
        #: seconds to wait before retrying (from ``Retry-After``, 429s only)
        self.retry_after = retry_after
        super().__init__(f"HTTP {status} [{error_type}]: {message}")


class GatewayClient:
    """Talk to a :class:`~repro.gateway.GatewayServer` over HTTP."""

    def __init__(self, base_url: str, *, api_key: "str | None" = None, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.api_key = api_key
        self.timeout = timeout

    # -- low-level ---------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: "dict | None" = None,
        *,
        timeout: "float | None" = None,
        raw: bool = False,
        trace_id: "str | None" = None,
    ):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        request.add_header("Content-Type", "application/json")
        if self.api_key:
            request.add_header("X-API-Key", self.api_key)
        if trace_id:
            request.add_header("X-Repro-Trace-Id", trace_id)
        try:
            with urllib.request.urlopen(request, timeout=timeout or self.timeout) as response:
                payload = response.read()
                return payload.decode() if raw else json.loads(payload)
        except urllib.error.HTTPError as exc:
            raise self._to_error(exc) from None

    @staticmethod
    def _to_error(exc: urllib.error.HTTPError) -> GatewayError:
        retry_after = exc.headers.get("Retry-After") if exc.headers else None
        try:
            detail = json.loads(exc.read()).get("error", {})
        except Exception:  # noqa: BLE001 - non-JSON error bodies still surface
            detail = {}
        return GatewayError(
            exc.code,
            detail.get("type", "http_error"),
            detail.get("message", str(exc)),
            retry_after=float(retry_after) if retry_after else None,
        )

    @staticmethod
    def _payload(
        circuit, backend, device, objective, seed, priority, deadline, name,
        pass_overrides=None,
    ) -> dict:
        qasm = circuit if isinstance(circuit, str) else to_qasm(circuit)
        payload = {
            "qasm": qasm,
            "backend": backend,
            "objective": objective,
            "seed": seed,
            "priority": priority,
        }
        if device is not None:
            payload["device"] = device
        if deadline is not None:
            payload["deadline"] = deadline
        if pass_overrides:
            payload["pass_overrides"] = pass_overrides
        if name:
            payload["name"] = name
        elif not isinstance(circuit, str):
            payload["name"] = circuit.name
        return payload

    # -- compile -----------------------------------------------------------------------

    def compile(
        self,
        circuit: "QuantumCircuit | str",
        backend: str = "qiskit-o3",
        *,
        device: "str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: "float | None" = None,
        name: str = "",
        timeout: "float | None" = None,
        pass_overrides: "dict | None" = None,
        trace_id: "str | None" = None,
    ) -> CompilationResult:
        """Synchronous compile: blocks until done, returns the result.

        ``circuit`` may be a :class:`~repro.circuit.QuantumCircuit` or a raw
        OpenQASM 2 string.  If the gateway's synchronous window elapses first
        (HTTP 202), the client transparently polls the job to completion.
        ``pass_overrides`` maps stage names to registered pass names (see
        :meth:`passes` for the catalog).  ``trace_id`` rides as
        ``X-Repro-Trace-Id`` so the request joins a trace the caller owns
        (fetch the finished span tree with :meth:`trace`).
        """
        payload = self._payload(
            circuit, backend, device, objective, seed, priority, deadline, name,
            pass_overrides,
        )
        if timeout is not None:
            payload["timeout"] = timeout
        response = self._request(
            "POST", "/v1/compile", payload, timeout=(timeout or self.timeout) + 5,
            trace_id=trace_id,
        )
        if response.get("state") == "done":
            return CompilationResult.from_dict(response["result"])
        return self.result(response["job_id"], timeout=timeout)

    def submit(
        self,
        circuit: "QuantumCircuit | str",
        backend: str = "qiskit-o3",
        *,
        device: "str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: "float | None" = None,
        name: str = "",
        pass_overrides: "dict | None" = None,
        trace_id: "str | None" = None,
    ) -> str:
        """Asynchronous compile: returns the job id immediately.

        ``trace_id`` rides as ``X-Repro-Trace-Id`` (see :meth:`trace`).
        """
        payload = self._payload(
            circuit, backend, device, objective, seed, priority, deadline, name,
            pass_overrides,
        )
        response = self._request(
            "POST", "/v1/compile?mode=async", payload, trace_id=trace_id
        )
        return response["job_id"]

    # -- jobs --------------------------------------------------------------------------

    def job(self, job_id: str) -> dict:
        """Job status: state, priority, timestamps, lifecycle event log."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def trace(
        self, job_id: str, *, timeout: "float | None" = None, poll: float = 0.05
    ) -> dict:
        """The job's finished span tree, polling until the job completes.

        Returns the ``GET /v1/jobs/<id>/trace`` payload: ``{"job_id",
        "trace_id", "trace"}`` where ``trace`` is the nested span-tree dict
        rooted at the gateway's ``gateway.request`` span.
        """
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout)
        while True:
            response = self._request("GET", f"/v1/jobs/{job_id}/trace")
            if response.get("trace") is not None:
                return response
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {response.get('state')!r} after the timeout"
                )
            time.sleep(poll)

    def result(
        self, job_id: str, *, timeout: "float | None" = None, poll: float = 0.05
    ) -> CompilationResult:
        """Fetch a job's result, polling until it is done (or ``timeout``)."""
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout)
        while True:
            response = self._request("GET", f"/v1/jobs/{job_id}/result")
            if response.get("state") == "done":
                return CompilationResult.from_dict(response["result"])
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {response.get('state')!r} after the timeout"
                )
            time.sleep(poll)

    def events(self, job_id: str, *, timeout: "float | None" = None):
        """Stream a job's server-sent events; yields dicts until ``done``.

        Each yielded dict carries ``event`` (``queued``/``started``/``done``)
        plus the event's data fields.  The generator ends when the job
        completes or the server closes the stream.
        """
        request = urllib.request.Request(self.base_url + f"/v1/jobs/{job_id}/events")
        if self.api_key:
            request.add_header("X-API-Key", self.api_key)
        try:
            response = urllib.request.urlopen(request, timeout=timeout or self.timeout)
        except urllib.error.HTTPError as exc:
            raise self._to_error(exc) from None
        with response:
            event_type = None
            for raw in response:
                line = raw.decode().rstrip("\n")
                if line.startswith(":"):
                    continue  # keepalive comment
                if line.startswith("event:"):
                    event_type = line[6:].strip()
                elif line.startswith("data:"):
                    data = json.loads(line[5:].strip())
                    yield {"event": event_type, **data}
                    if event_type == "done":
                        return
                elif not line:
                    event_type = None

    # -- ops ---------------------------------------------------------------------------

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def passes(self, role: "str | None" = None) -> list:
        """The server's pass catalog — legal ``pass_overrides`` values.

        Each entry carries ``name`` / ``role`` / ``origin`` /
        ``requires_device``; ``role`` filters to one stage role
        (``synthesis`` / ``layout`` / ``routing`` / ``optimization`` /
        ``finalisation``).
        """
        path = "/v1/passes" + (f"?role={role}" if role else "")
        return self._request("GET", path)["passes"]

    def metrics(self) -> str:
        """The raw Prometheus exposition text."""
        return self._request("GET", "/metrics", raw=True)

    def dashboard(self) -> str:
        """The raw ``/dashboard`` HTML (self-contained; view it in a browser)."""
        return self._request("GET", "/dashboard", raw=True)

    def healthz(self) -> dict:
        """Health payload; never raises on 503 (draining is a valid answer)."""
        try:
            return self._request("GET", "/healthz")
        except GatewayError as exc:
            if exc.status == 503:
                # Re-fetch the body: _to_error consumed it into the message.
                request = urllib.request.Request(self.base_url + "/healthz")
                try:
                    with urllib.request.urlopen(request, timeout=self.timeout) as response:
                        return json.loads(response.read())
                except urllib.error.HTTPError as http_exc:
                    return json.loads(http_exc.read())
            raise

    def drain(self, grace: "float | None" = None) -> dict:
        """``POST /admin/drain`` (requires an admin tenant's key)."""
        body = {} if grace is None else {"grace": grace}
        return self._request("POST", "/admin/drain", body)
