"""Tenancy for the HTTP gateway: API keys, per-tenant rate limits.

A *tenant* is one paying (or at least accountable) consumer of the compile
service: a name, an API key, a fair-share ``weight``, and a token-bucket rate
limit.  The gateway authenticates every request against a
:class:`TenantRegistry` loaded from a JSON keyfile::

    {
      "tenants": [
        {"name": "alice", "key": "alice-key", "weight": 4, "rate": 50, "burst": 100},
        {"name": "ops",   "key": "ops-key",   "admin": true}
      ]
    }

``rate`` is requests/second refilled into a bucket of ``burst`` tokens;
omitting it leaves the tenant unlimited.  ``admin: true`` unlocks the
``/admin/*`` endpoints.  Everything here is stdlib-only and thread-safe —
handler threads of a ``ThreadingHTTPServer`` call into it concurrently.
"""

from __future__ import annotations

import hmac
import json
import math
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["AuthError", "RateLimited", "Tenant", "TenantRegistry", "TokenBucket"]


class AuthError(Exception):
    """The request carried no API key, or one that matches no tenant."""


class RateLimited(Exception):
    """The tenant's token bucket is empty; retry after :attr:`retry_after`."""

    def __init__(self, tenant: str, retry_after: float):
        self.tenant = tenant
        #: seconds until the bucket holds a token again (ceiling for headers)
        self.retry_after = max(retry_after, 0.001)
        super().__init__(
            f"tenant {tenant!r} is over its rate limit; "
            f"retry in {self.retry_after:.3f}s"
        )

    def header_value(self) -> str:
        """The ``Retry-After`` header (integer seconds, rounded up, >= 1)."""
        return str(max(1, math.ceil(self.retry_after)))


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    ``acquire()`` takes one token and returns 0.0, or returns the seconds
    until a token will be available (taking nothing).  ``rate=None`` means
    unlimited.  Thread-safe; time source injectable for tests.
    """

    def __init__(self, rate: float | None, burst: int = 1, clock=time.monotonic):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive or None, got {rate}")
        self.rate = rate
        self.burst = max(1, int(burst))
        self._clock = clock
        self._tokens = float(self.burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def acquire(self) -> float:
        if self.rate is None:
            return 0.0
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate

    def available(self) -> float:
        """Tokens currently in the bucket (refreshed; for stats only)."""
        if self.rate is None:
            return float("inf")
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            return self._tokens


@dataclass(frozen=True)
class Tenant:
    """One authenticated consumer of the gateway."""

    name: str
    key: str
    #: fair-share weight: a weight-4 tenant gets ~4x the slots of a weight-1
    #: tenant when both keep the service saturated
    weight: float = 1.0
    #: token-bucket refill in requests/second (``None`` = unlimited)
    rate: float | None = None
    #: token-bucket capacity (ignored when ``rate`` is None)
    burst: int = 10
    #: admins may call ``/admin/*`` endpoints (drain for rolling restarts)
    admin: bool = False
    #: upper bound for the per-request ``priority`` hint a client may send
    max_priority: int = 5

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.key:
            raise ValueError(f"tenant {self.name!r} needs a non-empty API key")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r} weight must be positive")


@dataclass
class _TenantState:
    tenant: Tenant
    bucket: TokenBucket
    #: request outcome counters (served/rate_limited), surfaced in stats
    served: int = 0
    rate_limited: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class TenantRegistry:
    """API-key lookup plus per-tenant rate limiting and counters."""

    def __init__(self, tenants: "list[Tenant] | None" = None):
        self._states: dict[str, _TenantState] = {}
        self._by_key: dict[str, str] = {}
        for tenant in tenants or []:
            self.add(tenant)

    def add(self, tenant: Tenant) -> None:
        if tenant.name in self._states:
            raise ValueError(f"duplicate tenant name {tenant.name!r}")
        if tenant.key in self._by_key:
            raise ValueError(
                f"tenant {tenant.name!r} reuses the API key of "
                f"{self._by_key[tenant.key]!r}"
            )
        self._states[tenant.name] = _TenantState(
            tenant, TokenBucket(tenant.rate, tenant.burst)
        )
        self._by_key[tenant.key] = tenant.name

    @classmethod
    def from_file(cls, path: "str | Path") -> "TenantRegistry":
        """Load a registry from a JSON keyfile (see the module docstring)."""
        payload = json.loads(Path(path).read_text())
        entries = payload.get("tenants") if isinstance(payload, dict) else payload
        if not isinstance(entries, list):
            raise ValueError(
                f"keyfile {path} must hold a list of tenants or "
                '{"tenants": [...]}'
            )
        tenants = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise ValueError(f"keyfile tenant entries must be objects, got {entry!r}")
            known = {"name", "key", "weight", "rate", "burst", "admin", "max_priority"}
            unknown = set(entry) - known
            if unknown:
                raise ValueError(
                    f"unknown keyfile fields {sorted(unknown)} for tenant "
                    f"{entry.get('name')!r}"
                )
            tenants.append(Tenant(**entry))
        if not tenants:
            raise ValueError(f"keyfile {path} declares no tenants")
        return cls(tenants)

    # -- request path ------------------------------------------------------------------

    def authenticate(self, key: "str | None") -> Tenant:
        """Resolve an API key to its tenant; raises :class:`AuthError`."""
        if not key:
            raise AuthError("missing API key (send X-API-Key or Authorization: Bearer)")
        for candidate, name in self._by_key.items():
            # Constant-time comparison: an attacker timing the lookup must not
            # learn key prefixes.
            if hmac.compare_digest(candidate, key):
                return self._states[name].tenant
        raise AuthError("unknown API key")

    def check_rate(self, tenant: Tenant) -> None:
        """Take one rate-limit token; raises :class:`RateLimited` when empty."""
        state = self._states[tenant.name]
        retry_after = state.bucket.acquire()
        with state.lock:
            if retry_after > 0.0:
                state.rate_limited += 1
            else:
                state.served += 1
        if retry_after > 0.0:
            raise RateLimited(tenant.name, retry_after)

    # -- introspection -----------------------------------------------------------------

    def tenants(self) -> list[Tenant]:
        return [state.tenant for state in self._states.values()]

    def get(self, name: str) -> "Tenant | None":
        state = self._states.get(name)
        return state.tenant if state else None

    def stats(self) -> dict:
        """Per-tenant counters for ``/v1/stats`` and the Prometheus endpoint."""
        out = {}
        for name, state in self._states.items():
            with state.lock:
                out[name] = {
                    "weight": state.tenant.weight,
                    "rate": state.tenant.rate,
                    "burst": state.tenant.burst,
                    "admin": state.tenant.admin,
                    "served": state.served,
                    "rate_limited": state.rate_limited,
                }
        return out
