"""``python -m repro.gateway`` — serve the HTTP/JSON gateway.

Runs a :class:`~repro.service.CompileService` and fronts it with a
:class:`~repro.gateway.GatewayServer`::

    $ python -m repro.gateway --port 8080 --keys tenants.json
    repro gateway listening on http://127.0.0.1:8080
    tenants: alice (weight 4), bob (weight 1), ops (admin)

    $ curl -s -X POST http://127.0.0.1:8080/v1/compile \\
        -H 'X-API-Key: alice-key' \\
        -d '{"qasm": "OPENQASM 2.0;\\nqreg q[2];\\ncreg c[2];\\nh q[0];\\ncx q[0],q[1];\\n"}'

Without ``--keys`` the gateway runs in **open mode** (no auth, one anonymous
admin tenant) — development only.  Ctrl-C triggers a graceful drain bounded
by ``--drain-grace`` before the process exits.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..service.service import CompileService
from .auth import TenantRegistry
from .server import GatewayServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Serve repro compilations over a multi-tenant HTTP/JSON gateway.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    parser.add_argument("--port", type=int, default=8080, help="port (0 = OS-assigned)")
    parser.add_argument(
        "--keys",
        default=None,
        help="JSON keyfile of tenants (name/key/weight/rate/burst/admin); "
        "omit for open mode (no auth — development only)",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=2,
        help="upper worker bound per backend lane of the embedded compile service",
    )
    parser.add_argument(
        "--min-workers", type=int, default=1, help="lower worker bound per backend lane"
    )
    parser.add_argument(
        "--process-backends",
        default="",
        help="comma-separated backend names to run on process lanes",
    )
    parser.add_argument(
        "--cache-size", type=int, default=4096, help="capacity of the service result cache"
    )
    parser.add_argument(
        "--cache-server",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="back the result cache by remote TCP cache server(s) — repeat "
        "for consistent-hash sharding (requires --cache-authkey-file)",
    )
    parser.add_argument(
        "--cache-authkey-file",
        default=None,
        metavar="PATH",
        help="file holding the hex-encoded cache-server secret",
    )
    parser.add_argument(
        "--sync-timeout",
        type=float,
        default=60.0,
        help="seconds a synchronous POST /v1/compile waits before returning 202",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        help="seconds between stats() ring-buffer samples (0 disables the sampler)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        help="seconds the shutdown drain waits for queued work before exiting anyway",
    )
    parser.add_argument(
        "--slow-requests",
        type=int,
        default=32,
        help="capacity of the slow-request log (top-N traces by duration, "
        "shown on /dashboard and in /v1/stats)",
    )
    parser.add_argument(
        "--json-logs",
        action="store_true",
        help="emit structured JSON logs on stderr (one object per line, "
        "stamped with the request's trace_id)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.json_logs:
        from ..obs import configure_json_logging

        configure_json_logging()
    registry = TenantRegistry.from_file(args.keys) if args.keys else None
    process_backends = tuple(
        name.strip() for name in args.process_backends.split(",") if name.strip()
    )
    store = None
    if args.cache_server:
        from pathlib import Path

        from ..service import ShardedCacheStore, SharedCacheStore

        if not args.cache_authkey_file:
            parser = _build_parser()
            parser.error("--cache-server requires --cache-authkey-file")
        authkey = bytes.fromhex(Path(args.cache_authkey_file).read_text().strip())
        shards = []
        for endpoint in args.cache_server:
            host, _, port = endpoint.rpartition(":")
            shards.append(SharedCacheStore((host, int(port)), authkey))
        store = shards[0] if len(shards) == 1 else ShardedCacheStore(shards)
    service = CompileService(
        store=store,
        process_backends=process_backends,
        max_workers=args.service_workers,
        min_workers=args.min_workers,
        cache_size=args.cache_size,
    )
    gateway = GatewayServer(
        service,
        tenants=registry,
        host=args.host,
        port=args.port,
        sync_timeout=args.sync_timeout,
        sample_interval=args.sample_interval,
        slow_requests=args.slow_requests,
    )
    print(f"repro gateway listening on {gateway.url}", flush=True)
    print(f"dashboard: {gateway.url}/dashboard", flush=True)
    if registry is None:
        print("open mode: no API keys configured (development only)", flush=True)
    else:
        described = ", ".join(
            f"{t.name} (weight {t.weight:g}{', admin' if t.admin else ''})"
            for t in registry.tenants()
        )
        print(f"tenants: {described}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        print("draining gateway ...", flush=True)
        gateway.begin_drain(args.drain_grace)
        deadline = time.monotonic() + args.drain_grace
        while gateway.state == "draining" and time.monotonic() < deadline:
            time.sleep(0.1)
        gateway.close()
        service.shutdown(drain=False)
        print(f"gateway stopped ({gateway.state})", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
