"""The HTTP/JSON gateway server (stdlib ``http.server``, no third-party deps).

:class:`GatewayServer` fronts one :class:`~repro.service.CompileService` with
a multi-tenant HTTP surface:

==========================  ========================================================
``POST /v1/compile``        QASM in; compile synchronously or (``mode=async``)
                            return a job id immediately
``GET /v1/jobs/<id>``       job status + lifecycle event log
``GET /v1/jobs/<id>/result``  the compiled QASM + metrics once done
``GET /v1/jobs/<id>/events``  server-sent events (``queued``/``started``/``done``)
``GET /v1/stats``           service + gateway + tenant + fair-share stats,
                            with the sampler's ring-buffer time series
``GET /metrics``            Prometheus text exposition
``GET /healthz``            readiness (200 while serving, 503 while draining)
``POST /admin/drain``       finish queued work, then report draining (rolling
                            restarts; admin tenants only)
==========================  ========================================================

Tenancy is enforced here, not in the service: API keys resolve to
:class:`~repro.gateway.auth.Tenant`\\ s, token buckets answer 429 +
``Retry-After`` when a tenant submits too fast, and the weighted fair-share
scheduler maps tenant weight onto the service's ``priority=`` metadata so a
hot tenant queues behind the share it has already consumed instead of
starving everyone else.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from ..circuit.qasm import QasmError, from_qasm
from ..obs import SlowRequestLog, Span, get_logger, new_trace_id, valid_trace_id
from .auth import AuthError, RateLimited, Tenant, TenantRegistry
from .dashboard import render_dashboard
from .fairshare import FairShareScheduler
from .jobs import JobStore
from .metrics import LatencyWindow, StatsSampler, render_prometheus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.service import CompileService

__all__ = ["GatewayServer"]

#: request bodies above this are refused with 413 (QASM text is small)
MAX_BODY_BYTES = 2 * 1024 * 1024

#: hard ceiling on one SSE stream's lifetime
MAX_STREAM_SECONDS = 600.0


class _HTTPError(Exception):
    """Internal: carries an HTTP status + JSON error payload to the handler."""

    def __init__(self, status: int, error_type: str, message: str, headers=None):
        self.status = status
        self.error_type = error_type
        self.message = message
        self.headers = headers or {}
        super().__init__(message)


class GatewayServer:
    """Multi-tenant HTTP/JSON front-end over one compile service.

    Parameters
    ----------
    service:
        The :class:`~repro.service.CompileService` to front.  The gateway
        does not own it — callers shut the service down after the gateway.
    tenants:
        A :class:`~repro.gateway.auth.TenantRegistry` (or list of
        :class:`~repro.gateway.auth.Tenant`).  ``None`` runs in **open mode**:
        no authentication, every request is the implicit ``anonymous`` admin
        tenant — convenient for development, never for production.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    sync_timeout:
        Seconds a synchronous ``POST /v1/compile`` waits before degrading to
        a 202 + job id response (the work keeps running).
    sample_interval:
        Seconds between ``stats()`` ring-buffer samples (0 disables the
        sampler thread; ``/v1/stats`` then shows only on-demand samples).
    slow_requests:
        Capacity of the slow-request log (top-N finished requests by
        duration, with span breakdowns — fed to ``/v1/stats`` and the
        ``/dashboard`` table).
    """

    def __init__(
        self,
        service: "CompileService",
        *,
        tenants: "TenantRegistry | list[Tenant] | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        sync_timeout: float = 60.0,
        sample_interval: float = 1.0,
        max_finished_jobs: int = 1024,
        slow_requests: int = 32,
        name: str = "repro-gateway",
    ):
        self.name = name
        self.service = service
        if tenants is None:
            self.registry = None
            self._anonymous = Tenant(name="anonymous", key="-", admin=True)
        elif isinstance(tenants, TenantRegistry):
            self.registry = tenants
        else:
            self.registry = TenantRegistry(list(tenants))
        self.fairshare = FairShareScheduler()
        self.jobs = JobStore(max_finished=max_finished_jobs)
        self.latency = LatencyWindow()
        self.slowlog = SlowRequestLog(slow_requests)
        self.log = get_logger("gateway")
        self.sync_timeout = sync_timeout
        self._future_jobs: dict = {}
        self._counters = {
            "http_requests": 0,
            "auth_failures": 0,
            "rate_limited": 0,
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "sse_streams": 0,
            "drain_requests": 0,
        }
        self._lock = threading.Lock()
        self._state = "ok"  # ok -> draining -> drained
        self._drain_thread: "threading.Thread | None" = None
        self.sampler = StatsSampler(service.stats, interval=sample_interval or 1.0)
        if sample_interval:
            self.sampler.start()
        service.add_observer(self._on_service_event)
        self._httpd = _GatewayHTTPServer((host, port), _Handler, gateway=self)
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"{name}-http",
            daemon=True,
        )
        self._serve_thread.start()

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` (the OS-assigned port when ``port=0``)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def begin_drain(self, grace: "float | None" = None) -> dict:
        """Refuse new compile work, finish queued work, report ``drained``.

        Returns immediately with the current drain status; a background
        thread waits (up to ``grace`` seconds, forever when ``None``) for the
        service to finish every accepted request, then flips the state to
        ``drained``.  Idempotent — repeated calls report progress.
        """
        with self._lock:
            if self._state == "ok":
                self._state = "draining"
                self._counters["drain_requests"] += 1
                started = True
            else:
                self._counters["drain_requests"] += 1
                started = False
        if started:
            self.service.set_draining(True)

            def _drain() -> None:
                completed = self.service.drain(timeout=grace)
                with self._lock:
                    self._state = "drained" if completed else self._state
                if not completed:
                    # Grace expired with work still pending: stay `draining`
                    # (healthz keeps failing; the operator decides what next).
                    pass

            self._drain_thread = threading.Thread(
                target=_drain, name=f"{self.name}-drain", daemon=True
            )
            self._drain_thread.start()
        return self.health()

    def close(self) -> None:
        """Stop the HTTP listener and sampler (the service is left running)."""
        self.sampler.stop()
        self.service.remove_observer(self._on_service_event)
        self._httpd.shutdown()
        self._httpd.server_close()
        self._serve_thread.join(timeout=5)

    def __enter__(self) -> "GatewayServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request handling (called from handler threads) --------------------------------

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def counters(self) -> dict:
        with self._lock:
            return dict(self._counters)

    def authenticate(self, api_key: "str | None") -> Tenant:
        if self.registry is None:
            return self._anonymous
        try:
            return self.registry.authenticate(api_key)
        except AuthError as exc:
            self.bump("auth_failures")
            raise _HTTPError(401, "auth_error", str(exc)) from None

    def check_rate(self, tenant: Tenant) -> None:
        if self.registry is None:
            return
        try:
            self.registry.check_rate(tenant)
        except RateLimited as exc:
            self.bump("rate_limited")
            raise _HTTPError(
                429,
                "rate_limited",
                str(exc),
                headers={"Retry-After": exc.header_value()},
            ) from None

    def submit(self, tenant: Tenant, payload: dict, mode: str, trace_id: "str | None" = None):
        """Validate one compile payload and enqueue it; returns the Job.

        ``trace_id`` continues an inbound trace (an ``X-Repro-Trace-Id``
        header the handler already validated); ``None`` mints a fresh id.
        Either way the request gets a ``gateway.request`` root span whose
        context rides to the service, and the finished tree is retrievable
        at ``GET /v1/jobs/<id>/trace``.
        """
        if self.state != "ok":
            raise _HTTPError(
                503, "draining", "gateway is draining; not accepting new work"
            )
        if not isinstance(payload, dict):
            raise _HTTPError(400, "bad_request", "request body must be a JSON object")
        qasm = payload.get("qasm")
        if not isinstance(qasm, str) or not qasm.strip():
            raise _HTTPError(400, "bad_request", "missing required field 'qasm'")
        try:
            circuit = from_qasm(qasm)
        except QasmError as exc:
            raise _HTTPError(400, "qasm_error", str(exc)) from None
        if payload.get("name"):
            circuit.name = str(payload["name"])
        backend = payload.get("backend", "qiskit-o3")
        pass_overrides = payload.get("pass_overrides")
        if pass_overrides is not None and not isinstance(pass_overrides, dict):
            raise _HTTPError(
                400,
                "bad_request",
                "'pass_overrides' must be an object mapping stage names to "
                "registered pass names (see GET /v1/passes)",
            )
        deadline = payload.get("deadline")
        try:
            hint = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            raise _HTTPError(400, "bad_request", "'priority' must be an integer") from None
        hint = max(0, min(hint, tenant.max_priority))
        priority, vtime = self.fairshare.next_ticket(tenant.name, tenant.weight, hint=hint)
        root = Span(
            "gateway.request",
            trace_id=trace_id or new_trace_id(),
            attrs={
                "tenant": tenant.name,
                "backend": str(backend),
                "mode": mode,
                "priority": hint,
            },
        )
        try:
            # The service gets the *context*, not the span object, so the
            # tree it builds is identical whether it lives in this process
            # or behind `python -m repro.service`.
            future = self.service.submit(
                circuit,
                backend,
                device=payload.get("device"),
                objective=payload.get("objective", "fidelity"),
                seed=int(payload.get("seed", 0)),
                priority=priority,
                deadline=deadline,
                pass_overrides=pass_overrides,
                trace=root.context(),
            )
        except (TypeError, KeyError, ValueError) as exc:
            # Unknown backend/device/objective, a bad deadline, or a bad pass
            # override (UnknownPassError is a KeyError) — caller errors,
            # reported as such (the service validates in our thread).
            message = str(exc.args[0]) if exc.args else str(exc)
            raise _HTTPError(400, "bad_request", message) from None
        except RuntimeError as exc:  # service shut down underneath the gateway
            raise _HTTPError(503, "unavailable", str(exc)) from None
        job = self.jobs.create(
            tenant.name,
            str(backend),
            future,
            mode=mode,
            priority=hint,
            deadline=deadline,
            circuit_name=circuit.name,
            trace_id=root.trace_id,
        )
        self.bump("jobs_submitted")
        self.log.info(
            "job submitted",
            extra={
                "job_id": job.id,
                "tenant": tenant.name,
                "backend": str(backend),
                "mode": mode,
                "trace_id": root.trace_id,
            },
        )
        with self._lock:
            self._future_jobs[future] = job
        future.add_done_callback(
            self._make_done_callback(job, tenant.name, hint, vtime, root)
        )
        return job

    def _make_done_callback(
        self, job, tenant_name: str, hint: int, vtime: float, root: Span
    ):
        def _done(future) -> None:
            try:
                result = future.result()
            except Exception as exc:  # noqa: BLE001 - futures normally hold results
                from ..api.batch import _failure_result

                result = _failure_result(
                    from_qasm("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\n"),
                    job.backend,
                    "fidelity",
                    exc,
                )
            # Complete the trace: the service's span tree (carried home in
            # result.metadata["trace"]) nests under the gateway root span,
            # and the whole tree becomes the job's /trace payload.
            service_tree = result.metadata.get("trace")
            if service_tree:
                root.add(service_tree)
            elapsed_root = root.finish(status="ok" if result.succeeded else "error")
            job.trace = root.to_dict()
            job.finish(result)
            self.jobs.mark_finished(job)
            self.fairshare.complete(vtime)
            # Monotonic: an NTP step mid-request must not feed a negative or
            # inflated latency into the window/histograms (job.created_at is
            # wall-clock, display only).
            elapsed = job.elapsed()
            self.latency.observe(f"tenant:{tenant_name}", elapsed)
            self.latency.observe(f"priority:{hint}", elapsed)
            self.slowlog.observe(
                trace_id=root.trace_id,
                name=job.circuit_name or job.id,
                seconds=elapsed_root,
                tree=job.trace,
                tenant=tenant_name,
                backend=job.backend,
                status="ok" if result.succeeded else "error",
            )
            self.bump("jobs_completed")
            self.log.info(
                "job finished",
                extra={
                    "job_id": job.id,
                    "tenant": tenant_name,
                    "trace_id": root.trace_id,
                    "seconds": round(elapsed, 6),
                    "succeeded": result.succeeded,
                },
            )
            with self._lock:
                self._future_jobs.pop(future, None)

        return _done

    def _on_service_event(self, event: str, request, result) -> None:
        if event != "started":
            return
        with self._lock:
            job = self._future_jobs.get(request.future)
        if job is not None:
            job.record("started", {"backend": request.backend.name})

    # -- read-side payloads ------------------------------------------------------------

    def health(self) -> dict:
        state = self.state
        service_health = self.service.health()
        return {
            "name": self.name,
            "status": state,
            "ready": state == "ok" and service_health["ready"],
            "service": service_health,
            "jobs_unfinished": self.jobs.stats()["unfinished"],
        }

    def stats(self) -> dict:
        payload = {
            "gateway": {
                "name": self.name,
                "status": self.state,
                "counters": self.counters(),
                "jobs": self.jobs.stats(),
                "latency": self.latency.summary(),
                "fair_share": self.fairshare.stats(),
                "slow_requests": self.slowlog.snapshot(),
            },
            "service": self.service.stats(),
            "timeseries": self.sampler.series(),
        }
        if self.registry is not None:
            payload["tenants"] = self.registry.stats()
        return payload

    def metrics_text(self) -> str:
        return render_prometheus(
            self.service.stats(),
            gateway_counters=self.counters(),
            tenant_stats=self.registry.stats() if self.registry else None,
            latency=self.latency,
            health=self.health(),
        )


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, *, gateway: GatewayServer):
        self.gateway = gateway
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _GatewayHTTPServer

    # -- plumbing ----------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence the default stderr access log (metrics cover it)."""

    @property
    def gateway(self) -> GatewayServer:
        return self.server.gateway

    def _api_key(self) -> "str | None":
        key = self.headers.get("X-API-Key")
        if key:
            return key.strip()
        auth = self.headers.get("Authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return None

    def _send_json(self, status: int, payload: dict, headers: "dict | None" = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self._send_trace_header()
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_trace_header(self) -> None:
        """Echo the request's trace id so clients can correlate logs/traces."""
        trace_id = getattr(self, "trace_id", None)
        if trace_id:
            self.send_header("X-Repro-Trace-Id", trace_id)

    def _send_error_payload(self, exc: _HTTPError) -> None:
        self._send_json(
            exc.status,
            {"error": {"type": exc.error_type, "message": exc.message}},
            headers=exc.headers,
        )

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _HTTPError(413, "too_large", f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, "bad_json", f"request body is not valid JSON: {exc}") from None

    def _dispatch(self, method: str) -> None:
        self.gateway.bump("http_requests")
        # One trace id per HTTP request: honour a well-formed inbound
        # X-Repro-Trace-Id (so callers can stitch the gateway into their own
        # traces), mint a fresh one otherwise.  Echoed on every response.
        inbound = (self.headers.get("X-Repro-Trace-Id") or "").strip()
        self.trace_id = inbound if valid_trace_id(inbound) else new_trace_id()
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        try:
            self._route(method, path, query)
        except _HTTPError as exc:
            self._send_error_payload(exc)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - surface as a 500, keep serving
            self._send_json(
                500,
                {"error": {"type": "internal", "message": f"{type(exc).__name__}: {exc}"}},
            )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    # -- routing -----------------------------------------------------------------------

    def _route(self, method: str, path: str, query: dict) -> None:
        if path == "/healthz" and method == "GET":
            return self._handle_healthz()
        if path == "/metrics" and method == "GET":
            return self._handle_metrics()
        if path == "/dashboard" and method == "GET":
            # Static HTML shell, no data: the page itself authenticates its
            # /v1/stats polls with the API key the operator provides.
            return self._handle_dashboard()
        tenant = self.gateway.authenticate(self._api_key())
        if path == "/v1/compile" and method == "POST":
            return self._handle_compile(tenant, query)
        if path == "/v1/stats" and method == "GET":
            return self._send_json(200, self.gateway.stats())
        if path == "/v1/passes" and method == "GET":
            return self._handle_passes(query)
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/") :]
            job_id, _, sub = rest.partition("/")
            job = self.gateway.jobs.get(job_id, None if tenant.admin else tenant.name)
            if job is None:
                raise _HTTPError(404, "not_found", f"no job {job_id!r} for this tenant")
            if sub == "":
                return self._send_json(200, job.describe())
            if sub == "result":
                return self._handle_result(job)
            if sub == "events":
                return self._handle_events(job)
            if sub == "trace":
                return self._handle_trace(job)
            raise _HTTPError(404, "not_found", f"unknown job sub-resource {sub!r}")
        if path == "/admin/drain" and method == "POST":
            if not tenant.admin:
                raise _HTTPError(
                    403, "forbidden", f"tenant {tenant.name!r} is not an admin"
                )
            body = self._read_json()
            grace = body.get("grace")
            status = self.gateway.begin_drain(None if grace is None else float(grace))
            return self._send_json(202, status)
        raise _HTTPError(404, "not_found", f"no route for {method} {path}")

    # -- endpoint bodies ---------------------------------------------------------------

    def _handle_healthz(self) -> None:
        health = self.gateway.health()
        self._send_json(200 if health["ready"] else 503, health)

    def _handle_metrics(self) -> None:
        body = self.gateway.metrics_text().encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self._send_trace_header()
        self.end_headers()
        self.wfile.write(body)

    def _handle_dashboard(self) -> None:
        body = render_dashboard().encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self._send_trace_header()
        self.end_headers()
        self.wfile.write(body)

    def _handle_trace(self, job) -> None:
        """The job's finished span tree (202 while the request is running)."""
        if job.trace is None:
            return self._send_json(
                202,
                {"job_id": job.id, "state": job.state, "trace_id": job.trace_id},
                headers={"Retry-After": "1"},
            )
        self._send_json(
            200,
            {"job_id": job.id, "trace_id": job.trace_id, "trace": job.trace},
        )

    def _handle_passes(self, query: dict) -> None:
        """The pass-registry catalog: what names a ``pass_overrides`` may use.

        ``?role=routing`` filters to one stage role.  The catalog is
        process-local code metadata (every process running this build has the
        same registry), so it is served directly rather than via the service.
        """
        from ..passes import PassRole, pass_catalog

        role = query.get("role")
        if role is not None and role not in PassRole.ALL:
            raise _HTTPError(
                400,
                "bad_request",
                f"unknown role {role!r}; expected one of {', '.join(PassRole.ALL)}",
            )
        return self._send_json(200, {"passes": pass_catalog(role=role)})

    def _handle_compile(self, tenant: Tenant, query: dict) -> None:
        self.gateway.check_rate(tenant)
        payload = self._read_json()
        mode = str(query.get("mode") or payload.get("mode") or "sync").lower()
        if mode not in ("sync", "async"):
            raise _HTTPError(400, "bad_request", f"mode must be sync or async, got {mode!r}")
        job = self.gateway.submit(tenant, payload, mode, trace_id=self.trace_id)
        links = {
            "status_url": f"/v1/jobs/{job.id}",
            "result_url": f"/v1/jobs/{job.id}/result",
            "events_url": f"/v1/jobs/{job.id}/events",
            "trace_url": f"/v1/jobs/{job.id}/trace",
        }
        if mode == "async":
            return self._send_json(202, {"job_id": job.id, "state": job.state, **links})
        timeout = payload.get("timeout")
        wait = self.gateway.sync_timeout
        if timeout is not None:
            try:
                wait = min(float(timeout), wait)
            except (TypeError, ValueError):
                raise _HTTPError(400, "bad_request", "'timeout' must be a number") from None
        try:
            result = job.future.result(timeout=wait)
        except (TimeoutError, FutureTimeoutError):
            # Still compiling: degrade to async semantics instead of holding
            # the connection forever — the job id keeps working.
            return self._send_json(
                202,
                {"job_id": job.id, "state": job.state, "timed_out_after": wait, **links},
            )
        self._send_json(
            200,
            {"job_id": job.id, "state": "done", "result": result.to_dict(), **links},
        )

    def _handle_result(self, job) -> None:
        if not job.done:
            return self._send_json(
                202,
                {"job_id": job.id, "state": job.state},
                headers={"Retry-After": "1"},
            )
        result = job.result
        assert result is not None
        self._send_json(200, {"job_id": job.id, "state": job.state, "result": result.to_dict()})

    def _handle_events(self, job) -> None:
        """Stream the job's lifecycle as server-sent events until it is done."""
        self.gateway.bump("sse_streams")
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self._send_trace_header()
        self.end_headers()
        self.close_connection = True
        index = 0
        deadline = time.monotonic() + MAX_STREAM_SECONDS
        while time.monotonic() < deadline:
            events = job.events_since(index, timeout=0.5)
            if events:
                for event in events:
                    data = json.dumps(
                        {
                            "job_id": job.id,
                            "trace_id": job.trace_id,
                            "time": event["time"],
                            **event["data"],
                        }
                    )
                    self.wfile.write(
                        f"event: {event['event']}\ndata: {data}\n\n".encode()
                    )
                index += len(events)
                self.wfile.flush()
            elif job.done:
                return  # log exhausted and job finished: stream complete
            else:
                self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
