"""Batch compilation service: worker-pool fan-out, caching, and error capture.

``compile_batch`` compiles every (circuit, backend) combination of a sweep
with two production-minded behaviours the single-shot facade does not need:

* **Per-(circuit, backend, device, seed) result caching** — preset pipelines
  are deterministic, so re-running a sweep (e.g. the same benchmark suite
  scored under a different objective) reuses the compiled circuits.  Cached
  results carry ``metadata["cached"] = True`` and are re-pointed at the
  requested objective without recompiling.  This is the big wall-clock win
  when the same circuits are swept repeatedly.
* **Structured error capture** — one failing circuit does not kill the sweep;
  the failure is returned as a ``CompilationResult`` with ``succeeded=False``
  and the exception text in ``error``.

Tasks are fanned out over a thread pool.  Because the pass pipelines are
mostly pure Python, the GIL limits the speedup to the fraction of time spent
in NumPy kernels — expect modest overlap, not a core-count multiplier.  The
pool keeps the API ready for process-based or distributed executors without
changing callers.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device
from ..devices.library import get_device
from ..reward.functions import reward_function
from .facade import resolve_backend
from .registry import CompilerBackend
from .result import CompilationResult

__all__ = [
    "BatchResult",
    "CompilationCache",
    "circuit_fingerprint",
    "compile_batch",
    "default_cache",
]


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Stable content hash of a circuit (gate sequence, qubits, parameters).

    Built on the cached :meth:`QuantumCircuit.fingerprint`, with the circuit
    name mixed in: batch sweeps treat same-structure circuits from different
    benchmark families as distinct entries, while the structural digest itself
    is shared with the analysis cache and computed at most once per circuit.
    """
    return f"{circuit.name}|{circuit.fingerprint()}"


class CompilationCache:
    """Thread-safe LRU cache of compilation results.

    Keys are ``(circuit fingerprint, backend cache token, device, seed)`` —
    deliberately *not* the objective, because compilation is objective-agnostic
    for deterministic backends and results carry scores for every metric.
    """

    def __init__(self, maxsize: int = 2048):
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CompilationResult] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> CompilationResult | None:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: tuple, result: CompilationResult) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT_CACHE = CompilationCache()


def default_cache() -> CompilationCache:
    """The process-wide cache used by :func:`compile_batch` by default."""
    return _DEFAULT_CACHE


@dataclass
class BatchResult:
    """All results of one ``compile_batch`` sweep, circuit-major order."""

    results: list[CompilationResult] = field(default_factory=list)
    #: (circuit index, backend name) -> position in ``results``
    index: dict[tuple[int, str], int] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def succeeded(self) -> list[CompilationResult]:
        return [r for r in self.results if r.succeeded]

    @property
    def failures(self) -> list[CompilationResult]:
        return [r for r in self.results if not r.succeeded]

    def get(self, circuit_index: int, backend: str) -> CompilationResult:
        """The result for one (circuit, backend) combination of the sweep."""
        return self.results[self.index[(circuit_index, backend)]]

    def by_backend(self, backend: str) -> list[CompilationResult]:
        """All results produced by ``backend``, in circuit order."""
        return [r for r in self.results if r.backend == backend]

    def summary(self) -> str:
        lines = [f"batch: {len(self.results)} compilations, {len(self.failures)} failed"]
        for result in self.results:
            lines.append("  " + result.summary())
        return "\n".join(lines)


def _failure_result(
    circuit: QuantumCircuit,
    backend_name: str,
    objective: str,
    exc: Exception,
) -> CompilationResult:
    return CompilationResult(
        circuit=circuit,
        device=None,
        reward=0.0,
        reward_name=objective,
        reached_done=False,
        backend=backend_name,
        succeeded=False,
        error=f"{type(exc).__name__}: {exc}",
    )


def compile_batch(
    circuits: Iterable[QuantumCircuit],
    backends: "Sequence[str | CompilerBackend]" = ("qiskit-o3",),
    *,
    device: "Device | str | None" = None,
    objective: str = "fidelity",
    seed: int = 0,
    max_workers: int | None = None,
    cache: CompilationCache | None = _DEFAULT_CACHE,
) -> BatchResult:
    """Compile every circuit with every backend, with caching and error capture.

    Parameters
    ----------
    circuits:
        Circuits to sweep over.
    backends:
        Backend specifications (registered names, backend instances, or
        trained Predictors) — every circuit is compiled with each of them.
    device, objective, seed:
        Forwarded to each backend as in :func:`repro.compile`.
    max_workers:
        Worker-pool size (default: CPU count, capped at the task count).
    cache:
        A :class:`CompilationCache` (default: the process-wide cache) or
        ``None`` to disable caching.  Failed compilations are never cached.

    Returns a :class:`BatchResult` in circuit-major order: for circuits
    ``[c0, c1]`` and backends ``[a, b]`` the results are
    ``[c0/a, c0/b, c1/a, c1/b]``.
    """
    circuit_list = list(circuits)
    specs = list(backends)
    resolved = [resolve_backend(spec) for spec in specs]
    if not resolved:
        raise ValueError("compile_batch needs at least one backend")
    reward_function(objective)  # fail fast regardless of cache warmth
    target = get_device(device) if isinstance(device, str) else device
    device_key = target.name if target is not None else "<auto>"

    tasks: list[tuple[int, QuantumCircuit, CompilerBackend]] = [
        (ci, circuit, backend)
        for ci, circuit in enumerate(circuit_list)
        for backend in resolved
    ]

    def run_one(task: tuple[int, QuantumCircuit, CompilerBackend]) -> CompilationResult:
        _ci, circuit, backend = task
        token = getattr(backend, "cache_token", backend.name)
        key = (
            circuit_fingerprint(circuit),
            token() if callable(token) else token,
            device_key,
            seed,
        )
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                result = hit.with_objective(objective)
                result.metadata = {**result.metadata, "cached": True}
                return result
        try:
            result = backend.compile(circuit, device=target, objective=objective, seed=seed)
        except Exception as exc:  # noqa: BLE001 - one failure must not kill the sweep
            return _failure_result(circuit, backend.name, objective, exc)
        if cache is not None and result.succeeded:
            cache.put(key, result)
        return result

    if max_workers is None:
        max_workers = min(len(tasks) or 1, os.cpu_count() or 1)
    if max_workers <= 1 or len(tasks) <= 1:
        results = [run_one(task) for task in tasks]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            results = list(pool.map(run_one, tasks))

    backend_specs = {
        backend.name: spec for spec, backend in zip(specs, resolved) if isinstance(spec, str)
    }
    batch = BatchResult()
    for position, ((ci, _circuit, backend), result) in enumerate(zip(tasks, results)):
        batch.results.append(result)
        batch.index[(ci, backend.name)] = position
        # Also index by the caller's original spec string, so lookups with an
        # alias ("qiskit" for "qiskit-o3") resolve like get_backend() does.
        spec = backend_specs.get(backend.name)
        if spec is not None and spec != backend.name:
            batch.index[(ci, spec)] = position
    return batch
