"""Batch compilation service: worker-pool fan-out, caching, and error capture.

``compile_batch`` compiles every (circuit, backend) combination of a sweep
with two production-minded behaviours the single-shot facade does not need:

* **Per-(circuit, backend, device, seed) result caching** — preset pipelines
  are deterministic, so re-running a sweep (e.g. the same benchmark suite
  scored under a different objective) reuses the compiled circuits.  Cached
  results carry ``metadata["cached"] = True`` and are re-pointed at the
  requested objective without recompiling.  This is the big wall-clock win
  when the same circuits are swept repeatedly.
* **Structured error capture** — one failing circuit does not kill the sweep;
  the failure is returned as a ``CompilationResult`` with ``succeeded=False``
  and the exception text in ``error``.

Tasks are fanned out over a worker pool selected by ``executor``:

* ``"thread"`` (default) — a ``ThreadPoolExecutor``.  Because the pass
  pipelines are mostly pure Python, the GIL limits the speedup to the
  fraction of time spent in NumPy kernels — modest overlap, not a
  core-count multiplier.
* ``"process"`` — a ``ProcessPoolExecutor``: circuits and backends are
  pickled to worker processes, compiled GIL-free, and the results are
  merged back into the shared :class:`CompilationCache` by the parent.
  This is the core-count multiplier on multi-core machines; on a single
  core the pickling round trip makes it strictly slower than threads.
  Cache lookups always happen in the parent — worker processes never see
  the cache.
* ``"service"`` — the misses are submitted to a
  :class:`~repro.service.CompileService` (the ``service`` argument, or a
  temporary one), riding on its per-backend worker pools and its shared —
  possibly server-backed — cache.  This is how sweeps join a long-lived
  compile server instead of spinning up their own pool.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device
from ..devices.library import get_device
from ..pipeline.properties import LruCache
from ..reward.functions import reward_function
from .facade import resolve_backend
from .registry import CompilerBackend
from .result import CompilationResult

__all__ = [
    "BatchResult",
    "CompilationCache",
    "circuit_fingerprint",
    "compile_batch",
    "default_cache",
    "result_cache_key",
]


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Stable content hash of a circuit (gate sequence, qubits, parameters).

    Built on the cached :meth:`QuantumCircuit.fingerprint`, with the circuit
    name mixed in: batch sweeps treat same-structure circuits from different
    benchmark families as distinct entries, while the structural digest itself
    is shared with the analysis cache and computed at most once per circuit.
    """
    return f"{circuit.name}|{circuit.fingerprint()}"


class CompilationCache(LruCache):
    """Thread-safe LRU cache of compilation results.

    Keys are ``(circuit fingerprint, backend cache token, device, seed)`` —
    deliberately *not* the objective, because compilation is objective-agnostic
    for deterministic backends and results carry scores for every metric.
    """


def result_cache_key(
    circuit: QuantumCircuit,
    backend: CompilerBackend,
    device_name: str | None,
    seed: int,
) -> tuple:
    """The :class:`CompilationCache` key for one (circuit, backend) task.

    The single definition of the key scheme, shared by ``compile_batch`` and
    the compile service: a server-backed cache only lets the two layers reuse
    each other's results while their key tuples stay byte-identical.
    """
    token = getattr(backend, "cache_token", backend.name)
    return (
        circuit_fingerprint(circuit),
        token() if callable(token) else token,
        device_name if device_name is not None else "<auto>",
        seed,
    )


_DEFAULT_CACHE = CompilationCache()


def default_cache() -> CompilationCache:
    """The process-wide cache used by :func:`compile_batch` by default."""
    return _DEFAULT_CACHE


@dataclass
class BatchResult:
    """All results of one ``compile_batch`` sweep, circuit-major order."""

    results: list[CompilationResult] = field(default_factory=list)
    #: (circuit index, backend name) -> position in ``results``
    index: dict[tuple[int, str], int] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def succeeded(self) -> list[CompilationResult]:
        return [r for r in self.results if r.succeeded]

    @property
    def failures(self) -> list[CompilationResult]:
        return [r for r in self.results if not r.succeeded]

    def get(self, circuit_index: int, backend: str) -> CompilationResult:
        """The result for one (circuit, backend) combination of the sweep."""
        return self.results[self.index[(circuit_index, backend)]]

    def by_backend(self, backend: str) -> list[CompilationResult]:
        """All results produced by ``backend``, in circuit order."""
        return [r for r in self.results if r.backend == backend]

    def summary(self) -> str:
        lines = [f"batch: {len(self.results)} compilations, {len(self.failures)} failed"]
        for result in self.results:
            lines.append("  " + result.summary())
        return "\n".join(lines)


def _failure_result(
    circuit: QuantumCircuit,
    backend_name: str,
    objective: str,
    exc: Exception,
) -> CompilationResult:
    return CompilationResult(
        circuit=circuit,
        device=None,
        reward=0.0,
        reward_name=objective,
        reached_done=False,
        backend=backend_name,
        succeeded=False,
        error=f"{type(exc).__name__}: {exc}",
    )


def _compile_task(payload: tuple) -> CompilationResult:
    """Compile one (circuit, backend) pair; exceptions become failure results.

    Module-level so the process executor can pickle it; the payload carries
    everything a worker needs (no access to the parent's caches).
    """
    circuit, backend, device, objective, seed = payload
    try:
        return backend.compile(circuit, device=device, objective=objective, seed=seed)
    except Exception as exc:  # noqa: BLE001 - one failure must not kill the sweep
        return _failure_result(circuit, backend.name, objective, exc)


def _same_backend(a: CompilerBackend, b: CompilerBackend) -> bool:
    """True when two resolved backends are the same compiler.

    Predictor specs are wrapped in a *fresh* ``PredictorBackend`` per
    :func:`resolve_backend` call, so object identity alone would treat the
    same Predictor passed twice as a conflict; compare the wrapped predictor
    instead.
    """
    if a is b:
        return True
    predictor = getattr(a, "predictor", None)
    return predictor is not None and predictor is getattr(b, "predictor", None)


def _resolve_unique_backends(
    specs: Sequence,
) -> tuple[list[CompilerBackend], dict[str, str]]:
    """Resolve specs to backends, deduplicating repeats and alias collisions.

    Returns the unique backends in first-appearance order plus a mapping of
    alias spec strings to canonical backend names (for index lookups).  Two
    specs resolving to the *same* backend (``"qiskit"`` and ``"qiskit-o3"``,
    the same instance twice, or the same Predictor twice) collapse into one
    entry; two *different* backends claiming one name would silently
    overwrite each other's results in :attr:`BatchResult.index`, so that is
    an error.
    """
    unique: dict[str, CompilerBackend] = {}
    aliases: dict[str, str] = {}
    ordered: list[CompilerBackend] = []
    for spec in specs:
        backend = resolve_backend(spec)
        existing = unique.get(backend.name)
        if existing is None:
            unique[backend.name] = backend
            ordered.append(backend)
        elif not _same_backend(existing, backend):
            raise ValueError(
                f"conflicting backend specs: {spec!r} resolves to name "
                f"{backend.name!r}, which a different backend in this batch "
                "already uses — results would overwrite each other.  Give "
                "each backend a distinct name (for Predictors: "
                'predictor.as_backend(name="...")).'
            )
        if isinstance(spec, str) and spec != backend.name:
            aliases[spec] = backend.name
    return ordered, aliases


def compile_batch(
    circuits: Iterable[QuantumCircuit],
    backends: "Sequence[str | CompilerBackend]" = ("qiskit-o3",),
    *,
    device: "Device | str | None" = None,
    objective: str = "fidelity",
    seed: int = 0,
    max_workers: int | None = None,
    executor: str = "thread",
    cache: CompilationCache | None = _DEFAULT_CACHE,
    service=None,
    priority: int = 0,
    deadline: float | None = None,
) -> BatchResult:
    """Compile every circuit with every backend, with caching and error capture.

    Parameters
    ----------
    circuits:
        Circuits to sweep over.
    backends:
        Backend specifications (registered names, backend instances, or
        trained Predictors) — every circuit is compiled with each of them.
        Duplicate specs and aliases resolving to the same backend are
        deduplicated; two *different* backends sharing one name raise.
    device, objective, seed:
        Forwarded to each backend as in :func:`repro.compile`.
    max_workers:
        Worker-pool size (default: CPU count, capped at the task count).
    executor:
        ``"thread"`` (default), ``"process"`` or ``"service"``.  The process
        pool pickles circuits and backends to worker processes and compiles
        GIL-free; cache lookups stay in the parent and worker results are
        merged back into the shared cache.  ``"service"`` routes the misses
        through a :class:`~repro.service.CompileService`.
    cache:
        A :class:`CompilationCache` (default: the process-wide cache) or
        ``None`` to disable caching.  Failed compilations are never cached.
    service:
        The :class:`~repro.service.CompileService` (or
        :class:`~repro.service.ServiceClient`) used by
        ``executor="service"``; when omitted, a temporary service is started
        for the sweep and drained afterwards.  Only valid with
        ``executor="service"``.
    priority, deadline:
        QoS fields forwarded to every service submission (higher priority
        runs first; a request that waits past ``deadline`` seconds resolves
        to a ``DeadlineExceeded`` failure result).  Only valid with
        ``executor="service"``.

    Returns a :class:`BatchResult` in circuit-major order: for circuits
    ``[c0, c1]`` and backends ``[a, b]`` the results are
    ``[c0/a, c0/b, c1/a, c1/b]``.
    """
    if executor not in ("thread", "process", "service"):
        raise ValueError(
            f"unknown executor {executor!r} (use 'thread', 'process' or 'service')"
        )
    if service is not None and executor != "service":
        raise ValueError("the `service` argument requires executor='service'")
    if (priority != 0 or deadline is not None) and executor != "service":
        raise ValueError("priority/deadline require executor='service'")
    circuit_list = list(circuits)
    specs = list(backends)
    if not specs:
        raise ValueError("compile_batch needs at least one backend")
    resolved, aliases = _resolve_unique_backends(specs)
    reward_function(objective)  # fail fast regardless of cache warmth
    target = get_device(device) if isinstance(device, str) else device
    device_key = target.name if target is not None else "<auto>"

    tasks: list[tuple[int, QuantumCircuit, CompilerBackend]] = [
        (ci, circuit, backend)
        for ci, circuit in enumerate(circuit_list)
        for backend in resolved
    ]

    def cache_key(circuit: QuantumCircuit, backend: CompilerBackend) -> tuple:
        return result_cache_key(circuit, backend, device_key, seed)

    # Serve cache hits up front (always in the parent process), then fan the
    # misses out over the chosen worker pool.  Duplicate (circuit, backend)
    # pairs inside one sweep compile once; the copies are served like cache
    # hits after the owner's result lands.  The service executor skips the
    # parent-side dedup entirely: the service's own in-flight coalescing does
    # the same job while keeping the QoS semantics (a duplicate whose owner
    # expired gets its own deadline verdict, not a synchronous parent-thread
    # recompile with no deadline at all).
    results: list[CompilationResult | None] = [None] * len(tasks)
    pending: list[int] = []
    key_owner: dict[tuple, int] = {}
    duplicates: list[tuple[int, int]] = []
    for position, (_ci, circuit, backend) in enumerate(tasks):
        key = cache_key(circuit, backend)
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                result = hit.with_objective(objective)
                result.metadata = {**result.metadata, "cached": True}
                results[position] = result
                continue
        if executor != "service":
            owner = key_owner.get(key)
            if owner is not None:
                duplicates.append((position, owner))
                continue
            key_owner[key] = position
        pending.append(position)

    payloads = [
        (tasks[position][1], tasks[position][2], target, objective, seed)
        for position in pending
    ]
    if max_workers is None:
        max_workers = min(len(pending) or 1, os.cpu_count() or 1)
    if executor == "service" and pending:
        owned = None
        if service is None:
            from ..service import CompileService

            owned = service = CompileService(max_workers=max_workers)
        try:
            futures = [
                service.submit(
                    tasks[position][1],
                    tasks[position][2],
                    device=target,
                    objective=objective,
                    seed=seed,
                    priority=priority,
                    deadline=deadline,
                )
                for position in pending
            ]
            computed = [future.result() for future in futures]
        finally:
            if owned is not None:
                owned.shutdown(drain=True)
    elif executor == "process" and pending:
        for backend in resolved:
            try:
                pickle.dumps(backend)
            except Exception as exc:
                raise ValueError(
                    f"backend {backend.name!r} cannot be pickled for "
                    f"executor='process' ({exc}); use executor='thread'"
                ) from exc
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            computed = list(pool.map(_compile_task, payloads))
    elif max_workers <= 1 or len(pending) <= 1:
        computed = [_compile_task(payload) for payload in payloads]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            computed = list(pool.map(_compile_task, payloads))

    for position, result in zip(pending, computed):
        results[position] = result
        _ci, circuit, backend = tasks[position]
        if cache is not None and result.succeeded:
            cache.put(cache_key(circuit, backend), result, result.wall_time or None)
    for position, owner in duplicates:
        owned = results[owner]
        if owned is not None and owned.succeeded:
            result = owned.with_objective(objective)
            result.metadata = {**result.metadata, "cached": True}
            results[position] = result
        else:
            # The owner failed (failures are never cached): attempt the
            # duplicate independently, matching the pre-dedup behaviour.
            _ci, circuit, backend = tasks[position]
            results[position] = _compile_task((circuit, backend, target, objective, seed))

    batch = BatchResult()
    aliases_by_name: dict[str, list[str]] = {}
    for spec, name in aliases.items():
        aliases_by_name.setdefault(name, []).append(spec)
    for position, ((ci, _circuit, backend), result) in enumerate(zip(tasks, results)):
        batch.results.append(result)
        batch.index[(ci, backend.name)] = position
        # Also index by every alias the caller used ("qiskit" for
        # "qiskit-o3"), so lookups resolve like get_backend() does.
        for alias in aliases_by_name.get(backend.name, ()):
            batch.index[(ci, alias)] = position
    return batch
