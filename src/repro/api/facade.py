"""`repro.compile` — the single entry point for every compilation strategy.

The facade hides the difference between the RL model and the preset pipelines:
any registered backend name, backend instance, or trained ``Predictor`` can be
passed as ``backend`` and the call returns the same unified
:class:`~repro.api.result.CompilationResult`::

    result = repro.compile(circuit, backend="qiskit-o3", device="ibmq_washington")
    result = repro.compile(circuit, backend=trained_predictor)
    result = repro.compile(circuit, backend="best-of", objective="critical_depth")
"""

from __future__ import annotations

from time import perf_counter

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device
from ..devices.library import get_device
from .registry import CompilerBackend, get_backend, list_backends
from .result import CompilationResult

__all__ = ["compile", "resolve_backend"]


def resolve_backend(spec: "str | CompilerBackend") -> CompilerBackend:
    """Turn a backend specification into a backend instance.

    Accepts a registered backend name (``"qiskit-o3"``), a backend instance,
    or a trained :class:`~repro.core.predictor.Predictor` (auto-wrapped in a
    :class:`~repro.api.backends.PredictorBackend`).
    """
    if isinstance(spec, str):
        return get_backend(spec)
    if callable(getattr(spec, "as_backend", None)):  # a Predictor
        return spec.as_backend()
    if callable(getattr(spec, "compile", None)) and hasattr(spec, "name"):
        return spec
    raise TypeError(
        f"cannot resolve {spec!r} to a compiler backend; expected a registered "
        "name, a CompilerBackend instance, or a trained Predictor "
        f"(registered backends: {', '.join(list_backends())})"
    )


def compile(  # noqa: A001 - deliberate: the facade mirrors the paper's `compile`
    circuit: QuantumCircuit,
    backend: "str | CompilerBackend" = "qiskit-o3",
    *,
    device: "Device | str | None" = None,
    objective: str = "fidelity",
    seed: int = 0,
    service=None,
    priority: int = 0,
    deadline: float | None = None,
) -> CompilationResult:
    """Compile ``circuit`` with ``backend`` and return the unified result.

    Parameters
    ----------
    circuit:
        The circuit to compile.
    backend:
        Registered backend name (see :func:`repro.list_backends`), backend
        instance, or trained :class:`~repro.Predictor`.
    device:
        Target device (name or :class:`~repro.Device`).  Preset backends
        default to the paper's baseline device (``ibmq_washington``); the RL
        backend selects its own device and ignores this argument.
    objective:
        Reward function the headline ``result.reward`` tracks
        (``fidelity`` / ``critical_depth`` / ``combination``); all three are
        always available in ``result.scores``.
    seed:
        Seed forwarded to stochastic passes for reproducibility.
    service:
        A :class:`~repro.service.CompileService` or
        :class:`~repro.service.ServiceClient`: the request is submitted to
        the service (serving from its shared cache, scheduling onto its
        worker pools) and this call blocks on the result.  ``None`` (the
        default) compiles in the calling thread.
    priority:
        Service-queue priority (higher runs first); only meaningful with
        ``service``.
    deadline:
        Seconds the request may wait in the service queues before it is
        expired into a ``DeadlineExceeded`` failure result; only meaningful
        with ``service``.
    """
    if service is not None:
        future = service.submit(
            circuit,
            backend,
            device=device,
            objective=objective,
            seed=seed,
            priority=priority,
            deadline=deadline,
        )
        return future.result()
    if priority != 0 or deadline is not None:
        raise ValueError("priority/deadline require the `service` argument")
    resolved = resolve_backend(backend)
    target = get_device(device) if isinstance(device, str) else device
    start = perf_counter()
    result = resolved.compile(circuit, device=target, objective=objective, seed=seed)
    if not result.wall_time:
        result.wall_time = perf_counter() - start
    return result
