"""`repro.compile` — the single entry point for every compilation strategy.

The facade hides the difference between the RL model and the preset pipelines:
any registered backend name, backend instance, or trained ``Predictor`` can be
passed as ``backend`` and the call returns the same unified
:class:`~repro.api.result.CompilationResult`::

    result = repro.compile(circuit, backend="qiskit-o3", device="ibmq_washington")
    result = repro.compile(circuit, backend=trained_predictor)
    result = repro.compile(circuit, backend="best-of", objective="critical_depth")
"""

from __future__ import annotations

from time import perf_counter

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device
from ..devices.library import get_device
from ..obs import span
from .registry import CompilerBackend, get_backend, list_backends
from .result import CompilationResult

__all__ = ["compile", "resolve_backend", "apply_pass_overrides"]


def resolve_backend(spec: "str | CompilerBackend") -> CompilerBackend:
    """Turn a backend specification into a backend instance.

    Accepts a registered backend name (``"qiskit-o3"``), a backend instance,
    or a trained :class:`~repro.core.predictor.Predictor` (auto-wrapped in a
    :class:`~repro.api.backends.PredictorBackend`).
    """
    if isinstance(spec, str):
        return get_backend(spec)
    if callable(getattr(spec, "as_backend", None)):  # a Predictor
        return spec.as_backend()
    if callable(getattr(spec, "compile", None)) and hasattr(spec, "name"):
        return spec
    raise TypeError(
        f"cannot resolve {spec!r} to a compiler backend; expected a registered "
        "name, a CompilerBackend instance, or a trained Predictor "
        f"(registered backends: {', '.join(list_backends())})"
    )


def apply_pass_overrides(
    backend: CompilerBackend, pass_overrides: dict | None
) -> CompilerBackend:
    """Derive a backend with ``pass_overrides`` applied to its stage schedule.

    Returns ``backend`` untouched when there are no overrides.  Backends that
    do not run a declarative schedule (the RL predictor, ``best-of``) do not
    support overrides — asking for them is a :class:`TypeError`.  Validation
    of the override payload itself (unknown stage/pass, role mismatch)
    happens eagerly, in the caller's thread.
    """
    if not pass_overrides:
        return backend
    derive = getattr(backend, "with_pass_overrides", None)
    if not callable(derive):
        raise TypeError(
            f"backend {getattr(backend, 'name', backend)!r} does not support "
            "pass_overrides; only schedule-driven preset backends "
            "(qiskit-o*/tket-o*) do"
        )
    return derive(pass_overrides)


def compile(  # noqa: A001 - deliberate: the facade mirrors the paper's `compile`
    circuit: QuantumCircuit,
    backend: "str | CompilerBackend" = "qiskit-o3",
    *,
    device: "Device | str | None" = None,
    objective: str = "fidelity",
    seed: int = 0,
    pass_overrides: dict | None = None,
    service=None,
    priority: int = 0,
    deadline: float | None = None,
) -> CompilationResult:
    """Compile ``circuit`` with ``backend`` and return the unified result.

    Parameters
    ----------
    circuit:
        The circuit to compile.
    backend:
        Registered backend name (see :func:`repro.list_backends`), backend
        instance, or trained :class:`~repro.Predictor`.
    device:
        Target device (name or :class:`~repro.Device`).  Preset backends
        default to the paper's baseline device (``ibmq_washington``); the RL
        backend selects its own device and ignores this argument.
    objective:
        Reward function the headline ``result.reward`` tracks
        (``fidelity`` / ``critical_depth`` / ``combination``); all three are
        always available in ``result.scores``.
    seed:
        Seed forwarded to stochastic passes for reproducibility.
    pass_overrides:
        Stage-slot substitutions for schedule-driven (preset) backends, e.g.
        ``{"routing": "tket-routing"}`` — stage names map to registered pass
        names, ``(name, kwargs)`` pairs, or lists of those (see
        ``repro.available_passes`` / ``GET /v1/passes`` for the catalog).
        Only preset backends support this; the derived backend gets its own
        cache identity so overridden results never alias base results.
    service:
        A :class:`~repro.service.CompileService` or
        :class:`~repro.service.ServiceClient`: the request is submitted to
        the service (serving from its shared cache, scheduling onto its
        worker pools) and this call blocks on the result.  ``None`` (the
        default) compiles in the calling thread.
    priority:
        Service-queue priority (higher runs first); only meaningful with
        ``service``.
    deadline:
        Seconds the request may wait in the service queues before it is
        expired into a ``DeadlineExceeded`` failure result; only meaningful
        with ``service``.
    """
    if service is not None:
        future = service.submit(
            circuit,
            backend,
            device=device,
            objective=objective,
            seed=seed,
            priority=priority,
            deadline=deadline,
            pass_overrides=pass_overrides,
        )
        return future.result()
    if priority != 0 or deadline is not None:
        raise ValueError("priority/deadline require the `service` argument")
    resolved = apply_pass_overrides(resolve_backend(backend), pass_overrides)
    target = get_device(device) if isinstance(device, str) else device
    start = perf_counter()
    # Under an active trace the local compile gets its own span (with the
    # pipeline's per-stage spans nesting inside); untraced calls skip this
    # at the cost of one thread-local read.
    with span(f"compile.{resolved.name}"):
        result = resolved.compile(circuit, device=target, objective=objective, seed=seed)
    if not result.wall_time:
        result.wall_time = perf_counter() - start
    return result
