"""Unified compilation API: one facade, a pluggable backend registry, batching.

This package is the public surface of the framework's compiler redesign:

* :func:`repro.api.compile` — compile one circuit with any backend.
* :mod:`repro.api.registry` — the ``CompilerBackend`` protocol plus
  ``register_backend`` / ``list_backends`` / ``get_backend``.
* :mod:`repro.api.backends` — built-in backends: every Qiskit-style level
  (``qiskit-o0`` ... ``qiskit-o3``), every TKET-style level (``tket-o0`` ...
  ``tket-o2``), the RL ``PredictorBackend``, and the ``best-of`` meta-backend.
* :func:`repro.api.compile_batch` — worker-pool batch compilation with
  per-(circuit, backend, device) caching and structured error capture.

Everything here is re-exported at the top level (``repro.compile`` etc.).
"""

from __future__ import annotations

from .backends import DEFAULT_DEVICE, BestOfBackend, PredictorBackend, PresetBackend
from .batch import (
    BatchResult,
    CompilationCache,
    circuit_fingerprint,
    compile_batch,
    default_cache,
)
from .facade import compile, resolve_backend
from .registry import (
    CompilerBackend,
    UnknownBackendError,
    get_backend,
    list_backends,
    register_backend,
    unregister_backend,
)
from .result import CompilationResult, score_circuit

__all__ = [
    "DEFAULT_DEVICE",
    "BatchResult",
    "BestOfBackend",
    "CompilationCache",
    "CompilationResult",
    "CompilerBackend",
    "PredictorBackend",
    "PresetBackend",
    "UnknownBackendError",
    "circuit_fingerprint",
    "compile",
    "compile_batch",
    "default_cache",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "score_circuit",
    "unregister_backend",
]
