"""Pluggable compiler-backend registry.

A *backend* is anything that turns a circuit into a unified
:class:`~repro.api.result.CompilationResult`: the trained RL model, one of the
Qiskit-/TKET-style preset pipelines, a meta-backend such as ``best-of``, or a
user-supplied strategy.  Backends are registered under string names so the
facade (``repro.compile``) and the batch service (``repro.compile_batch``) can
treat them interchangeably::

    register_backend("my-flow", MyBackend())
    repro.compile(circuit, backend="my-flow")

The built-in backends (``qiskit-o0`` ... ``qiskit-o3``, ``tket-o0`` ...
``tket-o2``, ``best-of``) are registered when :mod:`repro.api.backends` is
imported.  The RL backend is per-model, so it is *not* pre-registered: wrap a
trained :class:`~repro.core.predictor.Predictor` with
``predictor.as_backend()`` and register it (conventionally as ``"rl"``), or
pass the predictor/backend instance directly to ``repro.compile``.
"""

from __future__ import annotations

import threading
from typing import Protocol, runtime_checkable

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device
from .result import CompilationResult

__all__ = [
    "CompilerBackend",
    "UnknownBackendError",
    "get_backend",
    "list_backends",
    "register_backend",
    "unregister_backend",
]


@runtime_checkable
class CompilerBackend(Protocol):
    """Protocol every compiler backend implements."""

    name: str

    def compile(
        self,
        circuit: QuantumCircuit,
        *,
        device: Device | None = None,
        objective: str = "fidelity",
        seed: int = 0,
    ) -> CompilationResult:
        """Compile ``circuit`` and return a unified result."""
        ...


class UnknownBackendError(KeyError):
    """Raised when looking up a backend name that is not registered."""

    def __init__(self, name: str, available: list[str]):
        hint = ""
        if name == "rl":
            hint = (
                "; the RL backend is per-model — register one with "
                "register_backend('rl', predictor.as_backend()) or pass the "
                "Predictor instance directly"
            )
        super().__init__(
            f"unknown compiler backend {name!r}; available: {', '.join(available)}{hint}"
        )
        self.backend_name = name
        self.available = available


_LOCK = threading.Lock()
_REGISTRY: dict[str, CompilerBackend] = {}

#: convenience aliases resolved by :func:`get_backend`
_ALIASES = {
    "qiskit": "qiskit-o3",
    "tket": "tket-o2",
    "best_of": "best-of",
    "bestof": "best-of",
}


def register_backend(name: str, backend: CompilerBackend, *, overwrite: bool = False) -> None:
    """Register ``backend`` under ``name`` for lookup by the facade and batch service."""
    if not callable(getattr(backend, "compile", None)):
        raise TypeError(f"backend {backend!r} does not implement compile()")
    with _LOCK:
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"backend {name!r} is already registered; pass overwrite=True to replace it"
            )
        _REGISTRY[name] = backend


def unregister_backend(name: str) -> None:
    """Remove a previously registered backend (no-op if absent)."""
    with _LOCK:
        _REGISTRY.pop(name, None)


def list_backends() -> list[str]:
    """Sorted names of all registered backends."""
    with _LOCK:
        return sorted(_REGISTRY)


def get_backend(name: str) -> CompilerBackend:
    """Look up a registered backend by name (aliases like ``qiskit`` resolve too)."""
    with _LOCK:
        resolved = _ALIASES.get(name, name)
        try:
            return _REGISTRY[resolved]
        except KeyError:
            raise UnknownBackendError(name, sorted(_REGISTRY)) from None
