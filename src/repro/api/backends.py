"""Built-in compiler backends: preset pipelines, the RL model, and ``best-of``.

Importing this module registers the preset backends under ``qiskit-o0`` ...
``qiskit-o3`` and ``tket-o0`` ... ``tket-o2``, plus the ``best-of``
meta-backend.  The RL backend is per-model and therefore constructed
explicitly, either via ``predictor.as_backend()`` or directly::

    backend = PredictorBackend(predictor)          # name defaults to "rl"
    register_backend("rl", backend)
    repro.compile(circuit, backend="rl")
"""

from __future__ import annotations

import itertools
from time import perf_counter
from typing import TYPE_CHECKING

from ..compilers.presets import preset_pass_manager, run_preset_manager
from ..devices.library import get_device
from ..reward.functions import reward_function
from .registry import CompilerBackend, get_backend, list_backends, register_backend
from .result import CompilationResult, score_circuit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..circuit.circuit import QuantumCircuit
    from ..core.predictor import Predictor
    from ..devices.device import Device

__all__ = [
    "DEFAULT_DEVICE",
    "BestOfBackend",
    "PredictorBackend",
    "PresetBackend",
]

#: device the preset backends target when the caller does not specify one
#: (the paper's baseline device)
DEFAULT_DEVICE = "ibmq_washington"


def _resolve_device(device: "Device | str | None") -> "Device":
    if device is None:
        return get_device(DEFAULT_DEVICE)
    if isinstance(device, str):
        return get_device(device)
    return device


class PresetBackend:
    """Backend running one declarative preset schedule at a fixed level.

    The backend is built directly from the schedule tables in
    :mod:`repro.compilers.presets` — it holds the corresponding
    :class:`~repro.pipeline.PassManager` and runs it, so the registered
    ``qiskit-o*`` / ``tket-o*`` backends and the ``qiskit_pipeline`` /
    ``tket_pipeline`` functions execute the exact same stages.  The manager
    carries no per-run state, making one backend instance safe to share
    across the batch service's worker threads.

    ``iterate=True`` builds the experimental fixed-point variant (registered
    as ``qiskit-o3-iter`` / ``tket-o2-iter``): the post-mapping optimization
    stage repeats until the circuit stops changing, trading wall time for
    whatever additional gate cancellations the extra rounds expose.  The
    golden-pinned base levels are untouched — these are new backend names.

    ``pass_overrides`` swaps stage slots of the schedule by registered pass
    name (see :func:`~repro.compilers.presets.preset_pass_manager`).  The
    backend name — and with it the cache token — gains a deterministic
    suffix describing the substitution, so overridden and base compilations
    never share a result-cache entry.
    """

    def __init__(
        self,
        style: str,
        optimization_level: int,
        *,
        iterate: bool = False,
        pass_overrides: dict | None = None,
    ):
        self.style = style
        self.optimization_level = optimization_level
        self.iterate = iterate
        self.pass_overrides = dict(pass_overrides) if pass_overrides else None
        self._manager = preset_pass_manager(
            style, optimization_level, iterate=iterate, overrides=self.pass_overrides
        )
        # the manager name is "<style>-o<level>[+stage=pass,...][-iter]" —
        # identical to the historical backend name when there are no overrides
        self.name = self._manager.name

    def with_pass_overrides(self, overrides: dict) -> "PresetBackend":
        """A derived backend with ``overrides`` layered onto this schedule.

        Validation (unknown stage, unknown pass, role mismatch) happens here,
        in the caller's thread, so a bad override fails fast instead of
        surfacing from a service worker.
        """
        merged = {**(self.pass_overrides or {}), **overrides}
        return PresetBackend(
            self.style,
            self.optimization_level,
            iterate=self.iterate,
            pass_overrides=merged,
        )

    def cache_token(self) -> str:
        return self.name

    @property
    def schedule(self) -> list[dict]:
        """The declarative stage schedule this backend runs (plain data)."""
        return self._manager.describe()

    def compile(
        self,
        circuit: "QuantumCircuit",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
    ) -> CompilationResult:
        reward_function(objective)  # fail fast on unknown objectives
        target = _resolve_device(device)
        start = perf_counter()
        compiled, applied = run_preset_manager(self._manager, circuit, target, seed)
        wall_time = perf_counter() - start
        scores = score_circuit(compiled, target)
        return CompilationResult(
            circuit=compiled,
            device=target,
            reward=scores[objective],
            reward_name=objective,
            actions=applied,
            backend=self.name,
            scores=scores,
            wall_time=wall_time,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PresetBackend({self.name!r})"


#: monotonically increasing token so two wrappers around different predictors
#: never share a batch-cache entry
_PREDICTOR_TOKENS = itertools.count()


class PredictorBackend:
    """Backend wrapping a trained RL :class:`~repro.core.predictor.Predictor`.

    The RL agent selects its own target device as part of its action sequence
    (as in the paper), so the ``device`` argument is ignored; pin the device at
    training time via ``Predictor(device_name=...)`` instead.
    """

    def __init__(self, predictor: "Predictor", name: str = "rl"):
        if not callable(getattr(predictor, "compile", None)):
            raise TypeError("PredictorBackend expects a (trained) Predictor instance")
        self.predictor = predictor
        self.name = name
        self._token = f"{name}#{next(_PREDICTOR_TOKENS)}"

    def cache_token(self) -> str:
        return self._token

    def compile(
        self,
        circuit: "QuantumCircuit",
        *,
        device: "Device | str | None" = None,
        objective: str | None = None,
        seed: int = 0,
    ) -> CompilationResult:
        if objective:
            reward_function(objective)  # fail fast on unknown objectives
        result = self.predictor.compile(circuit)
        result.backend = self.name
        if objective and objective != result.reward_name:
            result = result.with_objective(objective)
        return result

    def compile_batch(
        self,
        circuits: "list[QuantumCircuit]",
        *,
        objective: str | None = None,
    ) -> "list[CompilationResult]":
        """Compile many circuits, amortising feature extraction across the batch.

        One shared :class:`~repro.pipeline.AnalysisCache` is pre-warmed with a
        single :func:`~repro.features.feature_vectors_batch` sweep over the
        inputs and then serves every inference episode: the initial observation
        of each episode is a warm hit, and circuit states reached by more than
        one episode (policies funnel different inputs through the same
        intermediate forms) are analysed once for the whole batch.
        """
        if objective:
            reward_function(objective)  # fail fast on unknown objectives
        from ..pipeline import AnalysisCache

        cache = AnalysisCache()
        cache.warm_features(circuits)
        results = []
        for circuit in circuits:
            result = self.predictor.compile(circuit, analysis_cache=cache)
            result.backend = self.name
            if objective and objective != result.reward_name:
                result = result.with_objective(objective)
            results.append(result)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PredictorBackend({self.name!r}, reward={self.predictor.reward_name!r})"


class BestOfBackend:
    """Meta-backend: run several candidate backends and keep the best result.

    ``candidates`` may mix registered backend names and backend instances.
    When omitted, the candidate set is the highest preset level of each style
    (``qiskit-o3``, ``tket-o2``) plus ``rl`` if a backend is registered under
    that name at compile time.  Candidate failures are captured rather than
    propagated; the per-candidate rewards land in ``result.metadata``.
    """

    def __init__(self, candidates: "list[str | CompilerBackend] | None" = None, name: str = "best-of"):
        self.candidates = list(candidates) if candidates is not None else None
        self.name = name

    def _resolve_candidates(self) -> list[CompilerBackend]:
        specs: list[str | CompilerBackend]
        if self.candidates is not None:
            specs = self.candidates
        else:
            specs = ["qiskit-o3", "tket-o2"]
            if "rl" in list_backends():
                specs.insert(0, "rl")
        return [get_backend(spec) if isinstance(spec, str) else spec for spec in specs]

    def cache_token(self) -> str:
        tokens = [
            getattr(b, "cache_token", lambda b=b: b.name)() for b in self._resolve_candidates()
        ]
        return f"{self.name}[{','.join(tokens)}]"

    def compile(
        self,
        circuit: "QuantumCircuit",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
    ) -> CompilationResult:
        reward_function(objective)
        start = perf_counter()
        outcomes: dict[str, CompilationResult] = {}
        errors: dict[str, str] = {}
        for backend in self._resolve_candidates():
            try:
                outcome = backend.compile(circuit, device=device, objective=objective, seed=seed)
            except Exception as exc:  # noqa: BLE001 - candidate failure must not kill the sweep
                errors[backend.name] = f"{type(exc).__name__}: {exc}"
                continue
            if outcome.succeeded:
                outcomes[backend.name] = outcome
            else:
                errors[backend.name] = outcome.error or "compilation did not finish"
        wall_time = perf_counter() - start
        candidate_rewards = {name: r.reward for name, r in outcomes.items()}
        if not outcomes:
            return CompilationResult(
                circuit=circuit,
                device=None,
                reward=0.0,
                reward_name=objective,
                reached_done=False,
                backend=self.name,
                wall_time=wall_time,
                succeeded=False,
                error=f"all candidates failed: {errors}",
                metadata={"candidates": candidate_rewards, "candidate_errors": errors},
            )
        winner_name, winner = max(outcomes.items(), key=lambda item: item[1].reward)
        best = CompilationResult(
            circuit=winner.circuit,
            device=winner.device,
            reward=winner.reward,
            reward_name=winner.reward_name,
            actions=list(winner.actions),
            reached_done=winner.reached_done,
            backend=self.name,
            scores=dict(winner.scores),
            wall_time=wall_time,
            metadata={
                "winner": winner_name,
                "candidates": candidate_rewards,
                "candidate_errors": errors,
            },
        )
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BestOfBackend({self.name!r}, candidates={self.candidates})"


def _register_builtin_backends() -> None:
    for level in range(4):
        register_backend(f"qiskit-o{level}", PresetBackend("qiskit", level), overwrite=True)
    for level in range(3):
        register_backend(f"tket-o{level}", PresetBackend("tket", level), overwrite=True)
    # Experimental fixed-point variants of the highest level of each style:
    # same schedules, with the post-mapping optimization stage run to
    # quiescence by a RepeatUntilStable controller.
    register_backend("qiskit-o3-iter", PresetBackend("qiskit", 3, iterate=True), overwrite=True)
    register_backend("tket-o2-iter", PresetBackend("tket", 2, iterate=True), overwrite=True)
    register_backend("best-of", BestOfBackend(), overwrite=True)


_register_builtin_backends()
