"""The unified :class:`CompilationResult` returned by every compiler backend.

Historically the framework had two incompatible result types: the RL
``Predictor`` returned ``repro.core.predictor.CompilationResult`` while the
preset baselines returned ``repro.compilers.presets.CompiledCircuit``.  The
evaluation harness had to hand-stitch the two together.  This module merges
them: one dataclass carrying the compiled circuit, the target device, the
objective scores, the applied pass/action trace, wall-clock time, the backend
that produced it, and structured success/error information.

``repro.core.CompilationResult`` is now an alias of this class, so code
written against the old Predictor API keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device

__all__ = ["CompilationResult", "score_circuit"]


def score_circuit(circuit: QuantumCircuit, device: Device) -> dict[str, float]:
    """Evaluate ``circuit`` on ``device`` under every registered reward function."""
    from ..reward.functions import REWARD_FUNCTIONS

    return {name: float(fn(circuit, device)) for name, fn in REWARD_FUNCTIONS.items()}


@dataclass
class CompilationResult:
    """Outcome of compiling one circuit with any backend (RL model or preset).

    The first six fields keep the order of the pre-registry Predictor result,
    so existing positional constructions continue to work.
    """

    #: the compiled circuit (or the untouched input when ``succeeded`` is False)
    circuit: QuantumCircuit
    #: the device the circuit was compiled for (``None`` if compilation failed
    #: before a device was chosen)
    device: Device | None
    #: the achieved value of the optimization objective (0.0 on failure)
    reward: float
    #: name of the optimization objective (``fidelity`` / ``critical_depth`` / ...)
    reward_name: str
    #: the applied pass/action trace, in order
    actions: list[str] = field(default_factory=list)
    #: whether the compilation flow reached the terminal "Done" state
    reached_done: bool = True
    #: name of the backend that produced this result (``rl``, ``qiskit-o3``, ...)
    backend: str = ""
    #: the compiled circuit scored under *every* reward function (empty on failure)
    scores: dict[str, float] = field(default_factory=dict)
    #: wall-clock compile time in seconds
    wall_time: float = 0.0
    #: False when compilation failed or did not produce an executable circuit
    succeeded: bool = True
    #: human-readable error description when ``succeeded`` is False
    error: str | None = None
    #: free-form extras (batch bookkeeping, best-of candidate scores, ...)
    metadata: dict = field(default_factory=dict)

    # -- compatibility aliases ---------------------------------------------------------

    @property
    def passes(self) -> list[str]:
        """Alias for :attr:`actions` (the old ``CompiledCircuit`` field name)."""
        return self.actions

    @property
    def objective(self) -> str:
        """Alias for :attr:`reward_name`."""
        return self.reward_name

    @property
    def trace(self) -> dict | None:
        """The request's span tree, when it was compiled under a trace.

        Populated by the compile service (``metadata["trace"]``): a JSON-able
        nested dict of ``{name, trace_id, span_id, duration, children, ...}``
        nodes — rebuild a :class:`~repro.obs.Span` tree with
        ``Span.from_dict(result.trace)``.  ``None`` for untraced requests.
        """
        return self.metadata.get("trace")

    # -- helpers -----------------------------------------------------------------------

    def with_objective(self, objective: str) -> "CompilationResult":
        """Return a copy whose headline ``reward`` tracks a different objective.

        Compilation itself is objective-independent for the preset backends, so
        a cached result can be re-pointed at another metric without recompiling.
        Falls back to the current reward when the score is unavailable.  Always
        returns a fresh object (with a fresh ``metadata`` dict) so callers can
        annotate it without touching cached state.
        """
        return replace(
            self,
            reward=self.scores.get(objective, self.reward),
            reward_name=objective,
            metadata=dict(self.metadata),
        )

    def to_dict(self) -> dict:
        """JSON-serialisable view of the result (the gateway's wire format).

        The circuit travels as OpenQASM 2 text and the device as its registered
        name, so the payload round-trips through ``json.dumps`` with no custom
        encoder.  Structured failure information (``succeeded`` / ``error`` /
        ``metadata`` — including the service's ``deadline_exceeded`` marker)
        rides along unchanged.
        """
        from ..circuit.qasm import to_qasm

        return {
            "qasm": to_qasm(self.circuit),
            "circuit_name": self.circuit.name,
            "device": self.device.name if self.device is not None else None,
            "reward": float(self.reward),
            "reward_name": self.reward_name,
            "actions": list(self.actions),
            "reached_done": bool(self.reached_done),
            "backend": self.backend,
            "scores": {name: float(value) for name, value in self.scores.items()},
            "wall_time": float(self.wall_time),
            "succeeded": bool(self.succeeded),
            "error": self.error,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CompilationResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. a gateway response).

        Raises ``KeyError`` when mandatory fields (``qasm`` / ``reward_name``)
        are missing and propagates :class:`~repro.circuit.QasmError` for a
        circuit that does not parse; an unknown device name degrades to
        ``device=None`` (recorded in ``metadata["unknown_device"]``) so results
        from a server with a richer device library still deserialise.
        """
        from ..circuit.qasm import from_qasm
        from ..devices.library import get_device

        circuit = from_qasm(payload["qasm"])
        circuit.name = payload.get("circuit_name") or circuit.name
        metadata = dict(payload.get("metadata") or {})
        device = None
        device_name = payload.get("device")
        if device_name is not None:
            try:
                device = get_device(device_name)
            except KeyError:
                metadata["unknown_device"] = device_name
        return cls(
            circuit=circuit,
            device=device,
            reward=float(payload.get("reward", 0.0)),
            reward_name=payload["reward_name"],
            actions=list(payload.get("actions") or []),
            reached_done=bool(payload.get("reached_done", True)),
            backend=payload.get("backend", ""),
            scores={k: float(v) for k, v in (payload.get("scores") or {}).items()},
            wall_time=float(payload.get("wall_time", 0.0)),
            succeeded=bool(payload.get("succeeded", True)),
            error=payload.get("error"),
            metadata=metadata,
        )

    def summary(self) -> str:
        device_name = self.device.name if self.device else "-"
        text = (
            f"{self.circuit.name}: reward[{self.reward_name}]={self.reward:.4f} "
            f"on {device_name} via {len(self.actions)} actions"
        )
        if self.backend:
            text += f" [{self.backend}]"
        if not self.succeeded:
            text += f" (FAILED: {self.error})"
        return text
