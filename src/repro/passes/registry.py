"""Pluggable pass registry: compilation passes register like backends do.

Mirrors :mod:`repro.api.registry`, one layer down.  A *pass* is anything
implementing the :class:`~repro.passes.base.BasePass` circuit-in/circuit-out
contract; registering it under a string name and a :class:`PassRole` makes it
addressable everywhere a pass can be named:

* the declarative preset schedules (:mod:`repro.compilers.presets`) resolve
  their stage slots through :func:`resolve_pass`, and
  ``preset_pass_manager(..., overrides={"routing": "tket-routing"})`` swaps
  any slot for any registered pass of the matching role;
* the RL action registry (:mod:`repro.core.actions`) derives its synthesis /
  mapping / optimization actions from the registered passes, so a newly
  registered pass becomes a new action without touching the MDP code;
* the gateway's ``GET /v1/passes`` endpoint serves :func:`pass_catalog` so
  HTTP clients can discover what they may put in a ``pass_overrides`` payload.

Roles are typed through ABC mixins (:class:`SynthesisPass`,
:class:`LayoutPass`, :class:`RoutingPass`, :class:`OptimizationPass`,
:class:`FinalisationPass`) in the style of qibo's ``Placer`` / ``Router`` /
``Optimizer`` protocols: a pass subclasses the mixin matching what it does,
and the registry validates the declared role at registration time.  All
built-in passes self-register when their module is imported (importing
:mod:`repro.passes` is enough); ``tools/check_pass_registry.py`` lints that
no concrete pass ships unregistered.

Names are normalised (``-`` and ``_`` are interchangeable), so the HTTP
spelling ``"tket-routing"`` and the Python spelling ``"tket_routing"``
resolve to the same entry.
"""

from __future__ import annotations

import threading
from abc import ABC
from dataclasses import dataclass
from typing import Callable

from .base import BasePass

__all__ = [
    "PassRole",
    "SynthesisPass",
    "LayoutPass",
    "RoutingPass",
    "OptimizationPass",
    "FinalisationPass",
    "UnknownPassError",
    "register_pass",
    "unregister_pass",
    "resolve_pass",
    "pass_factory",
    "pass_role",
    "available_passes",
    "registered_passes",
    "pass_catalog",
]


class PassRole:
    """The stage vocabulary: what slot of a compilation flow a pass can fill."""

    SYNTHESIS = "synthesis"
    LAYOUT = "layout"
    ROUTING = "routing"
    OPTIMIZATION = "optimization"
    FINALISATION = "finalisation"

    ALL = (SYNTHESIS, LAYOUT, ROUTING, OPTIMIZATION, FINALISATION)


class SynthesisPass(BasePass, ABC):
    """Role mixin: translates the circuit into a device's native gate set."""

    role = PassRole.SYNTHESIS


class LayoutPass(BasePass, ABC):
    """Role mixin: chooses the initial logical-to-physical qubit assignment."""

    role = PassRole.LAYOUT


class RoutingPass(BasePass, ABC):
    """Role mixin: inserts SWAPs until every 2q gate respects the coupling map."""

    role = PassRole.ROUTING


class OptimizationPass(BasePass, ABC):
    """Role mixin: rewrites the circuit to reduce gates/depth (device-agnostic)."""

    role = PassRole.OPTIMIZATION


class FinalisationPass(BasePass, ABC):
    """Role mixin: clean-up passes that close out a flow (safety nets)."""

    role = PassRole.FINALISATION


class UnknownPassError(KeyError):
    """Raised when resolving a pass name that is not registered."""

    def __init__(self, name: str, available: list[str], role: str | None = None):
        scope = f" with role {role!r}" if role else ""
        super().__init__(
            f"unknown compilation pass {name!r}{scope}; "
            f"available: {', '.join(available)}"
        )
        self.pass_name = name
        self.available = available


@dataclass(frozen=True)
class _Entry:
    """One registry row: the factory plus the metadata the catalog serves."""

    name: str
    factory: Callable[..., BasePass]
    role: str
    origin: str
    requires_device: bool


_LOCK = threading.Lock()
#: insertion-ordered — :func:`registered_passes` exposes registration order,
#: which is what keeps derived orderings (the RL action space) deterministic
_REGISTRY: dict[str, _Entry] = {}


def _normalise(name: str) -> str:
    """Registry names treat ``-`` and ``_`` as the same character."""
    return name.replace("-", "_")


def register_pass(
    name: str,
    factory: Callable[..., BasePass],
    *,
    role: str | None = None,
    overwrite: bool = False,
) -> None:
    """Register a pass factory under ``name`` for lookup by role and name.

    ``factory`` is a :class:`BasePass` subclass or a callable returning one;
    it must accept keyword arguments for any construction parameters
    (``resolve_pass(("optimize_1q_gates", {"basis": "u3"}))``).  ``role``
    defaults to the factory's declared role mixin; passing a conflicting role
    explicitly is an error — the mixin is the contract.
    """
    declared = getattr(factory, "role", None)
    if role is None:
        role = declared
    elif declared is not None and declared != role:
        raise ValueError(
            f"pass {name!r} declares role {declared!r} via its mixin but was "
            f"registered with role={role!r}; the declarations must agree"
        )
    if role not in PassRole.ALL:
        raise ValueError(
            f"pass {name!r} needs a role from {PassRole.ALL} (got {role!r}); "
            "subclass one of the role mixins or pass role= explicitly"
        )
    key = _normalise(name)
    entry = _Entry(
        name=key,
        factory=factory,
        role=role,
        origin=getattr(factory, "origin", "repro"),
        requires_device=bool(getattr(factory, "requires_device", False)),
    )
    with _LOCK:
        if key in _REGISTRY and not overwrite:
            raise ValueError(
                f"pass {key!r} is already registered; pass overwrite=True to replace it"
            )
        _REGISTRY[key] = entry


def unregister_pass(name: str) -> None:
    """Remove a previously registered pass (no-op if absent)."""
    with _LOCK:
        _REGISTRY.pop(_normalise(name), None)


def _lookup(name: str, role: str | None = None) -> _Entry:
    key = _normalise(name)
    with _LOCK:
        entry = _REGISTRY.get(key)
        available = sorted(
            e.name for e in _REGISTRY.values() if role is None or e.role == role
        )
    if entry is None or (role is not None and entry.role != role):
        raise UnknownPassError(name, available, role)
    return entry


def pass_factory(name: str, *, role: str | None = None) -> Callable[..., BasePass]:
    """The registered factory for ``name`` (optionally checked against ``role``)."""
    return _lookup(name, role).factory


def pass_role(name: str) -> str:
    """The role ``name`` was registered under."""
    return _lookup(name).role


def resolve_pass(spec, *, role: str | None = None) -> BasePass:
    """Turn a pass specification into a ready :class:`BasePass` instance.

    ``spec`` is a registered name (``"sabre_swap"``), a ``(name, kwargs)``
    pair (``("optimize_1q_gates", {"basis": "u3"})``), or an already-built
    :class:`BasePass` instance (returned as is).  ``role``, when given,
    additionally requires the resolved pass to fill that role — the
    validation behind stage overrides.
    """
    if isinstance(spec, BasePass):
        if role is not None and getattr(spec, "role", None) != role:
            raise ValueError(
                f"pass instance {spec.name!r} has role "
                f"{getattr(spec, 'role', None)!r}, expected {role!r}"
            )
        return spec
    if isinstance(spec, str):
        name, kwargs = spec, {}
    elif isinstance(spec, (tuple, list)) and len(spec) == 2 and isinstance(spec[0], str):
        name, kwargs = spec[0], dict(spec[1])
    else:
        raise TypeError(
            f"cannot resolve {spec!r} to a pass; expected a registered name, "
            "a (name, kwargs) pair, or a BasePass instance"
        )
    entry = _lookup(name, role)
    return entry.factory(**kwargs)


def available_passes(role: str | None = None) -> list[str]:
    """Sorted names of all registered passes (optionally one role only)."""
    with _LOCK:
        return sorted(
            entry.name
            for entry in _REGISTRY.values()
            if role is None or entry.role == role
        )


def registered_passes(role: str | None = None) -> list[str]:
    """Registered pass names in *registration order* (optionally one role only).

    Registration order is the stability anchor for everything derived from
    the registry — most importantly the RL action space, where newly
    registered passes must append after the existing actions.
    """
    with _LOCK:
        return [
            entry.name
            for entry in _REGISTRY.values()
            if role is None or entry.role == role
        ]


def pass_catalog(role: str | None = None) -> list[dict]:
    """The registry as plain data, registration-ordered.

    One dict per pass — ``name`` / ``role`` / ``origin`` /
    ``requires_device`` — serialisable as is; this is what the gateway's
    ``GET /v1/passes`` endpoint returns.
    """
    with _LOCK:
        return [
            {
                "name": entry.name,
                "role": entry.role,
                "origin": entry.origin,
                "requires_device": entry.requires_device,
            }
            for entry in _REGISTRY.values()
            if role is None or entry.role == role
        ]
