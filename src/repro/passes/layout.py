"""Layout passes: choosing an initial assignment of logical to physical qubits.

Three layout strategies mirror the ones used in the paper's instantiation:

* :class:`TrivialLayout` — identity assignment (Qiskit's ``TrivialLayout``).
* :class:`DenseLayout` — map the circuit onto the densest connected subgraph
  of the device (Qiskit's ``DenseLayout``).
* :class:`SabreLayout` — iterative refinement of the layout by routing the
  circuit forwards and backwards with the SABRE heuristic (Qiskit's
  ``SabreLayout``).

A layout pass does not change gate structure: it produces a circuit widened
to the device's qubit count with logical qubit *i* relabelled to its chosen
physical qubit, and records the assignment in ``context.initial_layout``.
"""

from __future__ import annotations

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..devices.device import CouplingMap, Device
from .base import AnalysisDomain, PassContext
from .registry import LayoutPass, register_pass

__all__ = ["apply_layout", "TrivialLayout", "DenseLayout", "SabreLayout"]

#: layout passes relabel qubits without touching gates, so the per-device
#: "only native gates" analysis survives them unchanged
_LAYOUT_PRESERVES = frozenset({AnalysisDomain.NATIVE_GATES})


def apply_layout(
    circuit: QuantumCircuit, layout: dict[int, int], device: Device
) -> QuantumCircuit:
    """Rewrite a circuit onto the device's physical qubits according to ``layout``."""
    missing = [q for q in circuit.active_qubits() if q not in layout]
    if missing:
        raise ValueError(f"layout does not assign logical qubits {missing}")
    used = list(layout.values())
    if len(set(used)) != len(used):
        raise ValueError("layout maps two logical qubits to the same physical qubit")
    full_mapping = dict(layout)
    # Logical qubits that never appear in a gate still need a slot so that the
    # remap is total; park them on unused physical qubits.
    free = [p for p in range(device.num_qubits) if p not in set(used)]
    for logical in range(circuit.num_qubits):
        if logical not in full_mapping:
            if not free:
                raise ValueError("device does not have enough qubits for this circuit")
            full_mapping[logical] = free.pop(0)
    out = circuit.remap_qubits(full_mapping, num_qubits=device.num_qubits)
    out.metadata["initial_layout"] = dict(layout)
    return out


def _circuit_interaction_counts(circuit: QuantumCircuit) -> dict[tuple[int, int], int]:
    counts: dict[tuple[int, int], int] = {}
    for instr in circuit:
        if instr.name == "barrier" or len(instr.qubits) != 2:
            continue
        key = (min(instr.qubits), max(instr.qubits))
        counts[key] = counts.get(key, 0) + 1
    return counts


class TrivialLayout(LayoutPass):
    """Assign logical qubit *i* to physical qubit *i*."""

    name = "trivial_layout"
    origin = "qiskit"
    requires_device = True
    preserves = _LAYOUT_PRESERVES

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        device = context.require_device()
        active = sorted(circuit.active_qubits()) or [0]
        if max(active) >= device.num_qubits:
            compact, _ = circuit.without_ancillas()
            if compact.num_qubits > device.num_qubits:
                raise ValueError(
                    f"circuit needs {compact.num_qubits} qubits but device "
                    f"{device.name} only has {device.num_qubits}"
                )
            circuit = compact
            active = sorted(circuit.active_qubits()) or [0]
        layout = {q: q for q in range(circuit.num_qubits) if q < device.num_qubits}
        context.initial_layout = {q: layout[q] for q in active}
        return apply_layout(circuit, context.initial_layout, device)


class DenseLayout(LayoutPass):
    """Map the circuit onto a dense (well-connected) region of the device.

    The densest region is found greedily: starting from the physical qubit of
    highest degree, repeatedly add the neighbouring qubit with the most
    connections into the already-selected region.  Logical qubits are then
    assigned to that region in decreasing order of their interaction count.
    """

    name = "dense_layout"
    origin = "qiskit"
    requires_device = True
    preserves = _LAYOUT_PRESERVES

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        device = context.require_device()
        circuit = self._fit_to_device(circuit, device)
        active = sorted(circuit.active_qubits()) or [0]
        region = self._dense_region(device.coupling_map, len(active))

        # Order logical qubits by how often they interact; busiest first.
        weights = {q: 0 for q in active}
        for (a, b), count in _circuit_interaction_counts(circuit).items():
            weights[a] = weights.get(a, 0) + count
            weights[b] = weights.get(b, 0) + count
        logical_order = sorted(active, key=lambda q: -weights.get(q, 0))
        # Order physical qubits by connectivity inside the chosen region.
        region_set = set(region)
        physical_order = sorted(
            region,
            key=lambda p: -len(device.coupling_map.neighbors(p) & region_set),
        )
        layout = {lq: physical_order[i] for i, lq in enumerate(logical_order)}
        context.initial_layout = layout
        return apply_layout(circuit, layout, device)

    @staticmethod
    def _fit_to_device(circuit: QuantumCircuit, device: Device) -> QuantumCircuit:
        if circuit.num_qubits <= device.num_qubits:
            return circuit
        compact, _ = circuit.without_ancillas()
        if compact.num_qubits > device.num_qubits:
            raise ValueError(
                f"circuit needs {compact.num_qubits} qubits but device "
                f"{device.name} only has {device.num_qubits}"
            )
        return compact

    @staticmethod
    def _dense_region(coupling: CouplingMap, size: int) -> list[int]:
        if size >= coupling.num_qubits:
            return list(range(coupling.num_qubits))
        start = max(range(coupling.num_qubits), key=coupling.degree)
        region = [start]
        region_set = {start}
        while len(region) < size:
            boundary: set[int] = set()
            for q in region:
                boundary |= coupling.neighbors(q) - region_set
            if not boundary:
                remaining = [q for q in range(coupling.num_qubits) if q not in region_set]
                boundary = set(remaining[:1])
            best = max(boundary, key=lambda q: len(coupling.neighbors(q) & region_set))
            region.append(best)
            region_set.add(best)
        return region


class SabreLayout(LayoutPass):
    """SABRE-style layout: refine a random initial layout by round-trip routing.

    The circuit is routed forwards and backwards with the SABRE swap
    heuristic; the final qubit positions of each pass become the initial
    layout of the next, which converges towards a layout adapted to the
    circuit's interaction pattern (Li, Ding & Xie, ASPLOS 2019).
    """

    name = "sabre_layout"
    origin = "qiskit"
    requires_device = True
    preserves = _LAYOUT_PRESERVES

    def __init__(self, iterations: int = 2, seed: int | None = None):
        self.iterations = iterations
        self.seed = seed

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        from .routing import SabreSwap  # local import to avoid a cycle

        device = context.require_device()
        circuit = DenseLayout._fit_to_device(circuit, device)
        active = sorted(circuit.active_qubits()) or [0]
        rng = np.random.default_rng(self.seed if self.seed is not None else context.seed)

        # Start from a dense-region random assignment.
        region = DenseLayout._dense_region(device.coupling_map, len(active))
        physical = list(region)
        rng.shuffle(physical)
        layout = {lq: physical[i] for i, lq in enumerate(active)}

        forward = circuit
        reverse = self._reverse_circuit(circuit)
        router = SabreSwap(seed=int(rng.integers(0, 2**31 - 1)))
        for iteration in range(2 * self.iterations):
            working = forward if iteration % 2 == 0 else reverse
            placed = apply_layout(working, layout, device)
            sub_context = PassContext(device=device, initial_layout=dict(layout), seed=context.seed)
            router.run(placed, sub_context)
            final = sub_context.final_layout or {}
            # The final physical position of each logical qubit seeds the next pass.
            layout = {lq: final.get(phys, phys) for lq, phys in layout.items()}

        context.initial_layout = dict(layout)
        return apply_layout(circuit, layout, device)

    @staticmethod
    def _reverse_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        for instr in reversed(circuit.instructions):
            if instr.name in ("measure", "reset", "barrier"):
                continue
            out._instructions.append(instr)
        return out


for _cls in (TrivialLayout, DenseLayout, SabreLayout):
    register_pass(_cls.name, _cls, overwrite=True)
del _cls
