"""Pass framework: the unified interface shared by every compilation action.

The paper's framework requires every compilation action — regardless of
which SDK inspired it — to consume and produce the same circuit
representation.  Here that contract is the :class:`BasePass` interface:
``run(circuit, context)`` returns a new :class:`QuantumCircuit` and never
mutates its input.  A :class:`PassContext` carries the target device (once
one has been selected in the MDP) and bookkeeping such as the current
layout and the RNG seed for stochastic passes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device

__all__ = ["PassContext", "BasePass", "PassSequence"]


@dataclass
class PassContext:
    """Shared state threaded through a sequence of passes."""

    device: Device | None = None
    initial_layout: dict[int, int] | None = None
    final_layout: dict[int, int] | None = None
    seed: int = 0
    properties: dict = field(default_factory=dict)

    def with_device(self, device: Device) -> "PassContext":
        return replace(self, device=device)

    def require_device(self) -> Device:
        if self.device is None:
            raise ValueError("this pass requires a target device to be selected")
        return self.device


class BasePass(ABC):
    """A single compilation pass with the unified circuit-in / circuit-out interface."""

    #: short machine-readable identifier (used by the RL action registry)
    name: str = "base"
    #: which SDK the pass emulates ("qiskit", "tket", or "repro")
    origin: str = "repro"
    #: True if the pass needs a device (synthesis / mapping passes)
    requires_device: bool = False

    @abstractmethod
    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        """Transform ``circuit`` and return a new circuit (never mutate the input)."""

    def __call__(self, circuit: QuantumCircuit, context: PassContext | None = None) -> QuantumCircuit:
        return self.run(circuit, context or PassContext())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class PassSequence(BasePass):
    """Run a fixed list of passes in order (used by the preset baseline compilers)."""

    def __init__(self, passes: list[BasePass], name: str = "sequence"):
        self.passes = list(passes)
        self.name = name
        self.requires_device = any(p.requires_device for p in self.passes)

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        for pass_ in self.passes:
            circuit = pass_.run(circuit, context)
        return circuit
