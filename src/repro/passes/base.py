"""Pass framework: the unified interface shared by every compilation action.

The paper's framework requires every compilation action — regardless of
which SDK inspired it — to consume and produce the same circuit
representation.  Here that contract is the :class:`BasePass` interface:
``run(circuit, context)`` returns a new :class:`QuantumCircuit` and never
mutates its input.  A :class:`PassContext` carries the target device (once
one has been selected in the MDP) and bookkeeping such as the current
layout and the RNG seed for stochastic passes.

Passes additionally declare which cached analysis results survive them via
:attr:`BasePass.preserves` — a set of :class:`AnalysisDomain` names.  The
pipeline layer (:mod:`repro.pipeline`) uses these declarations to carry
analysis results (feature vectors, DAGs, executability checks) forward from
the input circuit to the output circuit instead of recomputing them.  The
semantics are strict: a domain may only be declared preserved when the
analysis value is guaranteed *identical* for input and output circuit, for
every input.  Everything not preserved is considered invalidated
(:attr:`BasePass.invalidates`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device

__all__ = ["AnalysisDomain", "PassContext", "BasePass", "PassSequence"]


class AnalysisDomain:
    """Names of the cached analysis domains a pass can preserve.

    Mirrors the analyses in :mod:`repro.pipeline.properties`:

    * ``DAG`` — the :class:`~repro.circuit.dag.DAGCircuit` dependency view;
    * ``FEATURES`` — the seven-feature RL observation vector;
    * ``ACTIVE_QUBITS`` — the set of qubits touched by at least one gate;
    * ``NATIVE_GATES`` — the per-device "only native gates" check;
    * ``MAPPING`` — the per-device coupling-map-satisfied check.
    """

    DAG = "dag"
    FEATURES = "features"
    ACTIVE_QUBITS = "active_qubits"
    NATIVE_GATES = "native_gates"
    MAPPING = "mapping"

    ALL = frozenset({DAG, FEATURES, ACTIVE_QUBITS, NATIVE_GATES, MAPPING})


@dataclass
class PassContext:
    """Shared state threaded through a sequence of passes."""

    device: Device | None = None
    initial_layout: dict[int, int] | None = None
    final_layout: dict[int, int] | None = None
    seed: int = 0
    properties: dict = field(default_factory=dict)

    def with_device(self, device: Device) -> "PassContext":
        # replace() reuses field values, which would alias the mutable
        # ``properties`` dict between the copy and the original; give the
        # copy its own dict so later mutations cannot leak back.
        return replace(self, device=device, properties=dict(self.properties))

    def require_device(self) -> Device:
        if self.device is None:
            raise ValueError("this pass requires a target device to be selected")
        return self.device


class BasePass(ABC):
    """A single compilation pass with the unified circuit-in / circuit-out interface."""

    #: short machine-readable identifier (used by the RL action registry)
    name: str = "base"
    #: which SDK the pass emulates ("qiskit", "tket", or "repro")
    origin: str = "repro"
    #: the :class:`~repro.passes.registry.PassRole` slot this pass can fill;
    #: set by the role mixins in :mod:`repro.passes.registry` (``None`` for
    #: infrastructure passes that are not registrable stage substitutes)
    role: str | None = None
    #: True if the pass needs a device (synthesis / mapping passes)
    requires_device: bool = False
    #: analysis domains (see :class:`AnalysisDomain`) whose cached results are
    #: guaranteed unchanged between the input and the output circuit
    preserves: frozenset[str] = frozenset()

    @property
    def invalidates(self) -> frozenset[str]:
        """Analysis domains this pass may change (complement of ``preserves``)."""
        return AnalysisDomain.ALL - self.preserves

    @abstractmethod
    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        """Transform ``circuit`` and return a new circuit (never mutate the input)."""

    def __call__(self, circuit: QuantumCircuit, context: PassContext | None = None) -> QuantumCircuit:
        return self.run(circuit, context or PassContext())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class PassSequence(BasePass):
    """Run a fixed list of passes in order (used by the preset baseline compilers)."""

    def __init__(self, passes: list[BasePass], name: str = "sequence"):
        self.passes = list(passes)
        self.name = name
        self.requires_device = any(p.requires_device for p in self.passes)
        # A sequence preserves exactly what every member preserves.
        preserved = AnalysisDomain.ALL
        for pass_ in self.passes:
            preserved &= pass_.preserves
        self.preserves = preserved

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        for pass_ in self.passes:
            circuit = pass_.run(circuit, context)
        return circuit
