"""Gate-cancellation passes (Qiskit-style).

This module implements the cancellation actions of the MDP:

* :class:`CXCancellation` — cancel adjacent identical CX pairs.
* :class:`InverseCancellation` — cancel adjacent gate/inverse pairs.
* :class:`CommutativeCancellation` — cancel inverse pairs and merge rotations
  across gates they commute with.
* :class:`CommutativeInverseCancellation` — the same machinery applied to
  every invertible gate (Qiskit distinguishes the two passes by the gate
  families they consider).
* :class:`RemoveDiagonalGatesBeforeMeasure` — diagonal gates right before a
  Z-basis measurement do not affect outcome probabilities and are removed.
"""

from __future__ import annotations

import numpy as np

from ...circuit.circuit import QuantumCircuit
from ...circuit.gates import GATE_SPECS, Gate, Instruction
from ..base import PassContext
from ..registry import OptimizationPass, register_pass

__all__ = [
    "commutes",
    "CXCancellation",
    "InverseCancellation",
    "CommutativeCancellation",
    "CommutativeInverseCancellation",
    "RemoveDiagonalGatesBeforeMeasure",
]

_DIAGONAL_1Q = {"z", "s", "sdg", "t", "tdg", "rz", "p", "u1", "id"}
_DIAGONAL_2Q = {"cz", "cp", "rzz", "ccz"}
_X_AXIS_1Q = {"x", "sx", "sxdg", "rx"}


def commutes(first: Instruction, second: Instruction) -> bool:
    """Decide whether two instructions commute, using structural rules only.

    The rules are conservative: returning ``False`` is always safe, returning
    ``True`` is backed by one of the well-known commutation relations
    (disjoint supports, mutually diagonal gates, diagonal gates on a CX/CZ
    control, X-axis gates on a CX target, CX gates sharing a control or
    sharing a target).
    """
    shared = set(first.qubits) & set(second.qubits)
    if not shared:
        return True
    if not (first.gate.is_unitary and second.gate.is_unitary):
        return False
    spec_a, spec_b = first.gate.spec, second.gate.spec
    if spec_a.diagonal and spec_b.diagonal:
        return True

    for a, b in ((first, second), (second, first)):
        # Diagonal single-qubit gate acting on the control of a CX/CY commutes.
        if a.name in _DIAGONAL_1Q and b.name in ("cx", "cy", "cz", "cp", "crz", "ccx"):
            if all(q == b.qubits[0] or q not in b.qubits for q in a.qubits):
                if a.qubits[0] == b.qubits[0]:
                    return True
        # X-axis single-qubit gate acting on the target of a CX commutes.
        if a.name in _X_AXIS_1Q and b.name == "cx" and a.qubits[0] == b.qubits[1]:
            return True
        # RZZ-like symmetric diagonal gates commute with diagonal 1q gates.
        if a.name in _DIAGONAL_1Q and b.name in _DIAGONAL_2Q:
            return True
    # Two CX gates sharing only the control, or only the target, commute.
    if first.name == "cx" and second.name == "cx":
        same_control = first.qubits[0] == second.qubits[0]
        same_target = first.qubits[1] == second.qubits[1]
        if same_control and first.qubits[1] != second.qubits[1] and not same_target:
            return True
        if same_target and first.qubits[0] != second.qubits[0] and not same_control:
            return True
        if first.qubits == second.qubits:
            return True
    # Identical symmetric gates on the same pair commute trivially.
    if first.name == second.name and set(first.qubits) == set(second.qubits):
        if first.gate.spec.symmetric or first.qubits == second.qubits:
            return True
    return False


def _is_inverse_pair(first: Instruction, second: Instruction) -> bool:
    """Check whether ``second`` undoes ``first`` when applied right after it."""
    if not (first.gate.is_unitary and second.gate.is_unitary):
        return False
    spec = first.gate.spec
    same_qubits = first.qubits == second.qubits or (
        spec.symmetric and set(first.qubits) == set(second.qubits)
    )
    if not same_qubits:
        return False
    try:
        inverse = first.gate.inverse()
    except ValueError:
        return False
    return inverse.name == second.gate.name and np.allclose(
        inverse.params, second.gate.params, atol=1e-12
    )


class _WireStackCancellation(OptimizationPass):
    """Cancel pairs of adjacent gates using a per-wire stack (no commutation)."""

    def _cancellable(self, first: Instruction, second: Instruction) -> bool:
        raise NotImplementedError

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        out: list[Instruction | None] = []
        last_on_wire: dict[int, int] = {}
        for instr in circuit:
            wires = list(instr.qubits) + [-1 - c for c in instr.clbits]
            if instr.gate.is_unitary and instr.name != "barrier":
                indices = {last_on_wire.get(q) for q in instr.qubits}
                if len(indices) == 1 and None not in indices:
                    idx = indices.pop()
                    prev = out[idx]
                    if (
                        prev is not None
                        and set(prev.qubits) == set(instr.qubits)
                        and self._cancellable(prev, instr)
                    ):
                        out[idx] = None
                        for wire in [w for w, i in last_on_wire.items() if i == idx]:
                            del last_on_wire[wire]
                        continue
            out.append(instr)
            for wire in wires:
                last_on_wire[wire] = len(out) - 1
        result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        result.metadata = dict(circuit.metadata)
        result._instructions = [i for i in out if i is not None]
        return result


class CXCancellation(_WireStackCancellation):
    """Cancel back-to-back CX gates on the same control/target pair."""

    name = "cx_cancellation"
    origin = "qiskit"

    def _cancellable(self, first: Instruction, second: Instruction) -> bool:
        return first.name == "cx" and second.name == "cx" and first.qubits == second.qubits


class InverseCancellation(_WireStackCancellation):
    """Cancel adjacent gate/inverse pairs (self-inverse gates, s/sdg, t/tdg, ...)."""

    name = "inverse_cancellation"
    origin = "qiskit"

    def _cancellable(self, first: Instruction, second: Instruction) -> bool:
        return _is_inverse_pair(first, second)


class _CommutationCancellation(OptimizationPass):
    """Cancel inverse pairs and merge rotations across commuting gates."""

    #: gate names considered by the pass (None = all unitary gates)
    considered: frozenset[str] | None = None
    #: rotations that may be merged when they meet across a commuting region
    _mergeable = frozenset({"rz", "p", "rx", "ry", "rzz", "cp", "crz"})

    #: upper bound on full sweeps, to keep worst-case runtime predictable
    max_sweeps = 4

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        instructions: list[Instruction | None] = list(circuit)
        for _ in range(self.max_sweeps):
            if not self._sweep(instructions):
                break
        result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        result.metadata = dict(circuit.metadata)
        result._instructions = [i for i in instructions if i is not None]
        return result

    def _considered(self, instr: Instruction) -> bool:
        if not instr.gate.is_unitary or instr.name == "barrier":
            return False
        if self.considered is None:
            return True
        return instr.name in self.considered

    def _sweep(self, instructions: list[Instruction | None]) -> bool:
        changed = False
        for i, instr in enumerate(instructions):
            if instr is None or not self._considered(instr):
                continue
            partner = self._find_partner(instructions, i)
            if partner is None:
                continue
            j, kind = partner
            other = instructions[j]
            assert other is not None
            if kind == "cancel":
                instructions[i] = None
                instructions[j] = None
                changed = True
            elif kind == "merge":
                angle = instr.params[0] + other.params[0]
                angle = (angle + np.pi) % (2 * np.pi) - np.pi
                instructions[i] = None
                if abs(angle) < 1e-12:
                    instructions[j] = None
                else:
                    instructions[j] = Instruction(Gate(other.name, (angle,)), other.qubits)
                changed = True
        return changed

    def _find_partner(
        self, instructions: list[Instruction | None], start: int
    ) -> tuple[int, str] | None:
        instr = instructions[start]
        assert instr is not None
        for j in range(start + 1, len(instructions)):
            other = instructions[j]
            if other is None:
                continue
            if not set(other.qubits) & set(instr.qubits):
                continue
            if _is_inverse_pair(instr, other):
                return j, "cancel"
            if (
                instr.name == other.name
                and instr.name in self._mergeable
                and instr.qubits == other.qubits
            ):
                return j, "merge"
            if not commutes(instr, other):
                return None
        return None


class CommutativeCancellation(_CommutationCancellation):
    """Qiskit's ``CommutativeCancellation``: self-inverse and rotation gates only."""

    name = "commutative_cancellation"
    origin = "qiskit"
    considered = frozenset(
        {"cx", "cz", "cy", "x", "y", "z", "h", "t", "tdg", "s", "sdg", "rz", "rx", "ry", "p", "rzz", "cp", "crz", "swap"}
    )


class CommutativeInverseCancellation(_CommutationCancellation):
    """Qiskit's ``CommutativeInverseCancellation``: every invertible gate considered."""

    name = "commutative_inverse_cancellation"
    origin = "qiskit"
    considered = None


class RemoveDiagonalGatesBeforeMeasure(OptimizationPass):
    """Remove diagonal gates that sit immediately before Z-basis measurements."""

    name = "remove_diagonal_before_measure"
    origin = "qiskit"

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        instructions: list[Instruction | None] = list(circuit)
        changed = True
        while changed:
            changed = False
            next_on_wire = self._next_op_map(instructions)
            for i, instr in enumerate(instructions):
                if instr is None:
                    continue
                diagonal = instr.name in _DIAGONAL_1Q | _DIAGONAL_2Q
                if not diagonal or instr.name == "id":
                    continue
                followers = [next_on_wire.get((i, q)) for q in instr.qubits]
                if all(
                    f is not None
                    and instructions[f] is not None
                    and instructions[f].name == "measure"
                    for f in followers
                ):
                    instructions[i] = None
                    changed = True
        result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        result.metadata = dict(circuit.metadata)
        result._instructions = [i for i in instructions if i is not None]
        return result

    @staticmethod
    def _next_op_map(instructions: list[Instruction | None]) -> dict[tuple[int, int], int]:
        """Map (instruction index, qubit) -> index of the next instruction on that qubit."""
        next_map: dict[tuple[int, int], int] = {}
        last_seen: dict[int, int] = {}
        for i, instr in enumerate(instructions):
            if instr is None or instr.name == "barrier":
                continue
            for q in instr.qubits:
                if q in last_seen:
                    next_map[(last_seen[q], q)] = i
                last_seen[q] = i
        return next_map


for _cls in (
    CXCancellation,
    InverseCancellation,
    CommutativeCancellation,
    CommutativeInverseCancellation,
    RemoveDiagonalGatesBeforeMeasure,
):
    register_pass(_cls.name, _cls, overwrite=True)
del _cls
