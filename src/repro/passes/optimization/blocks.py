"""Two-qubit block collection and re-synthesis passes.

``Collect2qBlocks`` + ``ConsolidateBlocks`` (Qiskit) and
``PeepholeOptimise2Q`` / ``FullPeepholeOptimise`` (TKET) all share the same
core idea: find maximal sub-circuits that act on a single pair of qubits,
compute their 4x4 unitary, and replace the block with a fresh synthesis
whenever that is cheaper.

The re-synthesis uses the exact Weyl-based :func:`repro.linalg.synthesize_2q`
(two CX per non-trivial canonical axis).  It therefore never increases the
entangling-gate count of a block that is accepted, but — unlike the
SDK implementations it models — it does not guarantee the theoretical
3-CX optimum for every block (see DESIGN.md for this documented deviation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...circuit.circuit import QuantumCircuit
from ...circuit.gates import Gate, Instruction, gate_matrix
from ...linalg.decompositions import synthesize_1q, synthesize_2q
from ...linalg.unitaries import allclose_up_to_global_phase
from ..base import PassContext
from ..registry import OptimizationPass, register_pass
from .cancellation import CXCancellation, InverseCancellation
from .one_qubit import Optimize1qGatesDecomposition, RemoveRedundancies

__all__ = [
    "TwoQubitBlock",
    "collect_2q_blocks",
    "Collect2qBlocksConsolidate",
    "PeepholeOptimise2Q",
    "OptimizeCliffords",
    "CliffordSimp",
    "FullPeepholeOptimise",
]


@dataclass
class TwoQubitBlock:
    """A maximal run of gates acting on one qubit pair."""

    qubits: tuple[int, int]
    indices: list[int]

    def __len__(self) -> int:
        return len(self.indices)


def collect_2q_blocks(circuit: QuantumCircuit) -> list[TwoQubitBlock]:
    """Find maximal blocks of unitary gates confined to a single qubit pair.

    A block is seeded by a two-qubit gate and grown forwards and backwards
    over instructions that act only on the block's two qubits.  Instructions
    already claimed by an earlier block are skipped.
    """
    instructions = circuit.instructions
    claimed: set[int] = set()
    blocks: list[TwoQubitBlock] = []

    # For every instruction index and qubit, the previous/next instruction index
    # touching that qubit.
    prev_on_wire: dict[tuple[int, int], int] = {}
    next_on_wire: dict[tuple[int, int], int] = {}
    last_seen: dict[int, int] = {}
    for i, instr in enumerate(instructions):
        for q in instr.qubits:
            if q in last_seen:
                prev_on_wire[(i, q)] = last_seen[q]
                next_on_wire[(last_seen[q], q)] = i
            last_seen[q] = i

    def usable(index: int, pair: set[int]) -> bool:
        if index in claimed:
            return False
        instr = instructions[index]
        if not instr.gate.is_unitary or instr.name == "barrier":
            return False
        return set(instr.qubits) <= pair

    for i, instr in enumerate(instructions):
        if i in claimed or instr.name == "barrier" or not instr.gate.is_unitary:
            continue
        if len(instr.qubits) != 2:
            continue
        pair = set(instr.qubits)
        members = {i}
        # grow forward: follow both wires simultaneously
        frontier = [i]
        while frontier:
            current = frontier.pop()
            for q in instructions[current].qubits:
                nxt = next_on_wire.get((current, q))
                if nxt is not None and nxt not in members and usable(nxt, pair):
                    # ensure *all* wires of the candidate connect back into the block
                    cand = instructions[nxt]
                    ok = all(
                        prev_on_wire.get((nxt, cq)) in members
                        or prev_on_wire.get((nxt, cq)) is None
                        for cq in cand.qubits
                    )
                    if ok:
                        members.add(nxt)
                        frontier.append(nxt)
        # grow backward
        frontier = [i]
        while frontier:
            current = frontier.pop()
            for q in instructions[current].qubits:
                prv = prev_on_wire.get((current, q))
                if prv is not None and prv not in members and usable(prv, pair):
                    cand = instructions[prv]
                    ok = all(
                        next_on_wire.get((prv, cq)) in members
                        or next_on_wire.get((prv, cq)) is None
                        for cq in cand.qubits
                    )
                    if ok:
                        members.add(prv)
                        frontier.append(prv)
        indices = sorted(members)
        claimed |= members
        qubits = tuple(sorted(pair))
        blocks.append(TwoQubitBlock((qubits[0], qubits[1]), indices))
    return blocks


def _block_unitary(circuit: QuantumCircuit, block: TwoQubitBlock) -> np.ndarray:
    """4x4 unitary of a block, with block.qubits[0] as the most significant qubit."""
    local = {block.qubits[0]: 0, block.qubits[1]: 1}
    total = np.eye(4, dtype=complex)
    for index in block.indices:
        instr = circuit.instructions[index]
        matrix = gate_matrix(instr.gate)
        if len(instr.qubits) == 1:
            if local[instr.qubits[0]] == 0:
                matrix = np.kron(matrix, np.eye(2))
            else:
                matrix = np.kron(np.eye(2), matrix)
        else:
            if tuple(local[q] for q in instr.qubits) == (1, 0):
                swap = gate_matrix(Gate("swap"))
                matrix = swap @ matrix @ swap
        total = matrix @ total
    return total


def _count_2q(instructions: list[Instruction]) -> int:
    return sum(1 for i in instructions if len(i.qubits) == 2)


class _BlockResynthesis(OptimizationPass):
    """Shared implementation of block collection + re-synthesis."""

    #: accept a replacement only if it strictly reduces 2q gates (Qiskit style)
    #: or also on ties with fewer total gates (TKET peephole style)
    accept_on_tie = False
    #: minimum number of 2q gates in a block for it to be considered
    min_block_2q = 2

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        basis_1q = (
            context.device.gate_set.basis_1q if context.device is not None else "rz_sx"
        )
        blocks = collect_2q_blocks(circuit)
        replacements: dict[int, list[Instruction]] = {}
        removed: set[int] = set()
        for block in blocks:
            old_instructions = [circuit.instructions[i] for i in block.indices]
            old_2q = _count_2q(old_instructions)
            if old_2q < self.min_block_2q:
                continue
            unitary = _block_unitary(circuit, block)
            try:
                ops, _ = synthesize_2q(unitary, basis_1q=basis_1q)
            except RuntimeError:
                continue
            local = {0: block.qubits[0], 1: block.qubits[1]}
            new_instructions = [
                Instruction(gate, tuple(local[q] for q in qubits)) for gate, qubits in ops
            ]
            new_2q = _count_2q(new_instructions)
            better = new_2q < old_2q or (
                self.accept_on_tie
                and new_2q == old_2q
                and len(new_instructions) < len(old_instructions)
            )
            if not better:
                continue
            replacements[block.indices[0]] = new_instructions
            removed |= set(block.indices)

        if not replacements:
            return circuit.copy()
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        out.metadata = dict(circuit.metadata)
        for i, instr in enumerate(circuit.instructions):
            if i in replacements:
                out._instructions.extend(replacements[i])
            if i in removed:
                continue
            out._instructions.append(instr)
        return out


class Collect2qBlocksConsolidate(_BlockResynthesis):
    """Qiskit's ``Collect2qBlocks`` + ``ConsolidateBlocks`` as a single action."""

    name = "consolidate_blocks"
    origin = "qiskit"
    accept_on_tie = False


class PeepholeOptimise2Q(_BlockResynthesis):
    """TKET's ``PeepholeOptimise2Q``: block re-synthesis plus 1q clean-up."""

    name = "peephole_optimise_2q"
    origin = "tket"
    accept_on_tie = True

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        circuit = super().run(circuit, context)
        circuit = Optimize1qGatesDecomposition().run(circuit, context)
        return RemoveRedundancies().run(circuit, context)


# ---------------------------------------------------------------------------
# Clifford-focused passes
# ---------------------------------------------------------------------------

_CLIFFORD_1Q = ("id", "x", "y", "z", "h", "s", "sdg", "sx", "sxdg")
_CLIFFORD_2Q = ("cx", "cz", "swap", "iswap")


def _clifford_words() -> list[tuple[tuple[str, ...], np.ndarray]]:
    """Shortest word (over H, S, X, Z, SX) for each of the 24 1q Cliffords."""
    generators = {
        "h": gate_matrix(Gate("h")),
        "s": gate_matrix(Gate("s")),
        "sdg": gate_matrix(Gate("sdg")),
        "x": gate_matrix(Gate("x")),
        "z": gate_matrix(Gate("z")),
        "sx": gate_matrix(Gate("sx")),
    }
    found: list[tuple[tuple[str, ...], np.ndarray]] = [((), np.eye(2, dtype=complex))]
    seen_keys = {_phase_key(np.eye(2, dtype=complex))}
    frontier = [((), np.eye(2, dtype=complex))]
    while frontier:
        next_frontier = []
        for word, matrix in frontier:
            for name, gen in generators.items():
                candidate = gen @ matrix
                key = _phase_key(candidate)
                if key not in seen_keys:
                    seen_keys.add(key)
                    entry = (word + (name,), candidate)
                    found.append(entry)
                    next_frontier.append(entry)
        frontier = next_frontier
    return found


def _phase_key(matrix: np.ndarray) -> tuple:
    flat = matrix.flatten()
    idx = int(np.argmax(np.abs(flat) > 1e-9))
    normalised = flat / flat[idx]
    return tuple(np.round(normalised.real, 6)) + tuple(np.round(normalised.imag, 6))


_CLIFFORD_TABLE: list[tuple[tuple[str, ...], np.ndarray]] | None = None


def _lookup_clifford(matrix: np.ndarray) -> tuple[str, ...] | None:
    global _CLIFFORD_TABLE
    if _CLIFFORD_TABLE is None:
        _CLIFFORD_TABLE = _clifford_words()
    for word, candidate in _CLIFFORD_TABLE:
        if allclose_up_to_global_phase(candidate, matrix):
            return word
    return None


class OptimizeCliffords(OptimizationPass):
    """Qiskit-style Clifford optimization (simplified).

    Runs of adjacent single-qubit Clifford gates are folded into their
    shortest word over {H, S, S†, X, Z, SX}; adjacent self-inverse Clifford
    pairs (CX-CX, CZ-CZ, H-H, ...) are cancelled.
    """

    name = "optimize_cliffords"
    origin = "qiskit"

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        out.metadata = dict(circuit.metadata)
        pending: dict[int, list[Instruction]] = {}

        def flush(qubit: int) -> None:
            run = pending.pop(qubit, [])
            if not run:
                return
            out.extend(self._fold(run, qubit))

        for instr in circuit:
            if (
                instr.gate.is_unitary
                and len(instr.qubits) == 1
                and instr.name in _CLIFFORD_1Q
            ):
                pending.setdefault(instr.qubits[0], []).append(instr)
                continue
            for qubit in instr.qubits:
                flush(qubit)
            out._instructions.append(instr)
        for qubit in sorted(pending):
            flush(qubit)
        return InverseCancellation().run(out, context)

    @staticmethod
    def _fold(run: list[Instruction], qubit: int) -> list[Instruction]:
        if len(run) == 1 and run[0].name != "id":
            return run
        product = np.eye(2, dtype=complex)
        for instr in run:
            product = gate_matrix(instr.gate) @ product
        word = _lookup_clifford(product)
        if word is None:
            return run
        replacement = [Instruction(Gate(name), (qubit,)) for name in word]
        return replacement if len(replacement) <= len(run) else run


class CliffordSimp(OptimizationPass):
    """TKET-style Clifford simplification (simplified).

    Combines single-qubit Clifford folding, inverse-pair cancellation and
    two-qubit block re-synthesis restricted to Clifford-only blocks, which is
    where TKET's pass gets most of its two-qubit gate reductions.
    """

    name = "clifford_simp"
    origin = "tket"

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        circuit = OptimizeCliffords().run(circuit, context)
        circuit = CXCancellation().run(circuit, context)
        # Re-synthesise Clifford-only 2q blocks.
        resynth = _CliffordBlockResynthesis()
        circuit = resynth.run(circuit, context)
        return InverseCancellation().run(circuit, context)


class _CliffordBlockResynthesis(_BlockResynthesis):
    """Block re-synthesis that only touches blocks made of Clifford gates."""

    name = "clifford_block_resynthesis"
    accept_on_tie = True
    min_block_2q = 2

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        # Mark non-Clifford instructions as barriers for the purposes of block
        # collection by filtering blocks afterwards instead: simpler and safe.
        blocks = collect_2q_blocks(circuit)
        clifford_indices: set[int] = set()
        for block in blocks:
            instrs = [circuit.instructions[i] for i in block.indices]
            if all(i.gate.spec.clifford for i in instrs):
                clifford_indices |= set(block.indices)
        if not clifford_indices:
            return circuit.copy()
        return super().run(circuit, context)


class FullPeepholeOptimise(OptimizationPass):
    """TKET's ``FullPeepholeOptimise``: the strongest TKET optimization combo."""

    name = "full_peephole_optimise"
    origin = "tket"

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        circuit = RemoveRedundancies().run(circuit, context)
        circuit = Optimize1qGatesDecomposition().run(circuit, context)
        circuit = PeepholeOptimise2Q().run(circuit, context)
        circuit = CliffordSimp().run(circuit, context)
        return RemoveRedundancies().run(circuit, context)


for _cls in (
    Collect2qBlocksConsolidate,
    PeepholeOptimise2Q,
    OptimizeCliffords,
    CliffordSimp,
    FullPeepholeOptimise,
):
    register_pass(_cls.name, _cls, overwrite=True)
del _cls
