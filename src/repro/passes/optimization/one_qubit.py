"""Single-qubit gate optimization passes."""

from __future__ import annotations

import numpy as np

from ...circuit.circuit import QuantumCircuit
from ...circuit.gates import Gate, Instruction, gate_matrix
from ...linalg.decompositions import synthesize_1q
from ...linalg.kernels import (
    allclose_up_to_global_phase_batch,
    gate_matrices_batch,
    run_products_batch,
    synthesize_1q_batch,
)
from ...linalg.unitaries import allclose_up_to_global_phase
from ...profiling import profiled
from ..base import AnalysisDomain, PassContext
from ..registry import OptimizationPass, register_pass

__all__ = ["Optimize1qGatesDecomposition", "RemoveRedundancies"]

_ROTATION_AXES = {"rz": "z", "rx": "x", "ry": "y", "p": "z"}


class Optimize1qGatesDecomposition(OptimizationPass):
    """Fuse runs of single-qubit gates and re-emit them in an Euler basis.

    Mirrors Qiskit's ``Optimize1qGatesDecomposition``: every maximal run of
    consecutive single-qubit gates on a wire is multiplied into one 2x2
    unitary and re-synthesised.  The replacement is only kept when it is not
    longer than the original run; runs that multiply to the identity are
    removed entirely.
    """

    name = "optimize_1q_gates"
    origin = "qiskit"
    # Only single-qubit runs are rewritten: the multi-qubit gate structure —
    # and with it the per-device coupling-map check — is untouched.
    preserves = frozenset({AnalysisDomain.MAPPING})

    def __init__(self, basis: str | None = None):
        self.basis = basis

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        basis = self.basis
        if basis is None:
            basis = (
                context.device.gate_set.basis_1q if context.device is not None else "u3"
            )
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        out.metadata = dict(circuit.metadata)
        # One sweep collects every maximal 1q run into ``runs`` and leaves an
        # integer placeholder in ``slots``; the batch resynthesis then fills
        # the placeholders.  Output order is identical to the old per-flush
        # appends: a placeholder sits exactly where the flush used to emit.
        slots: list[Instruction | int] = []
        runs: list[tuple[list[Instruction], int]] = []
        pending: dict[int, list[Instruction]] = {}

        def flush(qubit: int) -> None:
            run = pending.pop(qubit, None)
            if not run:
                return
            slots.append(len(runs))
            runs.append((run, qubit))

        for instr in circuit:
            if instr.gate.is_unitary and len(instr.qubits) == 1:
                pending.setdefault(instr.qubits[0], []).append(instr)
                continue
            for qubit in instr.qubits:
                flush(qubit)
            slots.append(instr)
        for qubit in sorted(pending):
            flush(qubit)

        replacements = self._resynthesize_batch(runs, basis)
        instructions = out._instructions
        for slot in slots:
            if type(slot) is int:
                instructions.extend(replacements[slot])
            else:
                instructions.append(slot)
        return out

    _BASIS_GATE_NAMES = {
        "rz_sx": {"rz", "sx", "x"},
        "rz_rx": {"rz", "rx"},
        "rz_ry": {"rz", "ry"},
        "u3": {"u", "u3"},
    }

    @classmethod
    def _resynthesize_batch(
        cls, runs: list[tuple[list[Instruction], int]], basis: str
    ) -> list[list[Instruction]]:
        """Resynthesise all collected runs at once via the batched kernels.

        Semantics match ``_resynthesize`` per run exactly — same early-keep
        rule, same identity drop, same accept-if-shorter-or-out-of-basis —
        but the matrix products, identity checks and Euler synthesis all run
        over ``(N, 2, 2)`` stacks instead of per-gate Python loops.
        """
        basis_names = cls._BASIS_GATE_NAMES.get(basis, set())
        results: list[list[Instruction] | None] = [None] * len(runs)
        work: list[tuple[int, list[Instruction], int, bool]] = []
        for run_index, (run, qubit) in enumerate(runs):
            already_in_basis = all(instr.name in basis_names for instr in run)
            if len(run) == 1 and run[0].name != "id" and already_in_basis:
                results[run_index] = run
            else:
                work.append((run_index, run, qubit, already_in_basis))
        if not work:
            return results  # type: ignore[return-value]

        flat_gates = [instr.gate for _, run, _, _ in work for instr in run]
        with profiled("pass.optimize_1q_gates.batch", items=len(flat_gates)):
            products = run_products_batch(
                gate_matrices_batch(flat_gates), [len(run) for _, run, _, _ in work]
            )
            is_identity = allclose_up_to_global_phase_batch(
                products, np.eye(2, dtype=complex)
            )
            synth_positions = []
            for pos, (run_index, _, _, _) in enumerate(work):
                if is_identity[pos]:
                    results[run_index] = []
                else:
                    synth_positions.append(pos)
            if synth_positions:
                decomps = synthesize_1q_batch(products[synth_positions], basis)
                for decomp, pos in zip(decomps, synth_positions):
                    run_index, run, qubit, already_in_basis = work[pos]
                    replacement = [Instruction(gate, (qubit,)) for gate in decomp.gates]
                    if len(replacement) <= len(run) or not already_in_basis:
                        results[run_index] = replacement
                    else:
                        results[run_index] = run
        return results  # type: ignore[return-value]

    @classmethod
    def _resynthesize(cls, run: list[Instruction], qubit: int, basis: str) -> list[Instruction]:
        basis_names = cls._BASIS_GATE_NAMES.get(basis, set())
        already_in_basis = all(instr.name in basis_names for instr in run)
        if len(run) == 1 and run[0].name != "id" and already_in_basis:
            return run
        product = np.eye(2, dtype=complex)
        for instr in run:
            product = gate_matrix(instr.gate) @ product
        if allclose_up_to_global_phase(product, np.eye(2)):
            return []
        decomp = synthesize_1q(product, basis)
        replacement = [Instruction(gate, (qubit,)) for gate in decomp.gates]
        # Accept the replacement when it is shorter, or when it moves the run
        # into the target basis (Qiskit's pass weighs out-of-basis gates as
        # more expensive than extra in-basis gates).
        if len(replacement) <= len(run) or not already_in_basis:
            return replacement
        return run


class RemoveRedundancies(OptimizationPass):
    """TKET-style redundancy removal.

    Removes rotations with angle zero (mod 2*pi), merges adjacent rotations
    about the same axis on the same qubit, cancels adjacent gate/inverse
    pairs, and drops identity gates.
    """

    name = "remove_redundancies"
    origin = "tket"

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        instructions = [i for i in circuit if i.name != "id"]
        # Incremental worklist: the first sweep considers every wire; later
        # sweeps only attempt rewrites on instructions touching a wire that
        # changed in the previous sweep (a merge, cancellation or dropped
        # zero-rotation can only unlock new rewrites on its own wires).
        # Output is identical to iterating ``_single_pass`` to fixed point.
        active: set[int] | None = None
        while True:
            instructions, changed_wires = self._incremental_pass(instructions, active)
            if not changed_wires:
                break
            active = changed_wires
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        out.metadata = dict(circuit.metadata)
        out._instructions = instructions
        return out

    def _incremental_pass(
        self, instructions: list[Instruction], active: set[int] | None
    ) -> tuple[list[Instruction], set[int]]:
        """One sweep; rewrites are attempted only on ``active`` wires.

        ``active is None`` means "all wires" (the first sweep).  Returns the
        rewritten list and the set of wires that changed, which becomes the
        next sweep's worklist.  Merge/cancel bookkeeping pops exactly the
        removed instruction's own wires instead of scanning every wire the
        way ``_forget`` does.
        """
        out: list[Instruction] = []
        last_on_wire: dict[int, int] = {}
        changed: set[int] = set()
        for instr in instructions:
            considered = active is None or not active.isdisjoint(instr.qubits)
            if considered:
                if self._is_zero_rotation(instr):
                    changed.update(instr.qubits)
                    continue
                if instr.gate.is_unitary and instr.name != "barrier":
                    prev_idx = self._common_previous(instr, last_on_wire, out)
                    if prev_idx is not None:
                        merged = self._merge(out[prev_idx], instr)
                        if merged is not None:
                            out[prev_idx] = None  # type: ignore[call-overload]
                            # The wires pointing at ``prev_idx`` are exactly the
                            # merged pair's qubits (unitary gates have no clbits).
                            for qubit in instr.qubits:
                                last_on_wire.pop(qubit, None)
                            changed.update(instr.qubits)
                            if merged == "cancel":
                                continue
                            instr = merged
            out.append(instr)
            for qubit in instr.qubits:
                last_on_wire[qubit] = len(out) - 1
            for clbit in instr.clbits:
                last_on_wire[-1 - clbit] = len(out) - 1
        return [i for i in out if i is not None], changed

    def _single_pass(self, instructions: list[Instruction]) -> tuple[list[Instruction], bool]:
        out: list[Instruction] = []
        # index of the most recent instruction (in ``out``) on each wire
        last_on_wire: dict[int, int] = {}
        changed = False
        for instr in instructions:
            if self._is_zero_rotation(instr):
                changed = True
                continue
            if instr.gate.is_unitary and instr.name != "barrier":
                prev_idx = self._common_previous(instr, last_on_wire, out)
                if prev_idx is not None:
                    prev = out[prev_idx]
                    merged = self._merge(prev, instr)
                    if merged is not None:
                        changed = True
                        out[prev_idx] = None  # type: ignore[call-overload]
                        self._forget(prev_idx, last_on_wire)
                        if merged == "cancel":
                            continue
                        instr = merged
            out.append(instr)
            for qubit in instr.qubits:
                last_on_wire[qubit] = len(out) - 1
            for clbit in instr.clbits:
                last_on_wire[-1 - clbit] = len(out) - 1
        return [i for i in out if i is not None], changed

    @staticmethod
    def _is_zero_rotation(instr: Instruction) -> bool:
        if instr.name in ("rz", "rx", "ry", "p", "rzz", "rxx", "ryy", "rzx", "cp", "crx", "cry", "crz"):
            angle = instr.params[0] % (2 * np.pi)
            return min(angle, 2 * np.pi - angle) < 1e-12
        return False

    @staticmethod
    def _common_previous(
        instr: Instruction, last_on_wire: dict[int, int], out: list[Instruction]
    ) -> int | None:
        indices = {last_on_wire.get(q) for q in instr.qubits}
        if len(indices) != 1 or None in indices:
            return None
        idx = indices.pop()
        prev = out[idx]
        if prev is None or set(prev.qubits) != set(instr.qubits):
            return None
        return idx

    @staticmethod
    def _forget(index: int, last_on_wire: dict[int, int]) -> None:
        for wire in [w for w, i in last_on_wire.items() if i == index]:
            del last_on_wire[wire]

    @staticmethod
    def _merge(prev: Instruction, instr: Instruction):
        """Try to merge/cancel two adjacent gates on identical wires."""
        if not prev.gate.is_unitary:
            return None
        # Same-axis rotation merging (requires identical qubit order).
        if (
            prev.name == instr.name
            and prev.name in ("rz", "rx", "ry", "p", "rzz", "rxx", "ryy", "rzx", "cp", "crz", "crx", "cry")
            and prev.qubits == instr.qubits
        ):
            angle = prev.params[0] + instr.params[0]
            angle = (angle + np.pi) % (2 * np.pi) - np.pi
            if abs(angle) < 1e-12:
                return "cancel"
            return Instruction(Gate(prev.name, (angle,)), instr.qubits)
        # Exact inverse cancellation.
        try:
            inverse = instr.gate.inverse()
        except ValueError:
            return None
        spec = instr.gate.spec
        same_qubits = prev.qubits == instr.qubits or (
            spec.symmetric and set(prev.qubits) == set(instr.qubits)
        )
        if not same_qubits:
            return None
        if prev.gate.name == inverse.name and np.allclose(prev.gate.params, inverse.params, atol=1e-12):
            return "cancel"
        return None


for _cls in (Optimize1qGatesDecomposition, RemoveRedundancies):
    register_pass(_cls.name, _cls, overwrite=True)
del _cls
