"""Device-independent and device-dependent optimization passes."""

from .blocks import (
    CliffordSimp,
    Collect2qBlocksConsolidate,
    FullPeepholeOptimise,
    OptimizeCliffords,
    PeepholeOptimise2Q,
    collect_2q_blocks,
)
from .cancellation import (
    CommutativeCancellation,
    CommutativeInverseCancellation,
    CXCancellation,
    InverseCancellation,
    RemoveDiagonalGatesBeforeMeasure,
    commutes,
)
from .one_qubit import Optimize1qGatesDecomposition, RemoveRedundancies

__all__ = [
    "Optimize1qGatesDecomposition",
    "RemoveRedundancies",
    "CXCancellation",
    "InverseCancellation",
    "CommutativeCancellation",
    "CommutativeInverseCancellation",
    "RemoveDiagonalGatesBeforeMeasure",
    "commutes",
    "Collect2qBlocksConsolidate",
    "PeepholeOptimise2Q",
    "OptimizeCliffords",
    "CliffordSimp",
    "FullPeepholeOptimise",
    "collect_2q_blocks",
]
