"""Routing passes: making two-qubit gates conform to the device topology.

All routers share the same contract: the input circuit is already expressed
on the device's physical qubits (a layout pass has been applied) and contains
only one- and two-qubit operations.  The router emits a new circuit in which
every two-qubit gate acts on a connected pair, inserting SWAP operations as
needed.  Inserted SWAPs are decomposed into the device's native gate set so
that routing a native circuit keeps it native.

Four routers mirror the action set of the paper:

* :class:`BasicSwap` — route each offending gate along a shortest path
  (Qiskit's ``BasicSwap``).
* :class:`StochasticSwap` — randomised trials with greedy fallback (Qiskit's
  ``StochasticSwap``).
* :class:`SabreSwap` — the SABRE lookahead heuristic (Qiskit's ``SabreSwap``).
* :class:`TketRouting` — a lookahead router in the style of TKET's
  ``RoutingPass``.
"""

from __future__ import annotations

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DAGCircuit
from ..circuit.gates import Gate, Instruction
from ..devices.device import Device
from .base import PassContext
from .registry import RoutingPass, register_pass
from .synthesis import CX_CONVERSION_RULES

__all__ = ["BasicSwap", "StochasticSwap", "SabreSwap", "TketRouting", "expand_swaps"]


def expand_swaps(circuit: QuantumCircuit, device: Device) -> QuantumCircuit:
    """Replace SWAP gates with the device's native realisation (3 entangling gates)."""
    if "swap" in device.gate_set.two_qubit:
        return circuit
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    out.metadata = dict(circuit.metadata)
    for instr in circuit:
        if instr.name != "swap":
            out._instructions.append(instr)
            continue
        a, b = instr.qubits
        for control, target in ((a, b), (b, a), (a, b)):
            out.extend(_native_cx(control, target, device))
    return out


def _native_cx(control: int, target: int, device: Device) -> list[Instruction]:
    """A CX on (control, target) expressed in the device's native gates."""
    gate_set = device.gate_set
    if "cx" in gate_set.two_qubit:
        return [Instruction(Gate("cx"), (control, target))]
    for native in gate_set.two_qubit:
        if native not in CX_CONVERSION_RULES:
            continue
        rule = CX_CONVERSION_RULES[native]
        qubit_of = {"control": control, "target": target}
        ops = [Instruction(Gate(name), (qubit_of[role],)) for name, role in rule["pre"]]
        if native == "rxx":
            ops.append(Instruction(Gate("rxx", (np.pi / 2,)), (control, target)))
        else:
            ops.append(Instruction(Gate(native), (control, target)))
        ops.extend(
            Instruction(Gate(name), (qubit_of[role],)) for name, role in rule["post"]
        )
        # Single-qubit corrections may not be native (e.g. H on IBM); leave them —
        # they are handled by the 1q optimisation / synthesis passes, and the
        # routers re-run a light 1q translation afterwards if required.
        return ops
    return [Instruction(Gate("cx"), (control, target))]


def _nativize_1q(circuit: QuantumCircuit, device: Device) -> QuantumCircuit:
    """Translate any non-native single-qubit gates into the device's 1q basis."""
    from ..linalg.decompositions import synthesize_1q
    from ..circuit.gates import gate_matrix

    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    out.metadata = dict(circuit.metadata)
    for instr in circuit:
        if (
            instr.name in ("barrier", "measure", "reset")
            or len(instr.qubits) != 1
            or device.gate_set.is_native(instr.name)
        ):
            out._instructions.append(instr)
            continue
        decomp = synthesize_1q(gate_matrix(instr.gate), device.gate_set.basis_1q)
        out.extend(Instruction(gate, instr.qubits) for gate in decomp.gates)
    return out


class _RoutingState:
    """Tracks the virtual-wire → physical-qubit placement during routing."""

    def __init__(self, num_qubits: int):
        # virtual label (qubit index in the incoming circuit) -> physical qubit
        self.virtual_to_physical = {q: q for q in range(num_qubits)}
        self.physical_to_virtual = {q: q for q in range(num_qubits)}

    def physical(self, virtual: int) -> int:
        return self.virtual_to_physical[virtual]

    def swap_physical(self, a: int, b: int) -> None:
        va, vb = self.physical_to_virtual[a], self.physical_to_virtual[b]
        self.virtual_to_physical[va], self.virtual_to_physical[vb] = b, a
        self.physical_to_virtual[a], self.physical_to_virtual[b] = vb, va

    def remap(self, instruction: Instruction) -> Instruction:
        return instruction.remap({q: self.physical(q) for q in instruction.qubits})


def _physical_pairs(
    instructions: list[Instruction], state: _RoutingState
) -> np.ndarray:
    """Current physical positions of each 2q instruction's qubits, ``(P, 2)``."""
    phys = state.virtual_to_physical
    if not instructions:
        return np.empty((0, 2), dtype=np.intp)
    return np.array(
        [[phys[i.qubits[0]], phys[i.qubits[1]]] for i in instructions], dtype=np.intp
    )


def _trial_positions(
    positions: np.ndarray, s0: np.ndarray, s1: np.ndarray
) -> np.ndarray:
    """Remap a row of physical positions through every candidate SWAP.

    ``positions`` is ``(P,)``; ``s0``/``s1`` are ``(C, 1)`` columns of the
    candidate endpoints.  Returns ``(C, P)``: entry ``[c, p]`` is where
    position ``p`` lands after applying candidate ``c``.
    """
    row = positions[None, :]
    return np.where(row == s0, s1, np.where(row == s1, s0, row))


def _swap_scores(
    candidates: np.ndarray,
    front_pairs: np.ndarray,
    look_pairs: np.ndarray,
    look_weight: float,
    distances: np.ndarray,
    decay: np.ndarray,
) -> np.ndarray:
    """SABRE scores for all candidate SWAPs at once, ``(C,)``."""
    s0 = candidates[:, 0][:, None]
    s1 = candidates[:, 1][:, None]
    num_candidates = len(candidates)
    if len(front_pairs):
        a = _trial_positions(front_pairs[:, 0], s0, s1)
        b = _trial_positions(front_pairs[:, 1], s0, s1)
        front_cost = distances[a, b].sum(axis=1) / max(1, len(front_pairs))
    else:
        front_cost = np.zeros(num_candidates)
    if len(look_pairs):
        a = _trial_positions(look_pairs[:, 0], s0, s1)
        b = _trial_positions(look_pairs[:, 1], s0, s1)
        look_cost = distances[a, b].sum(axis=1) / len(look_pairs)
        front_cost = front_cost + look_weight * look_cost
    return np.maximum(decay[candidates[:, 0]], decay[candidates[:, 1]]) * front_cost


class _BaseRouter(RoutingPass):
    """Shared machinery for all routing passes."""

    requires_device = True
    origin = "repro"

    def __init__(self, seed: int | None = None):
        self.seed = seed

    # -- public entry point --------------------------------------------------------

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        device = context.require_device()
        self._check_input(circuit, device)
        was_native = device.gates_native(circuit)
        if self._already_routed(circuit, device):
            context.final_layout = {q: q for q in range(circuit.num_qubits)}
            routed = circuit.copy()
        else:
            seed = self.seed if self.seed is not None else context.seed
            routed, final_layout = self._route(circuit, device, np.random.default_rng(seed))
            context.final_layout = final_layout
        routed = expand_swaps(routed, device)
        if was_native and not device.gates_native(routed):
            routed = _nativize_1q(routed, device)
        routed.metadata["routed"] = True
        return routed

    # -- hooks ----------------------------------------------------------------------

    def _route(
        self, circuit: QuantumCircuit, device: Device, rng: np.random.Generator
    ) -> tuple[QuantumCircuit, dict[int, int]]:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _check_input(circuit: QuantumCircuit, device: Device) -> None:
        if circuit.num_qubits > device.num_qubits:
            raise ValueError(
                f"circuit has {circuit.num_qubits} qubits but device "
                f"{device.name} only has {device.num_qubits}"
            )
        for instr in circuit:
            if instr.name == "barrier":
                continue
            if len(instr.qubits) > 2:
                raise ValueError(
                    "routing requires gates on at most two qubits; "
                    f"found {instr.name!r} on {len(instr.qubits)} qubits "
                    "(run synthesis first)"
                )

    @staticmethod
    def _already_routed(circuit: QuantumCircuit, device: Device) -> bool:
        return device.mapping_satisfied(circuit)

    @staticmethod
    def _widen(circuit: QuantumCircuit, device: Device) -> QuantumCircuit:
        if circuit.num_qubits == device.num_qubits:
            return circuit
        out = QuantumCircuit(device.num_qubits, circuit.num_clbits, circuit.name)
        out.metadata = dict(circuit.metadata)
        out._instructions = list(circuit.instructions)
        return out


class BasicSwap(_BaseRouter):
    """Route every non-adjacent gate along a shortest path of SWAPs."""

    name = "basic_swap"
    origin = "qiskit"

    def _route(
        self, circuit: QuantumCircuit, device: Device, rng: np.random.Generator
    ) -> tuple[QuantumCircuit, dict[int, int]]:
        circuit = self._widen(circuit, device)
        coupling = device.coupling_map
        state = _RoutingState(circuit.num_qubits)
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        for instr in circuit:
            if instr.name == "barrier" or len(instr.qubits) < 2:
                out._instructions.append(state.remap(instr))
                continue
            a, b = (state.physical(q) for q in instr.qubits)
            if not coupling.are_connected(a, b):
                path = coupling.shortest_path(a, b)
                # Swap the first qubit along the path until adjacent to the last.
                for hop in path[1:-1]:
                    out.append(Gate("swap"), (a, hop))
                    state.swap_physical(a, hop)
                    a = hop
            out._instructions.append(state.remap(instr))
        return out, dict(state.virtual_to_physical)


class StochasticSwap(_BaseRouter):
    """Randomised-trial router: several seeds of a greedy/random hybrid, best kept."""

    name = "stochastic_swap"
    origin = "qiskit"

    def __init__(self, trials: int = 5, seed: int | None = None):
        super().__init__(seed=seed)
        self.trials = trials

    def _route(
        self, circuit: QuantumCircuit, device: Device, rng: np.random.Generator
    ) -> tuple[QuantumCircuit, dict[int, int]]:
        circuit = self._widen(circuit, device)
        best: tuple[QuantumCircuit, dict[int, int]] | None = None
        best_swaps = None
        for _ in range(max(1, self.trials)):
            trial_rng = np.random.default_rng(int(rng.integers(0, 2**31 - 1)))
            routed, layout = self._route_once(circuit, device, trial_rng)
            swaps = routed.count_ops().get("swap", 0)
            if best is None or swaps < best_swaps:
                best, best_swaps = (routed, layout), swaps
        assert best is not None
        return best

    def _route_once(
        self, circuit: QuantumCircuit, device: Device, rng: np.random.Generator
    ) -> tuple[QuantumCircuit, dict[int, int]]:
        coupling = device.coupling_map
        # Hoisted out of the swap-insertion loop: the matrix is cached on the
        # CouplingMap, but the old code still paid the call per inserted SWAP.
        distances = coupling.distance_matrix()
        state = _RoutingState(circuit.num_qubits)
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        for instr in circuit:
            if instr.name == "barrier" or len(instr.qubits) < 2:
                out._instructions.append(state.remap(instr))
                continue
            a, b = (state.physical(q) for q in instr.qubits)
            guard = 0
            while not coupling.are_connected(a, b):
                guard += 1
                if guard > 4 * device.num_qubits:
                    raise RuntimeError("stochastic routing failed to converge")
                candidates = [(a, nb) for nb in coupling.neighbors(a)]
                candidates += [(b, nb) for nb in coupling.neighbors(b)]

                def gain(move: tuple[int, int]) -> float:
                    src, dst = move
                    if src == a:
                        return distances[dst, b]
                    return distances[a, dst]

                if rng.random() < 0.15:
                    src, dst = candidates[int(rng.integers(len(candidates)))]
                else:
                    src, dst = min(candidates, key=gain)
                out.append(Gate("swap"), (src, dst))
                state.swap_physical(src, dst)
                a, b = (state.physical(q) for q in instr.qubits)
            out._instructions.append(state.remap(instr))
        return out, dict(state.virtual_to_physical)


class SabreSwap(_BaseRouter):
    """SABRE lookahead router (Li, Ding & Xie, ASPLOS 2019).

    Executable front-layer gates are emitted immediately; when the front layer
    is blocked, the router scores every SWAP adjacent to a blocked qubit by
    the resulting front-layer and lookahead ("extended set") distances and
    applies the best one.  A decay factor discourages ping-ponging the same
    qubits.
    """

    name = "sabre_swap"
    origin = "qiskit"

    def __init__(
        self,
        seed: int | None = None,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_increment: float = 0.001,
    ):
        super().__init__(seed=seed)
        self.extended_set_size = extended_set_size
        self.extended_set_weight = extended_set_weight
        self.decay_increment = decay_increment

    def _route(
        self, circuit: QuantumCircuit, device: Device, rng: np.random.Generator
    ) -> tuple[QuantumCircuit, dict[int, int]]:
        circuit = self._widen(circuit, device)
        coupling = device.coupling_map
        distances = coupling.distance_matrix()
        dag = DAGCircuit.from_circuit(circuit)
        state = _RoutingState(circuit.num_qubits)
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)

        decay = np.ones(circuit.num_qubits)
        front = {node.node_id for node in dag.front_layer()}
        steps_since_progress = 0

        while front:
            executable = []
            for node_id in sorted(front):
                node = dag.node(node_id)
                if self._is_executable(node.instruction, state, coupling):
                    executable.append(node_id)
            if executable:
                steps_since_progress = 0
                decay[:] = 1.0
                for node_id in executable:
                    node = dag.node(node_id)
                    out._instructions.append(state.remap(node.instruction))
                    front.discard(node_id)
                    successors = list(node.successors)
                    dag.remove_node(node_id)
                    for succ in successors:
                        if succ in dag.nodes and not dag.node(succ).predecessors:
                            front.add(succ)
                continue

            steps_since_progress += 1
            if steps_since_progress > 10 * device.num_qubits + 100:
                raise RuntimeError("SABRE routing failed to make progress")

            blocked = [dag.node(nid).instruction for nid in front]
            candidates = self._swap_candidates(blocked, state, coupling)
            extended = self._extended_set(dag, front)
            best_swap = self._best_swap(
                candidates, blocked, extended, state, distances, decay, rng
            )
            out.append(Gate("swap"), best_swap)
            state.swap_physical(*best_swap)
            decay[best_swap[0]] += self.decay_increment
            decay[best_swap[1]] += self.decay_increment

        return out, dict(state.virtual_to_physical)

    @staticmethod
    def _is_executable(instruction: Instruction, state: _RoutingState, coupling) -> bool:
        if instruction.name == "barrier" or len(instruction.qubits) < 2:
            return True
        a, b = (state.physical(q) for q in instruction.qubits)
        return coupling.are_connected(a, b)

    @staticmethod
    def _swap_candidates(
        blocked: list[Instruction], state: _RoutingState, coupling
    ) -> list[tuple[int, int]]:
        candidates: set[tuple[int, int]] = set()
        for instr in blocked:
            if len(instr.qubits) < 2:
                continue
            for virtual in instr.qubits:
                phys = state.physical(virtual)
                for neighbor in coupling.neighbors(phys):
                    candidates.add((min(phys, neighbor), max(phys, neighbor)))
        return sorted(candidates)

    def _extended_set(self, dag: DAGCircuit, front: set[int]) -> list[Instruction]:
        extended: list[Instruction] = []
        frontier = list(front)
        seen = set(front)
        while frontier and len(extended) < self.extended_set_size:
            node_id = frontier.pop(0)
            for succ in sorted(dag.node(node_id).successors):
                if succ in seen:
                    continue
                seen.add(succ)
                instr = dag.node(succ).instruction
                if len(instr.qubits) == 2 and instr.name != "barrier":
                    extended.append(instr)
                frontier.append(succ)
        return extended

    def _best_swap(
        self,
        candidates: list[tuple[int, int]],
        blocked: list[Instruction],
        extended: list[Instruction],
        state: _RoutingState,
        distances: np.ndarray,
        decay: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[int, int]:
        # All candidate SWAPs are scored with one vectorised gather over the
        # distance matrix instead of building an O(num_qubits) trial mapping
        # per candidate.  Float semantics match the old per-candidate loop
        # exactly: front/extended sets stay well under numpy's pairwise-sum
        # block size, so the row sums add in the same order as the old
        # ``sum()`` over Python floats.
        front_pairs = _physical_pairs(
            [i for i in blocked if len(i.qubits) == 2], state
        )
        look_pairs = _physical_pairs(extended, state)
        scores = _swap_scores(
            np.asarray(candidates), front_pairs, look_pairs,
            self.extended_set_weight, distances, decay,
        )
        best = np.flatnonzero(np.abs(scores - scores.min()) < 1e-12)
        return candidates[int(best[int(rng.integers(len(best)))])]


class TketRouting(_BaseRouter):
    """Lookahead router in the style of TKET's ``RoutingPass``.

    Scores each candidate SWAP by the total distance reduction over a fixed
    window of upcoming two-qubit gates, weighting earlier gates more heavily.
    """

    name = "tket_routing"
    origin = "tket"

    def __init__(self, seed: int | None = None, lookahead: int = 12):
        super().__init__(seed=seed)
        self.lookahead = lookahead

    def _route(
        self, circuit: QuantumCircuit, device: Device, rng: np.random.Generator
    ) -> tuple[QuantumCircuit, dict[int, int]]:
        circuit = self._widen(circuit, device)
        coupling = device.coupling_map
        distances = coupling.distance_matrix()
        state = _RoutingState(circuit.num_qubits)
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        instructions = list(circuit.instructions)

        index = 0
        while index < len(instructions):
            instr = instructions[index]
            if instr.name == "barrier" or len(instr.qubits) < 2:
                out._instructions.append(state.remap(instr))
                index += 1
                continue
            a, b = (state.physical(q) for q in instr.qubits)
            if coupling.are_connected(a, b):
                out._instructions.append(state.remap(instr))
                index += 1
                continue
            upcoming = self._upcoming_pairs(instructions, index)
            best_swap = self._best_swap(a, b, upcoming, state, coupling, distances, rng)
            out.append(Gate("swap"), best_swap)
            state.swap_physical(*best_swap)

        return out, dict(state.virtual_to_physical)

    def _upcoming_pairs(
        self, instructions: list[Instruction], index: int
    ) -> list[tuple[int, int]]:
        pairs = []
        for instr in instructions[index:]:
            if instr.name == "barrier" or len(instr.qubits) != 2:
                continue
            pairs.append(instr.qubits)
            if len(pairs) >= self.lookahead:
                break
        return pairs

    def _best_swap(
        self,
        a: int,
        b: int,
        upcoming: list[tuple[int, int]],
        state: _RoutingState,
        coupling,
        distances: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[int, int]:
        candidates: set[tuple[int, int]] = set()
        for phys in (a, b):
            for neighbor in coupling.neighbors(phys):
                candidates.add((min(phys, neighbor), max(phys, neighbor)))

        ordered = sorted(candidates)
        cand = np.asarray(ordered)
        phys_map = state.virtual_to_physical
        pairs = np.array(
            [[phys_map[qa], phys_map[qb]] for qa, qb in upcoming], dtype=np.intp
        )
        # 0.8**i via the scalar power so the weights match the old loop bit
        # for bit; the lookahead window (<= 12 pairs) keeps the row sums in
        # numpy's sequential regime, identical to the old running total.
        weights = np.array([0.8**i for i in range(len(upcoming))])
        if len(pairs):
            s0 = cand[:, 0][:, None]
            s1 = cand[:, 1][:, None]
            ta = _trial_positions(pairs[:, 0], s0, s1)
            tb = _trial_positions(pairs[:, 1], s0, s1)
            scores = (weights[None, :] * distances[ta, tb]).sum(axis=1)
        else:
            scores = np.zeros(len(cand))
        best = np.flatnonzero(np.abs(scores - scores.min()) < 1e-12)
        return ordered[int(best[int(rng.integers(len(best)))])]


for _cls in (BasicSwap, StochasticSwap, SabreSwap, TketRouting):
    register_pass(_cls.name, _cls, overwrite=True)
del _cls
