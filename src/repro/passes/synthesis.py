"""Synthesis passes: translating circuits to a device's native gate set.

The central pass is :class:`BasisTranslator` (modelled after Qiskit's pass of
the same name).  It works in three stages:

1. multi-qubit gates (Toffoli, CCZ, Fredkin) are decomposed into CX + 1q
   gates using fixed, verified decomposition rules;
2. two-qubit gates are decomposed into CX + 1q gates (named rules where they
   exist, an exact Weyl-based synthesis as a fallback), and CX is then
   rewritten into the device's native entangling gate (CZ, ECR or RXX) using
   pre-computed local Clifford corrections;
3. remaining single-qubit gates are fused and re-emitted in the device's
   native 1q basis via the exact Euler decomposition.

Every rule used here is verified against gate matrices in the test-suite.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import GATE_SPECS, Gate, Instruction, gate_inverse, gate_matrix
from ..devices.device import NativeGateSet
from ..linalg.decompositions import synthesize_1q, synthesize_2q, zyz_angles
from .base import PassContext
from .registry import SynthesisPass, register_pass

__all__ = [
    "BasisTranslator",
    "decompose_to_cx_basis",
    "controlled_u_instructions",
    "CX_CONVERSION_RULES",
]


# ---------------------------------------------------------------------------
# Verified decomposition building blocks
# ---------------------------------------------------------------------------


def controlled_u_instructions(
    matrix: np.ndarray, control: int, target: int
) -> list[Instruction]:
    """Exact decomposition of controlled-``matrix`` into CX and 1q rotations.

    Uses the standard ABC construction: with ``U = e^{i a} Rz(phi) Ry(theta) Rz(lam)``,
    the controlled version is ``P(a) x [A . X . B . X . C]`` with suitable A, B, C.
    """
    theta, phi, lam, alpha = zyz_angles(matrix)
    ops: list[Instruction] = []

    def add(name: str, qubits: list[int], params: tuple[float, ...] = ()) -> None:
        ops.append(Instruction(Gate(name, params), tuple(qubits)))

    add("rz", [target], ((lam - phi) / 2.0,))
    add("cx", [control, target])
    add("rz", [target], (-(phi + lam) / 2.0,))
    add("ry", [target], (-theta / 2.0,))
    add("cx", [control, target])
    add("ry", [target], (theta / 2.0,))
    add("rz", [target], (phi,))
    if abs(alpha) > 1e-12:
        add("p", [control], (alpha,))
    return [op for op in ops if not _is_trivial_rotation(op)]


def _is_trivial_rotation(instruction: Instruction) -> bool:
    if instruction.name in ("rz", "ry", "rx", "p") and abs(instruction.params[0]) < 1e-12:
        return True
    return False


def _instrs(spec: list[tuple[str, list[int], tuple[float, ...]]]) -> list[Instruction]:
    return [Instruction(Gate(name, params), tuple(qubits)) for name, qubits, params in spec]


def _decompose_named_2q(instruction: Instruction) -> list[Instruction] | None:
    """Named CX+1q decomposition rules for common two-qubit gates."""
    a, b = instruction.qubits
    name = instruction.name
    params = instruction.params
    if name == "cz":
        return _instrs([("h", [b], ()), ("cx", [a, b], ()), ("h", [b], ())])
    if name == "cy":
        return _instrs([("sdg", [b], ()), ("cx", [a, b], ()), ("s", [b], ())])
    if name == "swap":
        return _instrs([("cx", [a, b], ()), ("cx", [b, a], ()), ("cx", [a, b], ())])
    if name == "iswap":
        return _instrs(
            [
                ("s", [a], ()),
                ("s", [b], ()),
                ("h", [a], ()),
                ("cx", [a, b], ()),
                ("cx", [b, a], ()),
                ("h", [b], ()),
            ]
        )
    if name == "rzz":
        (theta,) = params
        return _instrs([("cx", [a, b], ()), ("rz", [b], (theta,)), ("cx", [a, b], ())])
    if name == "rzx":
        (theta,) = params
        return _instrs(
            [
                ("h", [b], ()),
                ("cx", [a, b], ()),
                ("rz", [b], (theta,)),
                ("cx", [a, b], ()),
                ("h", [b], ()),
            ]
        )
    if name == "rxx":
        (theta,) = params
        return _instrs(
            [
                ("h", [a], ()),
                ("h", [b], ()),
                ("cx", [a, b], ()),
                ("rz", [b], (theta,)),
                ("cx", [a, b], ()),
                ("h", [a], ()),
                ("h", [b], ()),
            ]
        )
    if name == "ryy":
        (theta,) = params
        return _instrs(
            [
                ("rx", [a], (math.pi / 2,)),
                ("rx", [b], (math.pi / 2,)),
                ("cx", [a, b], ()),
                ("rz", [b], (theta,)),
                ("cx", [a, b], ()),
                ("rx", [a], (-math.pi / 2,)),
                ("rx", [b], (-math.pi / 2,)),
            ]
        )
    if name in ("cp", "crx", "cry", "crz", "ch", "csx", "cu"):
        if name == "cu":
            theta, phi, lam, gamma = params
            matrix = np.exp(1j * gamma) * gate_matrix(Gate("u", (theta, phi, lam)))
        else:
            base_name = {"cp": "p", "crx": "rx", "cry": "ry", "crz": "rz", "ch": "h", "csx": "sx"}[name]
            matrix = gate_matrix(Gate(base_name, params))
        return controlled_u_instructions(matrix, a, b)
    return None


def _decompose_named_3q(instruction: Instruction) -> list[Instruction] | None:
    """Verified decompositions for the supported three-qubit gates."""
    name = instruction.name
    if name == "ccx":
        a, b, c = instruction.qubits
        return _instrs(
            [
                ("h", [c], ()),
                ("cx", [b, c], ()),
                ("tdg", [c], ()),
                ("cx", [a, c], ()),
                ("t", [c], ()),
                ("cx", [b, c], ()),
                ("tdg", [c], ()),
                ("cx", [a, c], ()),
                ("t", [b], ()),
                ("t", [c], ()),
                ("h", [c], ()),
                ("cx", [a, b], ()),
                ("t", [a], ()),
                ("tdg", [b], ()),
                ("cx", [a, b], ()),
            ]
        )
    if name == "ccz":
        a, b, c = instruction.qubits
        inner = _decompose_named_3q(Instruction(Gate("ccx"), (a, b, c)))
        return _instrs([("h", [c], ())]) + inner + _instrs([("h", [c], ())])
    if name == "cswap":
        a, b, c = instruction.qubits
        inner = _decompose_named_3q(Instruction(Gate("ccx"), (a, b, c)))
        return _instrs([("cx", [c, b], ())]) + inner + _instrs([("cx", [c, b], ())])
    return None


def _generic_2q_decomposition(instruction: Instruction) -> list[Instruction]:
    """Exact Weyl-based fallback for any unitary two-qubit gate."""
    matrix = gate_matrix(instruction.gate)
    ops, _phase = synthesize_2q(matrix)
    local = {0: instruction.qubits[0], 1: instruction.qubits[1]}
    return [Instruction(gate, tuple(local[q] for q in qubits)) for gate, qubits in ops]


# Local Clifford corrections expressing CX in terms of other native entangling
# gates: CX(c, t) = [pre gates] native(c, t) [post gates].  The gate words were
# found by exhaustive search over the single-qubit Clifford group and are
# verified in tests/test_passes_synthesis.py.
CX_CONVERSION_RULES: dict[str, dict[str, list[tuple[str, str]]]] = {
    "cz": {
        "pre": [("h", "target")],
        "post": [("h", "target")],
    },
    "ecr": {
        "pre": [
            ("s", "control"),
            ("h", "control"),
            ("h", "target"),
            ("s", "target"),
            ("h", "target"),
            ("s", "target"),
            ("s", "target"),
            ("h", "target"),
        ],
        "post": [("h", "control"), ("h", "target")],
    },
    "rxx": {
        "pre": [
            ("h", "control"),
            ("s", "control"),
            ("h", "control"),
            ("s", "control"),
            ("s", "target"),
            ("h", "target"),
            ("s", "target"),
        ],
        "post": [("h", "control")],
    },
}


def _cx_to_native(instruction: Instruction, gate_set: NativeGateSet) -> list[Instruction]:
    """Rewrite a CX instruction using the device's native entangling gate."""
    if "cx" in gate_set.two_qubit:
        return [instruction]
    control, target = instruction.qubits
    for native in gate_set.two_qubit:
        if native not in CX_CONVERSION_RULES:
            continue
        rule = CX_CONVERSION_RULES[native]
        qubit_of = {"control": control, "target": target}
        ops = [
            Instruction(Gate(name), (qubit_of[role],)) for name, role in rule["pre"]
        ]
        if native == "rxx":
            ops.append(Instruction(Gate("rxx", (math.pi / 2,)), (control, target)))
        else:
            ops.append(Instruction(Gate(native), (control, target)))
        ops.extend(
            Instruction(Gate(name), (qubit_of[role],)) for name, role in rule["post"]
        )
        return ops
    raise ValueError(
        f"no CX conversion rule for native two-qubit gates {gate_set.two_qubit}"
    )


def decompose_to_cx_basis(
    circuit: QuantumCircuit, *, keep: frozenset[str] = frozenset()
) -> QuantumCircuit:
    """Decompose every multi-qubit gate into CX + single-qubit gates.

    Two-qubit gates whose name appears in ``keep`` (e.g. the device's native
    entangling gate) are left untouched.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    out.metadata = dict(circuit.metadata)
    pending = list(circuit)
    while pending:
        instr = pending.pop(0)
        if instr.name in ("barrier", "measure", "reset") or not instr.gate.is_unitary:
            out._instructions.append(instr)
            continue
        if len(instr.qubits) >= 3:
            replacement = _decompose_named_3q(instr)
            if replacement is None:
                raise ValueError(f"cannot decompose {instr.name!r}")
            pending = replacement + pending
            continue
        if len(instr.qubits) == 2 and instr.name != "cx" and instr.name not in keep:
            replacement = _decompose_named_2q(instr)
            if replacement is None:
                replacement = _generic_2q_decomposition(instr)
            pending = replacement + pending
            continue
        out._instructions.append(instr)
    return out


# ---------------------------------------------------------------------------
# The BasisTranslator pass
# ---------------------------------------------------------------------------


class BasisTranslator(SynthesisPass):
    """Translate a circuit into the selected device's native gate set.

    This is the Synthesis action of the compilation MDP (Qiskit's
    ``BasisTranslator`` in the paper's instantiation).
    """

    name = "basis_translator"
    origin = "qiskit"
    requires_device = True

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        device = context.require_device()
        gate_set = device.gate_set
        staged = decompose_to_cx_basis(circuit, keep=frozenset(gate_set.two_qubit))

        out = QuantumCircuit(staged.num_qubits, staged.num_clbits, staged.name)
        out.metadata = dict(staged.metadata)
        for instr in staged:
            if instr.name in ("barrier", "measure", "reset") or not instr.gate.is_unitary:
                out._instructions.append(instr)
                continue
            if len(instr.qubits) == 2 and instr.name == "cx":
                for native_instr in _cx_to_native(instr, gate_set):
                    if len(native_instr.qubits) == 2 or gate_set.is_native(native_instr.name):
                        out._instructions.append(native_instr)
                    else:
                        out.extend(self._translate_1q(native_instr, gate_set))
                continue
            if gate_set.is_native(instr.name):
                out._instructions.append(instr)
            else:
                out.extend(self._translate_1q(instr, gate_set))
        return out

    @staticmethod
    def _translate_1q(instruction: Instruction, gate_set: NativeGateSet) -> list[Instruction]:
        matrix = gate_matrix(instruction.gate)
        decomp = synthesize_1q(matrix, gate_set.basis_1q)
        qubit = instruction.qubits[0]
        return [Instruction(gate, (qubit,)) for gate in decomp.gates]


register_pass(BasisTranslator.name, BasisTranslator, overwrite=True)
