"""Compilation passes: synthesis, layout, routing, and optimization.

Every pass implements the unified :class:`repro.passes.base.BasePass`
interface so that passes modelled after different SDKs (Qiskit, TKET) can be
mixed freely inside one compilation flow — the key structural requirement of
the paper's framework.
"""

from .base import AnalysisDomain, BasePass, PassContext, PassSequence
from .layout import DenseLayout, SabreLayout, TrivialLayout, apply_layout
from .optimization import (
    CliffordSimp,
    Collect2qBlocksConsolidate,
    CommutativeCancellation,
    CommutativeInverseCancellation,
    CXCancellation,
    FullPeepholeOptimise,
    InverseCancellation,
    Optimize1qGatesDecomposition,
    OptimizeCliffords,
    PeepholeOptimise2Q,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveRedundancies,
)
from .routing import BasicSwap, SabreSwap, StochasticSwap, TketRouting
from .synthesis import BasisTranslator, decompose_to_cx_basis

__all__ = [
    "AnalysisDomain",
    "BasePass",
    "PassContext",
    "PassSequence",
    "BasisTranslator",
    "decompose_to_cx_basis",
    "TrivialLayout",
    "DenseLayout",
    "SabreLayout",
    "apply_layout",
    "BasicSwap",
    "StochasticSwap",
    "SabreSwap",
    "TketRouting",
    "Optimize1qGatesDecomposition",
    "RemoveRedundancies",
    "CXCancellation",
    "InverseCancellation",
    "CommutativeCancellation",
    "CommutativeInverseCancellation",
    "RemoveDiagonalGatesBeforeMeasure",
    "OptimizeCliffords",
    "CliffordSimp",
    "Collect2qBlocksConsolidate",
    "PeepholeOptimise2Q",
    "FullPeepholeOptimise",
]
