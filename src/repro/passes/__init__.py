"""Compilation passes: synthesis, layout, routing, and optimization.

Every pass implements the unified :class:`repro.passes.base.BasePass`
interface so that passes modelled after different SDKs (Qiskit, TKET) can be
mixed freely inside one compilation flow — the key structural requirement of
the paper's framework.

Passes additionally register themselves in the pass registry
(:mod:`repro.passes.registry`) under a string name and a :class:`PassRole`;
importing this package registers every built-in.  The registry is what makes
stage slots swappable by name — in preset schedules, ``pass_overrides``
payloads, and the RL action space.
"""

from .base import AnalysisDomain, BasePass, PassContext, PassSequence
from .layout import DenseLayout, SabreLayout, TrivialLayout, apply_layout
from .optimization import (
    CliffordSimp,
    Collect2qBlocksConsolidate,
    CommutativeCancellation,
    CommutativeInverseCancellation,
    CXCancellation,
    FullPeepholeOptimise,
    InverseCancellation,
    Optimize1qGatesDecomposition,
    OptimizeCliffords,
    PeepholeOptimise2Q,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveRedundancies,
)
from .registry import (
    FinalisationPass,
    LayoutPass,
    OptimizationPass,
    PassRole,
    RoutingPass,
    SynthesisPass,
    UnknownPassError,
    available_passes,
    pass_catalog,
    pass_factory,
    pass_role,
    register_pass,
    registered_passes,
    resolve_pass,
    unregister_pass,
)
from .routing import BasicSwap, SabreSwap, StochasticSwap, TketRouting
from .synthesis import BasisTranslator, decompose_to_cx_basis

__all__ = [
    "AnalysisDomain",
    "BasePass",
    "PassContext",
    "PassSequence",
    # pass registry + role mixins
    "PassRole",
    "SynthesisPass",
    "LayoutPass",
    "RoutingPass",
    "OptimizationPass",
    "FinalisationPass",
    "UnknownPassError",
    "register_pass",
    "unregister_pass",
    "resolve_pass",
    "pass_factory",
    "pass_role",
    "available_passes",
    "registered_passes",
    "pass_catalog",
    # built-in passes
    "BasisTranslator",
    "decompose_to_cx_basis",
    "TrivialLayout",
    "DenseLayout",
    "SabreLayout",
    "apply_layout",
    "BasicSwap",
    "StochasticSwap",
    "SabreSwap",
    "TketRouting",
    "Optimize1qGatesDecomposition",
    "RemoveRedundancies",
    "CXCancellation",
    "InverseCancellation",
    "CommutativeCancellation",
    "CommutativeInverseCancellation",
    "RemoveDiagonalGatesBeforeMeasure",
    "OptimizeCliffords",
    "CliffordSimp",
    "Collect2qBlocksConsolidate",
    "PeepholeOptimise2Q",
    "FullPeepholeOptimise",
]
