"""repro — RL-based quantum circuit compiler optimization.

Reproduction of "Compiler Optimization for Quantum Computing Using
Reinforcement Learning" (Quetschlich, Burgholzer, Wille — DAC 2023).

The package models quantum circuit compilation as a Markov Decision Process
whose actions are individual compilation passes (synthesis, layout, routing,
device-independent optimization) drawn from multiple compiler styles, and
trains a PPO agent to pick the best sequence of passes for a given circuit
and optimization objective (expected fidelity, critical depth, or their
combination).

All compilation strategies — the trained RL model, every Qiskit-style and
TKET-style preset level, and the ``best-of`` meta-backend — sit behind one
facade and a pluggable backend registry:

    import repro

    circuit = repro.benchmark_circuit("qft", 5)
    result = repro.compile(circuit, backend="qiskit-o3", device="ibmq_washington")
    print(result.reward, result.backend, result.wall_time)

    predictor = repro.Predictor(reward="fidelity")
    predictor.train(total_timesteps=2_000)
    repro.register_backend("rl", predictor.as_backend())
    result = repro.compile(circuit, backend="rl")

    batch = repro.compile_batch(
        repro.benchmark_suite(2, 6), backends=["rl", "qiskit-o3", "tket-o2"]
    )
"""

from __future__ import annotations

__version__ = "1.1.0"

from .api import (
    BatchResult,
    BestOfBackend,
    CompilationCache,
    CompilationResult,
    CompilerBackend,
    PredictorBackend,
    PresetBackend,
    UnknownBackendError,
    compile,
    compile_batch,
    get_backend,
    list_backends,
    register_backend,
    unregister_backend,
)
from .bench import available_benchmarks, benchmark_circuit, benchmark_suite
from .circuit import Gate, Instruction, QuantumCircuit
from .compilers import compile_qiskit_style, compile_tket_style, preset_pass_manager
from .core import CompilationEnv, Predictor
from .devices import Device, get_device, list_devices
from .passes import (
    PassRole,
    UnknownPassError,
    available_passes,
    pass_catalog,
    register_pass,
    resolve_pass,
    unregister_pass,
)
from .pipeline import (
    AnalysisCache,
    CacheStore,
    CostAwareStore,
    DictStore,
    LruCache,
    PassManager,
    RepeatUntilStable,
    Stage,
    TransformCache,
)
from .reward import combined_reward, critical_depth_reward, expected_fidelity
from .rl import AsyncVectorEnv, SyncVectorEnv, VectorEnv, make_compilation_vec_env
from .service import (
    CacheServer,
    CompileService,
    DeadlineExceeded,
    ServiceClient,
    ServiceTimeout,
    SharedCacheStore,
)

__all__ = [
    "__version__",
    "QuantumCircuit",
    "Gate",
    "Instruction",
    "Device",
    "get_device",
    "list_devices",
    "Predictor",
    "CompilationEnv",
    "CompilationResult",
    # unified compilation API
    "compile",
    "compile_batch",
    "BatchResult",
    "CompilationCache",
    "CompilerBackend",
    "PresetBackend",
    "PredictorBackend",
    "BestOfBackend",
    "UnknownBackendError",
    "register_backend",
    "unregister_backend",
    "list_backends",
    "get_backend",
    # pipeline layer (declarative scheduling + shared analysis cache)
    "PassManager",
    "Stage",
    "RepeatUntilStable",
    "AnalysisCache",
    "TransformCache",
    "CacheStore",
    "CostAwareStore",
    "DictStore",
    "LruCache",
    "preset_pass_manager",
    # pass registry (pluggable stage slots; see repro.passes for the mixins)
    "PassRole",
    "UnknownPassError",
    "register_pass",
    "unregister_pass",
    "resolve_pass",
    "available_passes",
    "pass_catalog",
    # compile-service subsystem (request queue + worker pools + shared cache)
    "CompileService",
    "ServiceClient",
    "CacheServer",
    "SharedCacheStore",
    "DeadlineExceeded",
    "ServiceTimeout",
    # vectorised environment fleets (rollout collection at fleet throughput)
    "VectorEnv",
    "SyncVectorEnv",
    "AsyncVectorEnv",
    "make_compilation_vec_env",
    # removed shims kept as pointed errors (use repro.compile with a backend name)
    "compile_qiskit_style",
    "compile_tket_style",
    "expected_fidelity",
    "critical_depth_reward",
    "combined_reward",
    "benchmark_circuit",
    "benchmark_suite",
    "available_benchmarks",
]
