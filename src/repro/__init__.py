"""repro — RL-based quantum circuit compiler optimization.

Reproduction of "Compiler Optimization for Quantum Computing Using
Reinforcement Learning" (Quetschlich, Burgholzer, Wille — DAC 2023).

The package models quantum circuit compilation as a Markov Decision Process
whose actions are individual compilation passes (synthesis, layout, routing,
device-independent optimization) drawn from multiple compiler styles, and
trains a PPO agent to pick the best sequence of passes for a given circuit
and optimization objective (expected fidelity, critical depth, or their
combination).

Quickstart::

    from repro import Predictor, benchmark_circuit

    circuit = benchmark_circuit("qft", 5)
    predictor = Predictor(reward="fidelity")
    predictor.train(total_timesteps=2_000)
    result = predictor.compile(circuit)
    print(result.reward, result.circuit.summary())
"""

from __future__ import annotations

__version__ = "1.0.0"

from .bench import available_benchmarks, benchmark_circuit, benchmark_suite
from .circuit import Gate, Instruction, QuantumCircuit
from .compilers import compile_qiskit_style, compile_tket_style
from .core import CompilationEnv, CompilationResult, Predictor
from .devices import Device, get_device, list_devices
from .reward import combined_reward, critical_depth_reward, expected_fidelity

__all__ = [
    "__version__",
    "QuantumCircuit",
    "Gate",
    "Instruction",
    "Device",
    "get_device",
    "list_devices",
    "Predictor",
    "CompilationEnv",
    "CompilationResult",
    "compile_qiskit_style",
    "compile_tket_style",
    "expected_fidelity",
    "critical_depth_reward",
    "combined_reward",
    "benchmark_circuit",
    "benchmark_suite",
    "available_benchmarks",
]
