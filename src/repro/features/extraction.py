"""Observation-feature extraction for the RL agent.

The observation vector is the seven features named in the paper: the number
of qubits, the circuit depth, and the five SupermarQ composite features.
All entries are normalised to [0, 1] so that they can be fed directly to the
policy network.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuit.circuit import QuantumCircuit
from .supermarq import supermarq_features

__all__ = ["FEATURE_NAMES", "feature_vector", "feature_dict"]

FEATURE_NAMES = (
    "num_qubits",
    "depth",
    "program_communication",
    "critical_depth",
    "entanglement_ratio",
    "parallelism",
    "liveness",
)

#: normalisation constants: qubit counts and depths are mapped through a
#: log-scale squash so that both small benchmark circuits and large mapped
#: circuits produce informative (non-saturated) values.
_MAX_QUBITS = 130.0
_DEPTH_SCALE = 10_000.0


def _squash_depth(depth: int) -> float:
    if depth <= 0:
        return 0.0
    return min(1.0, math.log1p(depth) / math.log1p(_DEPTH_SCALE))


def feature_dict(circuit: QuantumCircuit) -> dict[str, float]:
    """Named, normalised observation features of a circuit."""
    features = {
        "num_qubits": min(1.0, len(circuit.active_qubits() or {0}) / _MAX_QUBITS),
        "depth": _squash_depth(circuit.depth()),
    }
    features.update(supermarq_features(circuit))
    return features


def feature_vector(circuit: QuantumCircuit) -> np.ndarray:
    """Observation vector in the order of :data:`FEATURE_NAMES`."""
    features = feature_dict(circuit)
    return np.array([features[name] for name in FEATURE_NAMES], dtype=np.float64)
