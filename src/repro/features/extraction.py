"""Observation-feature extraction for the RL agent.

The observation vector is the seven features named in the paper: the number
of qubits, the circuit depth, and the five SupermarQ composite features.
All entries are normalised to [0, 1] so that they can be fed directly to the
policy network.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..profiling import profiled
from .supermarq import feature_table, features_from_table

__all__ = ["FEATURE_NAMES", "feature_vector", "feature_vectors_batch", "feature_dict"]

FEATURE_NAMES = (
    "num_qubits",
    "depth",
    "program_communication",
    "critical_depth",
    "entanglement_ratio",
    "parallelism",
    "liveness",
)

#: normalisation constants: qubit counts and depths are mapped through a
#: log-scale squash so that both small benchmark circuits and large mapped
#: circuits produce informative (non-saturated) values.
_MAX_QUBITS = 130.0
_DEPTH_SCALE = 10_000.0


def _squash_depth(depth: int) -> float:
    if depth <= 0:
        return 0.0
    return min(1.0, math.log1p(depth) / math.log1p(_DEPTH_SCALE))


def feature_dict(circuit: QuantumCircuit) -> dict[str, float]:
    """Named, normalised observation features of a circuit.

    One instruction-table sweep yields every ingredient — the old path
    re-walked the circuit once per feature (plus a DAG build) and allocated
    a ``{0}`` fallback set on every call just to express "at least one
    qubit".
    """
    table = feature_table(circuit)
    active = table["active_qubits"] or 1
    features = {
        "num_qubits": min(1.0, active / _MAX_QUBITS),
        "depth": _squash_depth(table["depth"]),
    }
    features.update(features_from_table(table))
    return features


def _vector_from_table(table: dict) -> np.ndarray:
    out = np.empty(len(FEATURE_NAMES), dtype=np.float64)
    active = table["active_qubits"] or 1
    out[0] = min(1.0, active / _MAX_QUBITS)
    out[1] = _squash_depth(table["depth"])
    supermarq = features_from_table(table)
    out[2] = supermarq["program_communication"]
    out[3] = supermarq["critical_depth"]
    out[4] = supermarq["entanglement_ratio"]
    out[5] = supermarq["parallelism"]
    out[6] = supermarq["liveness"]
    return out


def feature_vector(circuit: QuantumCircuit) -> np.ndarray:
    """Observation vector in the order of :data:`FEATURE_NAMES`.

    Direct array path: no dict round-trip, one sweep over the instruction
    table.  Values are identical to ``feature_dict`` read out in
    :data:`FEATURE_NAMES` order (pinned by a regression test).
    """
    with profiled("kernel.feature_vector", items=1):
        return _vector_from_table(feature_table(circuit))


def feature_vectors_batch(circuits: Sequence[QuantumCircuit]) -> np.ndarray:
    """Observation vectors for many circuits as one ``(N, 7)`` array.

    Amortises the per-call overhead for vec-env fleets and service-side
    prediction: one profiling record, one output allocation, row ``i`` equal
    to ``feature_vector(circuits[i])``.
    """
    out = np.empty((len(circuits), len(FEATURE_NAMES)), dtype=np.float64)
    with profiled("kernel.feature_vectors_batch", items=len(circuits)):
        for i, circuit in enumerate(circuits):
            out[i] = _vector_from_table(feature_table(circuit))
    return out
