"""Circuit feature extraction (observations for the RL agent)."""

from .extraction import (
    FEATURE_NAMES,
    feature_dict,
    feature_vector,
    feature_vectors_batch,
)
from .supermarq import (
    critical_depth,
    entanglement_ratio,
    feature_table,
    features_from_table,
    liveness,
    parallelism,
    program_communication,
    supermarq_features,
)

__all__ = [
    "FEATURE_NAMES",
    "feature_dict",
    "feature_vector",
    "feature_vectors_batch",
    "feature_table",
    "features_from_table",
    "program_communication",
    "critical_depth",
    "entanglement_ratio",
    "parallelism",
    "liveness",
    "supermarq_features",
]
