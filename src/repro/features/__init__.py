"""Circuit feature extraction (observations for the RL agent)."""

from .extraction import FEATURE_NAMES, feature_dict, feature_vector
from .supermarq import (
    critical_depth,
    entanglement_ratio,
    liveness,
    parallelism,
    program_communication,
    supermarq_features,
)

__all__ = [
    "FEATURE_NAMES",
    "feature_dict",
    "feature_vector",
    "program_communication",
    "critical_depth",
    "entanglement_ratio",
    "parallelism",
    "liveness",
    "supermarq_features",
]
