"""SupermarQ circuit features (Tomesh et al., 2022).

The five composite features — program communication, critical depth,
entanglement ratio, parallelism and liveness — summarise the structure of a
quantum circuit in device-independent, [0, 1]-normalised terms.  Together
with the qubit count and circuit depth they form the seven observation
features used by the RL agent (Section IV-A of the paper).
"""

from __future__ import annotations

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DAGCircuit

__all__ = [
    "program_communication",
    "critical_depth",
    "entanglement_ratio",
    "parallelism",
    "liveness",
    "supermarq_features",
]


def _unitary_gates(circuit: QuantumCircuit):
    return [
        instr
        for instr in circuit
        if instr.name != "barrier" and instr.gate.is_unitary
    ]


def program_communication(circuit: QuantumCircuit) -> float:
    """Normalised average degree of the qubit interaction graph."""
    n = circuit.num_qubits
    if n <= 1:
        return 0.0
    degree: dict[int, set[int]] = {q: set() for q in range(n)}
    for a, b in circuit.two_qubit_interactions():
        degree[a].add(b)
        degree[b].add(a)
    total_degree = sum(len(neighbors) for neighbors in degree.values())
    return total_degree / (n * (n - 1))


def critical_depth(circuit: QuantumCircuit) -> float:
    """Fraction of two-qubit gates lying on the longest dependency path."""
    total_2q = circuit.num_two_qubit_gates()
    if total_2q == 0:
        return 0.0
    dag = DAGCircuit.from_circuit(circuit)
    on_path = dag.two_qubit_gates_on_longest_path()
    return min(1.0, on_path / total_2q)


def entanglement_ratio(circuit: QuantumCircuit) -> float:
    """Fraction of gates that act on two or more qubits."""
    gates = _unitary_gates(circuit)
    if not gates:
        return 0.0
    multi = sum(1 for instr in gates if len(instr.qubits) >= 2)
    return multi / len(gates)


def parallelism(circuit: QuantumCircuit) -> float:
    """How much the circuit exploits simultaneous gate execution.

    Defined as ``((#gates / depth) - 1) / (#qubits - 1)``; 0 for fully
    sequential circuits, 1 when every layer is maximally packed.
    """
    n = circuit.num_qubits
    depth = circuit.depth()
    gates = _unitary_gates(circuit)
    if n <= 1 or depth == 0 or not gates:
        return 0.0
    value = (len(gates) / depth - 1.0) / (n - 1)
    return max(0.0, min(1.0, value))


def liveness(circuit: QuantumCircuit) -> float:
    """Average fraction of the circuit's duration during which qubits are "live".

    A qubit is live between its first and last operation; the feature is the
    sum of live durations divided by ``#qubits * depth``.
    """
    n = circuit.num_qubits
    if n == 0:
        return 0.0
    levels = [0] * n
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    for instr in circuit:
        if instr.name == "barrier":
            continue
        new_level = max((levels[q] for q in instr.qubits), default=0) + 1
        for q in instr.qubits:
            levels[q] = new_level
            first.setdefault(q, new_level - 1)
            last[q] = new_level
    depth = max(levels, default=0)
    if depth == 0:
        return 0.0
    live = sum(last[q] - first[q] for q in first)
    return max(0.0, min(1.0, live / (n * depth)))


def supermarq_features(circuit: QuantumCircuit) -> dict[str, float]:
    """All five SupermarQ features as a dictionary."""
    return {
        "program_communication": program_communication(circuit),
        "critical_depth": critical_depth(circuit),
        "entanglement_ratio": entanglement_ratio(circuit),
        "parallelism": parallelism(circuit),
        "liveness": liveness(circuit),
    }
