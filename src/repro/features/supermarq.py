"""SupermarQ circuit features (Tomesh et al., 2022).

The five composite features — program communication, critical depth,
entanglement ratio, parallelism and liveness — summarise the structure of a
quantum circuit in device-independent, [0, 1]-normalised terms.  Together
with the qubit count and circuit depth they form the seven observation
features used by the RL agent (Section IV-A of the paper).
"""

from __future__ import annotations

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DAGCircuit

__all__ = [
    "program_communication",
    "critical_depth",
    "entanglement_ratio",
    "parallelism",
    "liveness",
    "supermarq_features",
    "feature_table",
    "features_from_table",
]


def feature_table(circuit: QuantumCircuit) -> dict[str, float | int]:
    """All raw feature quantities from one sweep over the instruction table.

    The five standalone feature functions below each walk the circuit (and
    ``critical_depth`` builds a full :class:`DAGCircuit` with a heap-based
    topological sort) — six traversals per observation.  This computes every
    ingredient in a single pass: the interaction-pair set, the per-wire
    ``(depth, 2q-count)`` critical-path frontier (instruction order is a
    topological order, so the DAG never needs to be materialised), the depth
    levels with and without classical wires, and the per-qubit liveness
    spans.  Each derived feature is arithmetically identical to its
    standalone counterpart, which the test-suite pins across the benchmark
    corpus.
    """
    n = circuit.num_qubits
    pairs: set[tuple[int, int]] = set()
    total_unitary = 0
    multi_unitary = 0
    # depth() semantics: levels over qubit and clbit wires, barriers skipped
    dlevels = [0] * max(n, 1)
    dclevels = [0] * max(circuit.num_clbits, 1)
    # liveness semantics: levels over qubit wires only
    qlevels = [0] * n
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    # critical path: per-wire (dist, twoq) of the last node on the wire;
    # clbit ``c`` is wire ``-1 - c``.  Barriers propagate with weight 0,
    # exactly like ``DAGCircuit.two_qubit_gates_on_longest_path``.
    frontier: dict[int, tuple[int, int]] = {}
    best = (0, 0)

    for instr in circuit:
        qubits = instr.qubits
        clbits = instr.clbits
        is_barrier = instr.name == "barrier"
        is_unitary = instr.gate.is_unitary
        nq = len(qubits)

        if is_unitary:
            total_unitary += 1
            if nq >= 2:
                multi_unitary += 1
        if not is_barrier and nq >= 2:
            for i in range(nq):
                qi = qubits[i]
                for j in range(i + 1, nq):
                    qj = qubits[j]
                    pairs.add((qi, qj) if qi < qj else (qj, qi))

        if not is_barrier:
            new_level = 0
            for q in qubits:
                if dlevels[q] > new_level:
                    new_level = dlevels[q]
            for c in clbits:
                if dclevels[c] > new_level:
                    new_level = dclevels[c]
            new_level += 1
            for q in qubits:
                dlevels[q] = new_level
            for c in clbits:
                dclevels[c] = new_level

            live_level = 0
            for q in qubits:
                if qlevels[q] > live_level:
                    live_level = qlevels[q]
            live_level += 1
            for q in qubits:
                qlevels[q] = live_level
                if q not in first:
                    first[q] = live_level - 1
                last[q] = live_level

        weight = 0 if is_barrier else 1
        is_2q = 1 if (is_unitary and nq >= 2) else 0
        pred: tuple[int, int] | None = None
        for q in qubits:
            entry = frontier.get(q)
            if entry is not None and (pred is None or entry > pred):
                pred = entry
        for c in clbits:
            entry = frontier.get(-1 - c)
            if entry is not None and (pred is None or entry > pred):
                pred = entry
        if pred is not None:
            node = (pred[0] + weight, pred[1] + is_2q)
        else:
            node = (weight, is_2q)
        for q in qubits:
            frontier[q] = node
        for c in clbits:
            frontier[-1 - c] = node
        if node > best:
            best = node

    depth = max(max(dlevels, default=0), max(dclevels, default=0))
    live_depth = max(qlevels, default=0)
    live_total = sum(last[q] - first[q] for q in first)
    return {
        "num_qubits": n,
        "active_qubits": len(first),
        "depth": depth,
        "interaction_pairs": pairs,
        "total_unitary": total_unitary,
        "multi_unitary": multi_unitary,
        "critical_2q": best[1],
        "live_depth": live_depth,
        "live_total": live_total,
    }


def features_from_table(table: dict) -> dict[str, float]:
    """The five SupermarQ features from a :func:`feature_table` result."""
    n = table["num_qubits"]
    if n <= 1:
        communication = 0.0
    else:
        degree: dict[int, set[int]] = {}
        for a, b in table["interaction_pairs"]:
            degree.setdefault(a, set()).add(b)
            degree.setdefault(b, set()).add(a)
        total_degree = sum(len(neighbors) for neighbors in degree.values())
        communication = total_degree / (n * (n - 1))

    total_2q = table["multi_unitary"]
    critical = min(1.0, table["critical_2q"] / total_2q) if total_2q else 0.0

    total = table["total_unitary"]
    entanglement = table["multi_unitary"] / total if total else 0.0

    depth = table["depth"]
    if n <= 1 or depth == 0 or total == 0:
        parallel = 0.0
    else:
        parallel = max(0.0, min(1.0, (total / depth - 1.0) / (n - 1)))

    live_depth = table["live_depth"]
    if n == 0 or live_depth == 0:
        live = 0.0
    else:
        live = max(0.0, min(1.0, table["live_total"] / (n * live_depth)))

    return {
        "program_communication": communication,
        "critical_depth": critical,
        "entanglement_ratio": entanglement,
        "parallelism": parallel,
        "liveness": live,
    }


def _unitary_gates(circuit: QuantumCircuit):
    return [
        instr
        for instr in circuit
        if instr.name != "barrier" and instr.gate.is_unitary
    ]


def program_communication(circuit: QuantumCircuit) -> float:
    """Normalised average degree of the qubit interaction graph."""
    n = circuit.num_qubits
    if n <= 1:
        return 0.0
    degree: dict[int, set[int]] = {q: set() for q in range(n)}
    for a, b in circuit.two_qubit_interactions():
        degree[a].add(b)
        degree[b].add(a)
    total_degree = sum(len(neighbors) for neighbors in degree.values())
    return total_degree / (n * (n - 1))


def critical_depth(circuit: QuantumCircuit) -> float:
    """Fraction of two-qubit gates lying on the longest dependency path."""
    total_2q = circuit.num_two_qubit_gates()
    if total_2q == 0:
        return 0.0
    dag = DAGCircuit.from_circuit(circuit)
    on_path = dag.two_qubit_gates_on_longest_path()
    return min(1.0, on_path / total_2q)


def entanglement_ratio(circuit: QuantumCircuit) -> float:
    """Fraction of gates that act on two or more qubits."""
    gates = _unitary_gates(circuit)
    if not gates:
        return 0.0
    multi = sum(1 for instr in gates if len(instr.qubits) >= 2)
    return multi / len(gates)


def parallelism(circuit: QuantumCircuit) -> float:
    """How much the circuit exploits simultaneous gate execution.

    Defined as ``((#gates / depth) - 1) / (#qubits - 1)``; 0 for fully
    sequential circuits, 1 when every layer is maximally packed.
    """
    n = circuit.num_qubits
    depth = circuit.depth()
    gates = _unitary_gates(circuit)
    if n <= 1 or depth == 0 or not gates:
        return 0.0
    value = (len(gates) / depth - 1.0) / (n - 1)
    return max(0.0, min(1.0, value))


def liveness(circuit: QuantumCircuit) -> float:
    """Average fraction of the circuit's duration during which qubits are "live".

    A qubit is live between its first and last operation; the feature is the
    sum of live durations divided by ``#qubits * depth``.
    """
    n = circuit.num_qubits
    if n == 0:
        return 0.0
    levels = [0] * n
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    for instr in circuit:
        if instr.name == "barrier":
            continue
        new_level = max((levels[q] for q in instr.qubits), default=0) + 1
        for q in instr.qubits:
            levels[q] = new_level
            first.setdefault(q, new_level - 1)
            last[q] = new_level
    depth = max(levels, default=0)
    if depth == 0:
        return 0.0
    live = sum(last[q] - first[q] for q in first)
    return max(0.0, min(1.0, live / (n * depth)))


def supermarq_features(circuit: QuantumCircuit) -> dict[str, float]:
    """All five SupermarQ features as a dictionary (single-sweep fast path).

    Values are identical to calling the five standalone functions — those
    remain as the readable reference implementations and are pinned against
    this path by the test-suite.
    """
    return features_from_table(feature_table(circuit))
