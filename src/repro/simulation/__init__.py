"""Statevector simulation of quantum circuits (verification substrate)."""

from .statevector import SimulationResult, StatevectorSimulator, sample_counts, simulate

__all__ = ["SimulationResult", "StatevectorSimulator", "simulate", "sample_counts"]
