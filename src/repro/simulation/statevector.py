"""Statevector simulation of quantum circuits.

A small dense simulator used to verify that compilation flows preserve
circuit semantics beyond unitary equivalence: it executes circuits containing
measurements and resets, returns exact output distributions, and samples
measurement outcomes.  It is intentionally limited to circuits of at most
~20 qubits (dense statevector), which covers the whole benchmark suite.

Qubit-ordering convention matches :mod:`repro.linalg`: qubit 0 is the most
significant bit of the basis-state index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Instruction, gate_matrix

__all__ = ["SimulationResult", "StatevectorSimulator", "simulate", "sample_counts"]

_MAX_QUBITS = 20


@dataclass
class SimulationResult:
    """Final state and classical outcomes of one simulation run."""

    statevector: np.ndarray
    num_qubits: int
    classical_bits: dict[int, int] = field(default_factory=dict)

    def probabilities(self) -> np.ndarray:
        """Probability of each computational basis state."""
        return np.abs(self.statevector) ** 2

    def probability_of(self, bitstring: str) -> float:
        """Probability of a basis state given as a bitstring ``q0 q1 ... q_{n-1}``."""
        if len(bitstring) != self.num_qubits:
            raise ValueError("bitstring length must equal the number of qubits")
        index = int(bitstring, 2)
        return float(self.probabilities()[index])

    def classical_bitstring(self) -> str:
        """The measured classical register as a bitstring (clbit 0 first)."""
        if not self.classical_bits:
            return ""
        width = max(self.classical_bits) + 1
        return "".join(str(self.classical_bits.get(i, 0)) for i in range(width))


class StatevectorSimulator:
    """Dense statevector simulator with mid-circuit measurement support."""

    def __init__(self, seed: int | None = None):
        self._rng = np.random.default_rng(seed)

    # -- public API ---------------------------------------------------------------

    def run(self, circuit: QuantumCircuit, *, initial_state: np.ndarray | None = None) -> SimulationResult:
        """Execute ``circuit`` once, collapsing measurements probabilistically."""
        n = circuit.num_qubits
        if n > _MAX_QUBITS:
            raise ValueError(f"circuit too large for dense simulation ({n} > {_MAX_QUBITS})")
        state = self._initial_state(n, initial_state)
        classical: dict[int, int] = {}
        for instr in circuit:
            state = self._apply(instr, state, n, classical)
        return SimulationResult(state, n, classical)

    def sample(self, circuit: QuantumCircuit, shots: int = 1024) -> dict[str, int]:
        """Sample measurement outcomes.

        For circuits whose measurements are terminal (the common case) the
        final distribution is computed once and sampled; circuits with
        mid-circuit measurements are re-executed per shot.
        """
        if self._has_mid_circuit_measurement(circuit):
            counts: dict[str, int] = {}
            for _ in range(shots):
                result = self.run(circuit)
                key = result.classical_bitstring() or "0" * circuit.num_qubits
                counts[key] = counts.get(key, 0) + 1
            return counts
        unitary_part = circuit.without_final_measurements()
        measured_qubits = [
            instr.qubits[0] for instr in circuit if instr.name == "measure"
        ] or list(range(circuit.num_qubits))
        result = self.run(unitary_part)
        probabilities = result.probabilities()
        outcomes = self._rng.choice(len(probabilities), size=shots, p=probabilities)
        counts = {}
        n = circuit.num_qubits
        for outcome in outcomes:
            bits = format(int(outcome), f"0{n}b")
            key = "".join(bits[q] for q in measured_qubits)
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _initial_state(num_qubits: int, initial_state: np.ndarray | None) -> np.ndarray:
        dim = 2**num_qubits
        if initial_state is None:
            state = np.zeros(dim, dtype=complex)
            state[0] = 1.0
            return state
        state = np.asarray(initial_state, dtype=complex)
        if state.shape != (dim,):
            raise ValueError("initial state has the wrong dimension")
        norm = np.linalg.norm(state)
        if abs(norm - 1.0) > 1e-8:
            raise ValueError("initial state must be normalised")
        return state.copy()

    def _apply(
        self, instr: Instruction, state: np.ndarray, num_qubits: int, classical: dict[int, int]
    ) -> np.ndarray:
        if instr.name == "barrier":
            return state
        if instr.name == "measure":
            outcome, state = self._measure(state, instr.qubits[0], num_qubits)
            clbit = instr.clbits[0] if instr.clbits else instr.qubits[0]
            classical[clbit] = outcome
            return state
        if instr.name == "reset":
            outcome, state = self._measure(state, instr.qubits[0], num_qubits)
            if outcome == 1:
                state = self._apply_matrix(gate_matrix_of("x"), state, (instr.qubits[0],), num_qubits)
            return state
        return self._apply_matrix(gate_matrix(instr.gate), state, instr.qubits, num_qubits)

    @staticmethod
    def _apply_matrix(
        matrix: np.ndarray, state: np.ndarray, qubits: tuple[int, ...], num_qubits: int
    ) -> np.ndarray:
        k = len(qubits)
        tensor = state.reshape([2] * num_qubits)
        axes = list(qubits)
        # Move the targeted axes to the front, apply the operator, move back.
        tensor = np.moveaxis(tensor, axes, range(k))
        folded = tensor.reshape(2**k, -1)
        folded = matrix @ folded
        tensor = folded.reshape([2] * num_qubits)
        tensor = np.moveaxis(tensor, range(k), axes)
        return tensor.reshape(-1)

    def _measure(self, state: np.ndarray, qubit: int, num_qubits: int) -> tuple[int, np.ndarray]:
        tensor = state.reshape([2] * num_qubits)
        moved = np.moveaxis(tensor, qubit, 0)
        probability_one = float(np.sum(np.abs(moved[1]) ** 2))
        outcome = 1 if self._rng.random() < probability_one else 0
        projected = np.zeros_like(moved)
        projected[outcome] = moved[outcome]
        norm = np.sqrt(probability_one if outcome == 1 else 1.0 - probability_one)
        if norm < 1e-12:
            raise RuntimeError("attempted to project onto a zero-probability outcome")
        projected = projected / norm
        return outcome, np.moveaxis(projected, 0, qubit).reshape(-1)

    @staticmethod
    def _has_mid_circuit_measurement(circuit: QuantumCircuit) -> bool:
        seen_measure: set[int] = set()
        for instr in circuit:
            if instr.name == "measure":
                seen_measure.add(instr.qubits[0])
            elif instr.name != "barrier" and any(q in seen_measure for q in instr.qubits):
                return True
        return False


def gate_matrix_of(name: str) -> np.ndarray:
    from ..circuit.gates import Gate

    return gate_matrix(Gate(name))


def simulate(circuit: QuantumCircuit, *, seed: int | None = None) -> SimulationResult:
    """Convenience wrapper: run a circuit once on a fresh simulator."""
    return StatevectorSimulator(seed=seed).run(circuit)


def sample_counts(circuit: QuantumCircuit, shots: int = 1024, *, seed: int | None = None) -> dict[str, int]:
    """Convenience wrapper: sample measurement counts from a circuit."""
    return StatevectorSimulator(seed=seed).sample(circuit, shots)
