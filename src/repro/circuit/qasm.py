"""Minimal OpenQASM 2 serialisation for :class:`QuantumCircuit`.

Only the subset needed to round-trip circuits produced by this library is
supported: quantum/classical register declarations, the gates listed in
:mod:`repro.circuit.gates`, barriers and measurements.

``from_qasm`` sits on a trust boundary — the HTTP gateway feeds it text sent
by arbitrary network clients — so every malformed input must surface as a
:class:`QasmError` (a ``ValueError`` subclass) with the offending line, never
as a bare ``KeyError``/``IndexError`` leaking parser internals.
"""

from __future__ import annotations

import math
import re

from .circuit import QuantumCircuit
from .gates import GATE_SPECS

__all__ = ["QasmError", "to_qasm", "from_qasm"]

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

# Gate names that differ between this library and qelib1.
_TO_QASM_NAME = {"p": "u1", "xx_plus_yy": "xx_plus_yy"}
_FROM_QASM_NAME = {"u1": "p", "cu1": "cp", "cu3": "cu3", "id": "id", "iden": "id"}


class QasmError(ValueError):
    """Malformed or unsupported OpenQASM 2 input.

    Raised for every parse-level problem — syntax errors, undeclared or
    duplicate registers, out-of-range qubit/clbit indices, unsupported gates,
    bad parameter expressions — so callers at trust boundaries can catch one
    exception type and turn it into a structured error response.
    """


def _format_param(value: float) -> str:
    """Render a parameter, using multiples of pi where exact."""
    for denom in (1, 2, 3, 4, 6, 8, 16):
        for num in range(-16 * denom, 16 * denom + 1):
            if num == 0:
                continue
            if abs(value - num * math.pi / denom) < 1e-12:
                frac = f"pi*{num}/{denom}" if denom != 1 else f"pi*{num}"
                return frac
    if abs(value) < 1e-15:
        return "0"
    return repr(float(value))


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to an OpenQASM 2 string."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{max(circuit.num_qubits, 1)}];")
    lines.append(f"creg c[{max(circuit.num_clbits, 1)}];")
    for instr in circuit:
        name = _TO_QASM_NAME.get(instr.name, instr.name)
        if instr.name == "barrier":
            qubits = ",".join(f"q[{q}]" for q in instr.qubits)
            lines.append(f"barrier {qubits};" if qubits else "barrier q;")
            continue
        if instr.name == "measure":
            q = instr.qubits[0]
            c = instr.clbits[0] if instr.clbits else q
            lines.append(f"measure q[{q}] -> c[{c}];")
            continue
        params = ""
        if instr.params:
            params = "(" + ",".join(_format_param(p) for p in instr.params) + ")"
        qubits = ",".join(f"q[{q}]" for q in instr.qubits)
        lines.append(f"{name}{params} {qubits};")
    return "\n".join(lines) + "\n"


_TOKEN_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s*"
    r"(?P<args>[^;]*);"
)

_REG_DECL_RE = re.compile(r"^(?P<kind>qreg|creg)\s+(?P<name>\w+)\s*\[(?P<size>\d+)\]\s*;$")
_ARG_RE = re.compile(r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*(?:\[(?P<index>\d+)\])?$")
_MEASURE_RE = re.compile(
    r"^measure\s+(?P<qreg>\w+)\s*\[(?P<qidx>\d+)\]\s*->\s*(?P<creg>\w+)\s*\[(?P<cidx>\d+)\]\s*;$"
)


def _eval_param(expr: str) -> float:
    """Evaluate a QASM parameter expression (numbers, pi, + - * /)."""
    original = expr.strip()
    expr = original.replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\) ]+", expr):
        raise QasmError(f"unsupported parameter expression: {original!r}")
    try:
        return float(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307 - sanitised above
    except Exception as exc:
        raise QasmError(f"invalid parameter expression {original!r}: {exc}") from None


class _Registers:
    """Declared registers of one kind (quantum or classical), with offsets."""

    def __init__(self, kind: str):
        self.kind = kind
        self.offsets: dict[str, tuple[int, int]] = {}  # name -> (offset, size)
        self.total = 0

    def declare(self, name: str, size: int, line: str) -> None:
        if name in self.offsets:
            raise QasmError(f"duplicate register name {name!r}: {line!r}")
        self.offsets[name] = (self.total, size)
        self.total += size

    def resolve(self, name: str, index: int, line: str) -> int:
        entry = self.offsets.get(name)
        if entry is None:
            raise QasmError(
                f"undeclared {self.kind} register {name!r} "
                f"(declared: {sorted(self.offsets) or 'none'}): {line!r}"
            )
        offset, size = entry
        if not 0 <= index < size:
            raise QasmError(
                f"index {index} out of range for {self.kind} register "
                f"{name}[{size}]: {line!r}"
            )
        return offset + index

    def expand(self, name: str, line: str) -> list[int]:
        """Every bit of one register, in order (used by bare-register barriers)."""
        entry = self.offsets.get(name)
        if entry is None:
            raise QasmError(
                f"undeclared {self.kind} register {name!r} "
                f"(declared: {sorted(self.offsets) or 'none'}): {line!r}"
            )
        offset, size = entry
        return list(range(offset, offset + size))


def _parse_gate_args(args: str, qregs: _Registers, line: str) -> list[int]:
    """Resolve comma-separated ``reg[idx]`` gate operands to flat qubit indices."""
    qubits: list[int] = []
    for arg in args.split(","):
        arg = arg.strip()
        if not arg:
            raise QasmError(f"empty operand in QASM line: {line!r}")
        match = _ARG_RE.match(arg)
        if not match:
            raise QasmError(f"cannot parse operand {arg!r}: {line!r}")
        if match.group("index") is None:
            raise QasmError(
                f"register broadcast ({arg!r} without an index) is not "
                f"supported here: {line!r}"
            )
        qubits.append(qregs.resolve(match.group("name"), int(match.group("index")), line))
    return qubits


def from_qasm(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2 string (the subset produced by :func:`to_qasm`).

    Raises :class:`QasmError` on malformed input: undeclared or duplicate
    registers, out-of-range indices, unknown gates, or unparseable lines.
    """
    if not isinstance(text, str):
        raise QasmError(f"QASM input must be a string, got {type(text).__name__}")
    qregs = _Registers("quantum")
    cregs = _Registers("classical")
    body: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        if line.startswith(("OPENQASM", "include")):
            continue
        match = _REG_DECL_RE.match(line)
        if match:
            if body:
                raise QasmError(f"register declared after first statement: {line!r}")
            regs = qregs if match.group("kind") == "qreg" else cregs
            # qreg and creg share the QASM identifier namespace: a creg named
            # like an existing qreg (or vice versa) is a duplicate too.
            other = cregs if regs is qregs else qregs
            if match.group("name") in other.offsets:
                raise QasmError(f"duplicate register name {match.group('name')!r}: {line!r}")
            regs.declare(match.group("name"), int(match.group("size")), line)
            continue
        if line.startswith(("qreg", "creg")):
            raise QasmError(f"cannot parse register declaration: {line!r}")
        body.append(line)

    circuit = QuantumCircuit(qregs.total, cregs.total or None)
    for line in body:
        if line.startswith("measure"):
            match = _MEASURE_RE.match(line)
            if not match:
                raise QasmError(f"cannot parse measurement: {line!r}")
            qubit = qregs.resolve(match.group("qreg"), int(match.group("qidx")), line)
            clbit = cregs.resolve(match.group("creg"), int(match.group("cidx")), line)
            circuit.measure(qubit, clbit)
            continue
        match = _TOKEN_RE.match(line)
        if not match:
            raise QasmError(f"cannot parse QASM line: {line!r}")
        name = match.group("name").lower()
        name = _FROM_QASM_NAME.get(name, name)
        args = (match.group("args") or "").strip()
        if name == "barrier":
            qubits: list[int] = []
            for arg in args.split(",") if args else []:
                arg = arg.strip()
                arg_match = _ARG_RE.match(arg)
                if not arg_match:
                    raise QasmError(f"cannot parse operand {arg!r}: {line!r}")
                if arg_match.group("index") is None:
                    qubits.extend(qregs.expand(arg_match.group("name"), line))
                else:
                    qubits.append(
                        qregs.resolve(
                            arg_match.group("name"), int(arg_match.group("index")), line
                        )
                    )
            circuit.barrier(*qubits)
            continue
        params_text = match.group("params")
        params = (
            [_eval_param(p) for p in params_text.split(",")] if params_text else []
        )
        if name == "cu3":
            name, params = "cu", params + [0.0]
        if name not in GATE_SPECS:
            raise QasmError(f"unsupported gate in QASM input: {name!r}")
        if not args:
            raise QasmError(f"gate {name!r} has no operands: {line!r}")
        qubits = _parse_gate_args(args, qregs, line)
        try:
            circuit.append(name, qubits, params)
        except ValueError as exc:
            raise QasmError(f"{exc}: {line!r}") from None
    return circuit
