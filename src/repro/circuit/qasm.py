"""Minimal OpenQASM 2 serialisation for :class:`QuantumCircuit`.

Only the subset needed to round-trip circuits produced by this library is
supported: a single quantum register ``q`` and classical register ``c``,
the gates listed in :mod:`repro.circuit.gates`, barriers and measurements.
"""

from __future__ import annotations

import math
import re

from .circuit import QuantumCircuit
from .gates import GATE_SPECS

__all__ = ["to_qasm", "from_qasm"]

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

# Gate names that differ between this library and qelib1.
_TO_QASM_NAME = {"p": "u1", "xx_plus_yy": "xx_plus_yy"}
_FROM_QASM_NAME = {"u1": "p", "cu1": "cp", "cu3": "cu3", "id": "id", "iden": "id"}


def _format_param(value: float) -> str:
    """Render a parameter, using multiples of pi where exact."""
    for denom in (1, 2, 3, 4, 6, 8, 16):
        for num in range(-16 * denom, 16 * denom + 1):
            if num == 0:
                continue
            if abs(value - num * math.pi / denom) < 1e-12:
                frac = f"pi*{num}/{denom}" if denom != 1 else f"pi*{num}"
                return frac
    if abs(value) < 1e-15:
        return "0"
    return repr(float(value))


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to an OpenQASM 2 string."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{max(circuit.num_qubits, 1)}];")
    lines.append(f"creg c[{max(circuit.num_clbits, 1)}];")
    for instr in circuit:
        name = _TO_QASM_NAME.get(instr.name, instr.name)
        if instr.name == "barrier":
            qubits = ",".join(f"q[{q}]" for q in instr.qubits)
            lines.append(f"barrier {qubits};" if qubits else "barrier q;")
            continue
        if instr.name == "measure":
            q = instr.qubits[0]
            c = instr.clbits[0] if instr.clbits else q
            lines.append(f"measure q[{q}] -> c[{c}];")
            continue
        params = ""
        if instr.params:
            params = "(" + ",".join(_format_param(p) for p in instr.params) + ")"
        qubits = ",".join(f"q[{q}]" for q in instr.qubits)
        lines.append(f"{name}{params} {qubits};")
    return "\n".join(lines) + "\n"


_TOKEN_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s*"
    r"(?P<args>[^;]*);"
)


def _eval_param(expr: str) -> float:
    """Evaluate a QASM parameter expression (numbers, pi, + - * /)."""
    expr = expr.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\) ]+", expr):
        raise ValueError(f"unsupported parameter expression: {expr!r}")
    return float(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307 - sanitised above


def from_qasm(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2 string produced by :func:`to_qasm`."""
    num_qubits = 0
    num_clbits = 0
    body: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        if line.startswith(("OPENQASM", "include")):
            continue
        match = re.match(r"qreg\s+(\w+)\[(\d+)\];", line)
        if match:
            num_qubits += int(match.group(2))
            continue
        match = re.match(r"creg\s+(\w+)\[(\d+)\];", line)
        if match:
            num_clbits += int(match.group(2))
            continue
        body.append(line)

    circuit = QuantumCircuit(num_qubits, num_clbits or None)
    for line in body:
        if line.startswith("measure"):
            match = re.match(r"measure\s+\w+\[(\d+)\]\s*->\s*\w+\[(\d+)\];", line)
            if not match:
                raise ValueError(f"cannot parse measurement: {line!r}")
            circuit.measure(int(match.group(1)), int(match.group(2)))
            continue
        match = _TOKEN_RE.match(line)
        if not match:
            raise ValueError(f"cannot parse QASM line: {line!r}")
        name = match.group("name").lower()
        name = _FROM_QASM_NAME.get(name, name)
        args = match.group("args") or ""
        qubits = [int(m) for m in re.findall(r"\[(\d+)\]", args)]
        if name == "barrier":
            circuit.barrier(*qubits)
            continue
        params_text = match.group("params")
        params = (
            [_eval_param(p) for p in params_text.split(",")] if params_text else []
        )
        if name == "cu3":
            name, params = "cu", params + [0.0]
        if name not in GATE_SPECS:
            raise ValueError(f"unsupported gate in QASM input: {name!r}")
        circuit.append(name, qubits, params)
    return circuit
