"""Quantum circuit intermediate representation.

The circuit IR is the unified data format shared by every compilation action
in the framework, mirroring the paper's requirement that all passes consume
and produce the same circuit representation regardless of which SDK the pass
was inspired by.
"""

from .circuit import QuantumCircuit
from .dag import DAGCircuit, DAGNode
from .drawing import draw
from .gates import (
    GATE_SPECS,
    Gate,
    GateSpec,
    Instruction,
    gate_inverse,
    gate_matrix,
    is_supported_gate,
    standard_gate_names,
)
from .qasm import QasmError, from_qasm, to_qasm
from .random_circuits import random_circuit, random_clifford_circuit

__all__ = [
    "QuantumCircuit",
    "DAGCircuit",
    "DAGNode",
    "draw",
    "Gate",
    "GateSpec",
    "Instruction",
    "GATE_SPECS",
    "gate_matrix",
    "gate_inverse",
    "is_supported_gate",
    "standard_gate_names",
    "QasmError",
    "to_qasm",
    "from_qasm",
    "random_circuit",
    "random_clifford_circuit",
]
