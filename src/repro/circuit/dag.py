"""Directed-acyclic-graph view of a quantum circuit.

Optimization and routing passes need to reason about gate dependencies
(which gates can commute past each other, which gates form the current
"front layer", which single-qubit runs can be fused).  The DAG view mirrors
Qiskit's ``DAGCircuit``: one node per instruction, edges follow qubit/clbit
wires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .circuit import QuantumCircuit
from .gates import Instruction

__all__ = ["DAGNode", "DAGCircuit"]


@dataclass
class DAGNode:
    """A single instruction inside the DAG."""

    node_id: int
    instruction: Instruction
    predecessors: set[int] = field(default_factory=set)
    successors: set[int] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.instruction.name

    @property
    def qubits(self) -> tuple[int, ...]:
        return self.instruction.qubits


class DAGCircuit:
    """Dependency DAG over the instructions of a :class:`QuantumCircuit`."""

    def __init__(self, num_qubits: int, num_clbits: int = 0):
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self._nodes: dict[int, DAGNode] = {}
        self._next_id = 0
        # last node seen on each wire, used while building
        self._qubit_frontier: dict[int, int] = {}
        self._clbit_frontier: dict[int, int] = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "DAGCircuit":
        dag = cls(circuit.num_qubits, circuit.num_clbits)
        for instr in circuit:
            dag.add_instruction(instr)
        return dag

    def add_instruction(self, instruction: Instruction) -> DAGNode:
        node = DAGNode(self._next_id, instruction)
        self._next_id += 1
        self._nodes[node.node_id] = node
        for q in instruction.qubits:
            prev = self._qubit_frontier.get(q)
            if prev is not None:
                node.predecessors.add(prev)
                self._nodes[prev].successors.add(node.node_id)
            self._qubit_frontier[q] = node.node_id
        for c in instruction.clbits:
            prev = self._clbit_frontier.get(c)
            if prev is not None:
                node.predecessors.add(prev)
                self._nodes[prev].successors.add(node.node_id)
            self._clbit_frontier[c] = node.node_id
        return node

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> dict[int, DAGNode]:
        return self._nodes

    def node(self, node_id: int) -> DAGNode:
        return self._nodes[node_id]

    def front_layer(self) -> list[DAGNode]:
        """Nodes with no remaining predecessors (the executable frontier)."""
        return [n for n in self._nodes.values() if not n.predecessors]

    def topological_nodes(self) -> Iterator[DAGNode]:
        """Yield nodes in a topological (and circuit-stable) order."""
        in_degree = {nid: len(n.predecessors) for nid, n in self._nodes.items()}
        ready = sorted(nid for nid, deg in in_degree.items() if deg == 0)
        emitted = []
        import heapq

        heap = list(ready)
        heapq.heapify(heap)
        while heap:
            nid = heapq.heappop(heap)
            node = self._nodes[nid]
            emitted.append(nid)
            yield node
            for succ in node.successors:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    heapq.heappush(heap, succ)
        if len(emitted) != len(self._nodes):
            raise RuntimeError("cycle detected in DAG (corrupted circuit)")

    def remove_node(self, node_id: int) -> None:
        """Remove a node, stitching its predecessors to its successors per wire."""
        node = self._nodes[node_id]
        # Re-wire on a per-wire basis so dependencies stay faithful.
        for q in list(node.instruction.qubits) + [
            -1 - c for c in node.instruction.clbits
        ]:
            pred = self._wire_neighbor(node, q, direction="pred")
            succ = self._wire_neighbor(node, q, direction="succ")
            if pred is not None and succ is not None:
                self._nodes[pred].successors.add(succ)
                self._nodes[succ].predecessors.add(pred)
        for pred in node.predecessors:
            self._nodes[pred].successors.discard(node_id)
        for succ in node.successors:
            self._nodes[succ].predecessors.discard(node_id)
        del self._nodes[node_id]

    def _wire_neighbor(self, node: DAGNode, wire: int, direction: str) -> int | None:
        """Find the adjacent node on ``wire`` (negative wires are clbits)."""
        neighbors = node.predecessors if direction == "pred" else node.successors
        for nid in neighbors:
            other = self._nodes[nid]
            wires = list(other.instruction.qubits) + [
                -1 - c for c in other.instruction.clbits
            ]
            if wire in wires:
                return nid
        return None

    # -- analysis helpers ------------------------------------------------------------

    def longest_path_length(self, *, only_2q: bool = False) -> int:
        """Number of gates along the longest dependency path."""
        dist: dict[int, int] = {}
        longest = 0
        for node in self.topological_nodes():
            weight = 1
            if node.name == "barrier":
                weight = 0
            elif only_2q and len(node.qubits) < 2:
                weight = 0
            best_pred = max((dist[p] for p in node.predecessors), default=0)
            dist[node.node_id] = best_pred + weight
            longest = max(longest, dist[node.node_id])
        return longest

    def two_qubit_gates_on_longest_path(self) -> int:
        """Count of 2q+ gates on (one of) the longest paths of the full DAG.

        This is the quantity the SupermarQ critical-depth feature is built
        from: how many multi-qubit gates lie on the critical path.
        """
        dist: dict[int, int] = {}
        twoq: dict[int, int] = {}
        best_total = 0
        best_twoq = 0
        for node in self.topological_nodes():
            weight = 0 if node.name == "barrier" else 1
            is_2q = node.instruction.gate.is_unitary and len(node.qubits) >= 2
            if node.predecessors:
                pred = max(node.predecessors, key=lambda p: (dist[p], twoq[p]))
                dist[node.node_id] = dist[pred] + weight
                twoq[node.node_id] = twoq[pred] + (1 if is_2q else 0)
            else:
                dist[node.node_id] = weight
                twoq[node.node_id] = 1 if is_2q else 0
            if (dist[node.node_id], twoq[node.node_id]) > (best_total, best_twoq):
                best_total, best_twoq = dist[node.node_id], twoq[node.node_id]
        return best_twoq

    # -- conversion ---------------------------------------------------------------------

    def to_circuit(self, name: str = "circuit") -> QuantumCircuit:
        out = QuantumCircuit(self.num_qubits, self.num_clbits, name)
        for node in self.topological_nodes():
            out._instructions.append(node.instruction)
        return out
