"""Gate definitions for the quantum circuit intermediate representation.

Every gate used anywhere in the compiler (benchmark generators, equivalence
library, devices' native gate sets, optimization passes) is described here by
a :class:`GateSpec`.  The spec records structural metadata (qubit count,
parameter count, whether the gate is diagonal, Clifford, symmetric under
qubit exchange, ...) together with a matrix constructor, which is what the
verification utilities and the 1q/2q re-synthesis passes build on.

The actual object stored inside circuits is the lightweight :class:`Gate`
(name + parameters); an :class:`Instruction` binds a gate to concrete qubit
indices.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Gate",
    "GateSpec",
    "Instruction",
    "GATE_SPECS",
    "gate_matrix",
    "gate_inverse",
    "is_supported_gate",
    "standard_gate_names",
]


# ---------------------------------------------------------------------------
# Matrix constructors
# ---------------------------------------------------------------------------

_SQ2 = 1.0 / math.sqrt(2.0)


def _mat_id(_: Sequence[float]) -> np.ndarray:
    return np.eye(2, dtype=complex)


def _mat_x(_: Sequence[float]) -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _mat_y(_: Sequence[float]) -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _mat_z(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _mat_h(_: Sequence[float]) -> np.ndarray:
    return np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)


def _mat_s(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def _mat_sdg(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def _mat_t(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)


def _mat_tdg(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)


def _mat_sx(_: Sequence[float]) -> np.ndarray:
    return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)


def _mat_sxdg(_: Sequence[float]) -> np.ndarray:
    return 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex)


def _mat_rx(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _mat_ry(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _mat_rz(params: Sequence[float]) -> np.ndarray:
    (phi,) = params
    return np.array(
        [[cmath.exp(-1j * phi / 2), 0], [0, cmath.exp(1j * phi / 2)]], dtype=complex
    )


def _mat_p(params: Sequence[float]) -> np.ndarray:
    (lam,) = params
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def _mat_u(params: Sequence[float]) -> np.ndarray:
    theta, phi, lam = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _mat_u1(params: Sequence[float]) -> np.ndarray:
    return _mat_p(params)


def _mat_u2(params: Sequence[float]) -> np.ndarray:
    phi, lam = params
    return _mat_u([math.pi / 2, phi, lam])


def _controlled(base: np.ndarray) -> np.ndarray:
    """Return the controlled version of a single-qubit matrix.

    Qubit ordering convention: qubit 0 of the instruction is the control and
    occupies the *most significant* position of the basis-state index, i.e.
    basis order is ``|q0 q1>``.
    """
    out = np.eye(4, dtype=complex)
    out[2:, 2:] = base
    return out


def _mat_cx(_: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_x(()))


def _mat_cy(_: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_y(()))


def _mat_cz(_: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_z(()))


def _mat_ch(_: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_h(()))


def _mat_cp(params: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_p(params))


def _mat_crx(params: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_rx(params))


def _mat_cry(params: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_ry(params))


def _mat_crz(params: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_rz(params))


def _mat_csx(_: Sequence[float]) -> np.ndarray:
    return _controlled(_mat_sx(()))


def _mat_cu(params: Sequence[float]) -> np.ndarray:
    theta, phi, lam, gamma = params
    return _controlled(cmath.exp(1j * gamma) * _mat_u([theta, phi, lam]))


def _mat_swap(_: Sequence[float]) -> np.ndarray:
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    )


def _mat_iswap(_: Sequence[float]) -> np.ndarray:
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
    )


def _mat_rxx(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, 0, 0, -1j * s],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [-1j * s, 0, 0, c],
        ],
        dtype=complex,
    )


def _mat_ryy(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, 0, 0, 1j * s],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [1j * s, 0, 0, c],
        ],
        dtype=complex,
    )


def _mat_rzz(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    ep = cmath.exp(1j * theta / 2)
    em = cmath.exp(-1j * theta / 2)
    return np.diag([em, ep, ep, em]).astype(complex)


def _mat_rzx(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -1j * s, 0, 0],
            [-1j * s, c, 0, 0],
            [0, 0, c, 1j * s],
            [0, 0, 1j * s, c],
        ],
        dtype=complex,
    )


def _mat_ecr(_: Sequence[float]) -> np.ndarray:
    # Echoed cross-resonance gate: (IX - XY)/sqrt(2) propagator as used by IBM/OQC.
    return _SQ2 * np.array(
        [
            [0, 1, 0, 1j],
            [1, 0, -1j, 0],
            [0, 1j, 0, 1],
            [-1j, 0, 1, 0],
        ],
        dtype=complex,
    )


def _mat_xx_plus_yy(params: Sequence[float]) -> np.ndarray:
    theta, beta = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [1, 0, 0, 0],
            [0, c, -1j * s * cmath.exp(-1j * beta), 0],
            [0, -1j * s * cmath.exp(1j * beta), c, 0],
            [0, 0, 0, 1],
        ],
        dtype=complex,
    )


def _mat_ccx(_: Sequence[float]) -> np.ndarray:
    out = np.eye(8, dtype=complex)
    out[6, 6] = out[7, 7] = 0
    out[6, 7] = out[7, 6] = 1
    return out


def _mat_ccz(_: Sequence[float]) -> np.ndarray:
    out = np.eye(8, dtype=complex)
    out[7, 7] = -1
    return out


def _mat_cswap(_: Sequence[float]) -> np.ndarray:
    out = np.eye(8, dtype=complex)
    # control is qubit 0 (most significant); swap basis states |101> and |110>
    out[5, 5] = out[6, 6] = 0
    out[5, 6] = out[6, 5] = 1
    return out


# ---------------------------------------------------------------------------
# Gate specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: canonical lower-case gate name.
        num_qubits: how many qubits the gate acts on.
        num_params: how many real parameters the gate takes.
        matrix_fn: callable mapping the parameter tuple to a unitary matrix.
            ``None`` for non-unitary operations (measure, barrier, reset).
        self_inverse: the gate composed with itself is the identity.
        inverse_name: name of the inverse gate when it is a *different*
            parameter-free gate (e.g. ``s``/``sdg``).  Parametrised gates are
            inverted by negating parameters instead.
        diagonal: the matrix is diagonal in the computational basis.
        clifford: the (parameter-free) gate is a Clifford operation.
        symmetric: for two-qubit gates, invariant under qubit exchange.
    """

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[[Sequence[float]], np.ndarray] | None
    self_inverse: bool = False
    inverse_name: str | None = None
    diagonal: bool = False
    clifford: bool = False
    symmetric: bool = False


def _spec(name: str, nq: int, np_: int, fn, **kw) -> tuple[str, GateSpec]:
    return name, GateSpec(name, nq, np_, fn, **kw)


GATE_SPECS: dict[str, GateSpec] = dict(
    [
        # --- single-qubit, parameter-free ---
        _spec("id", 1, 0, _mat_id, self_inverse=True, diagonal=True, clifford=True),
        _spec("x", 1, 0, _mat_x, self_inverse=True, clifford=True),
        _spec("y", 1, 0, _mat_y, self_inverse=True, clifford=True),
        _spec("z", 1, 0, _mat_z, self_inverse=True, diagonal=True, clifford=True),
        _spec("h", 1, 0, _mat_h, self_inverse=True, clifford=True),
        _spec("s", 1, 0, _mat_s, inverse_name="sdg", diagonal=True, clifford=True),
        _spec("sdg", 1, 0, _mat_sdg, inverse_name="s", diagonal=True, clifford=True),
        _spec("t", 1, 0, _mat_t, inverse_name="tdg", diagonal=True),
        _spec("tdg", 1, 0, _mat_tdg, inverse_name="t", diagonal=True),
        _spec("sx", 1, 0, _mat_sx, inverse_name="sxdg", clifford=True),
        _spec("sxdg", 1, 0, _mat_sxdg, inverse_name="sx", clifford=True),
        # --- single-qubit, parametrised ---
        _spec("rx", 1, 1, _mat_rx),
        _spec("ry", 1, 1, _mat_ry),
        _spec("rz", 1, 1, _mat_rz, diagonal=True),
        _spec("p", 1, 1, _mat_p, diagonal=True),
        _spec("u1", 1, 1, _mat_u1, diagonal=True),
        _spec("u2", 1, 2, _mat_u2),
        _spec("u", 1, 3, _mat_u),
        _spec("u3", 1, 3, _mat_u),
        # --- two-qubit, parameter-free ---
        _spec("cx", 2, 0, _mat_cx, self_inverse=True, clifford=True),
        _spec("cy", 2, 0, _mat_cy, self_inverse=True, clifford=True),
        _spec(
            "cz", 2, 0, _mat_cz, self_inverse=True, diagonal=True, clifford=True,
            symmetric=True,
        ),
        _spec("ch", 2, 0, _mat_ch, self_inverse=True),
        _spec("swap", 2, 0, _mat_swap, self_inverse=True, clifford=True, symmetric=True),
        _spec("iswap", 2, 0, _mat_iswap, clifford=True, symmetric=True),
        _spec("ecr", 2, 0, _mat_ecr, self_inverse=True),
        # --- two-qubit, parametrised ---
        _spec("cp", 2, 1, _mat_cp, diagonal=True, symmetric=True),
        _spec("crx", 2, 1, _mat_crx),
        _spec("cry", 2, 1, _mat_cry),
        _spec("crz", 2, 1, _mat_crz),
        _spec("csx", 2, 0, _mat_csx, inverse_name=None),
        _spec("cu", 2, 4, _mat_cu),
        _spec("rxx", 2, 1, _mat_rxx, symmetric=True),
        _spec("ryy", 2, 1, _mat_ryy, symmetric=True),
        _spec("rzz", 2, 1, _mat_rzz, diagonal=True, symmetric=True),
        _spec("rzx", 2, 1, _mat_rzx),
        _spec("xx_plus_yy", 2, 2, _mat_xx_plus_yy),
        # --- three-qubit ---
        _spec("ccx", 3, 0, _mat_ccx, self_inverse=True),
        _spec("ccz", 3, 0, _mat_ccz, self_inverse=True, diagonal=True),
        _spec("cswap", 3, 0, _mat_cswap, self_inverse=True),
        # --- non-unitary / structural ---
        _spec("measure", 1, 0, None),
        _spec("reset", 1, 0, None),
        _spec("barrier", 0, 0, None),
    ]
)

_PARAM_INVERTIBLE = {
    "rx", "ry", "rz", "p", "u1", "cp", "crx", "cry", "crz", "rxx", "ryy", "rzz",
    "rzx",
}


def is_supported_gate(name: str) -> bool:
    """Return True if ``name`` is a known gate type."""
    return name in GATE_SPECS


def standard_gate_names() -> tuple[str, ...]:
    """Names of all unitary gates in the library."""
    return tuple(n for n, s in GATE_SPECS.items() if s.matrix_fn is not None)


# ---------------------------------------------------------------------------
# Gate and Instruction objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Gate:
    """A gate instance: a named operation with bound parameter values."""

    name: str
    params: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        spec = GATE_SPECS.get(self.name)
        if spec is None:
            raise ValueError(f"unknown gate type: {self.name!r}")
        if spec.name != "barrier" and len(self.params) != spec.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_params} parameters, "
                f"got {len(self.params)}"
            )
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))

    @property
    def spec(self) -> GateSpec:
        return GATE_SPECS[self.name]

    @property
    def num_qubits(self) -> int:
        return self.spec.num_qubits

    @property
    def is_unitary(self) -> bool:
        return self.spec.matrix_fn is not None

    def matrix(self) -> np.ndarray:
        """Unitary matrix of the gate (raises for non-unitary operations)."""
        return gate_matrix(self)

    def inverse(self) -> "Gate":
        """Return the inverse gate (raises for non-unitary operations)."""
        return gate_inverse(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({args})"
        return self.name


@dataclass(frozen=True)
class Instruction:
    """A gate applied to concrete qubits (and, for measurements, a clbit)."""

    gate: Gate
    qubits: tuple[int, ...]
    clbits: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "clbits", tuple(int(c) for c in self.clbits))
        spec = self.gate.spec
        if spec.name != "barrier" and len(self.qubits) != spec.num_qubits:
            raise ValueError(
                f"gate {self.gate.name!r} acts on {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in instruction: {self.qubits}")

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def params(self) -> tuple[float, ...]:
        return self.gate.params

    def remap(self, mapping: dict[int, int]) -> "Instruction":
        """Return a copy with qubit indices rewritten through ``mapping``."""
        return Instruction(
            self.gate, tuple(mapping[q] for q in self.qubits), self.clbits
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.gate!r} @ {list(self.qubits)}"


# ---------------------------------------------------------------------------
# Matrix / inverse helpers
# ---------------------------------------------------------------------------


#: interned matrices for parameterless gates.  ``gate_matrix("h")`` used to
#: rebuild the same 2x2 array on every call — once per gate per pass per
#: episode; the table makes it a dict lookup.  The cached arrays are marked
#: read-only so an accidental in-place edit raises instead of corrupting
#: every later lookup.
_INTERNED_MATRICES: dict[str, np.ndarray] = {}
for _name, _gspec in GATE_SPECS.items():
    if _gspec.matrix_fn is not None and _gspec.num_params == 0:
        _interned = _gspec.matrix_fn(())
        _interned.flags.writeable = False
        _INTERNED_MATRICES[_name] = _interned
del _name, _gspec, _interned


def gate_matrix(gate: Gate) -> np.ndarray:
    """Return the unitary matrix of ``gate`` in |q0 q1 ...> ordering.

    Parameterless gates return an interned read-only array; copy before
    mutating (no pass does — they only multiply).
    """
    cached = _INTERNED_MATRICES.get(gate.name)
    if cached is not None:
        return cached
    spec = gate.spec
    if spec.matrix_fn is None:
        raise ValueError(f"gate {gate.name!r} has no unitary matrix")
    return spec.matrix_fn(gate.params)


def gate_inverse(gate: Gate) -> Gate:
    """Return the gate implementing the inverse unitary of ``gate``."""
    spec = gate.spec
    if spec.matrix_fn is None:
        raise ValueError(f"gate {gate.name!r} is not invertible")
    if spec.self_inverse:
        return gate
    if spec.inverse_name is not None:
        return Gate(spec.inverse_name)
    if gate.name in _PARAM_INVERTIBLE:
        return Gate(gate.name, tuple(-p for p in gate.params))
    if gate.name in ("u", "u3"):
        theta, phi, lam = gate.params
        return Gate(gate.name, (-theta, -lam, -phi))
    if gate.name == "u2":
        phi, lam = gate.params
        return Gate("u", (-math.pi / 2, -lam, -phi))
    if gate.name == "cu":
        theta, phi, lam, gamma = gate.params
        return Gate("cu", (-theta, -lam, -phi, -gamma))
    if gate.name == "xx_plus_yy":
        theta, beta = gate.params
        return Gate("xx_plus_yy", (-theta, beta))
    if gate.name == "iswap":
        # iswap^-1 has no dedicated name; express it via xx_plus_yy.
        return Gate("xx_plus_yy", (math.pi, 0.0))
    if gate.name == "csx":
        return Gate("cu", (-math.pi / 2, -math.pi / 2, math.pi / 2, -math.pi / 4))
    raise ValueError(f"no inverse rule for gate {gate.name!r}")
