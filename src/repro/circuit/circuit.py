"""The :class:`QuantumCircuit` intermediate representation.

This is the single circuit format shared by every component of the framework
(benchmark generators, compilation passes, reward functions, the RL
environment), mirroring the "unified interface" requirement of the paper:
all compilation actions consume and produce a ``QuantumCircuit``.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Iterable, Iterator, Sequence

from .gates import Gate, Instruction

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """A quantum circuit: an ordered list of instructions on ``num_qubits`` qubits.

    The class intentionally keeps a flat, append-only representation; the DAG
    view needed by optimization and routing passes is built on demand by
    :class:`repro.circuit.dag.DAGCircuit`.
    """

    def __init__(self, num_qubits: int, num_clbits: int | None = None, name: str = "circuit"):
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits) if num_clbits is not None else int(num_qubits)
        self.name = name
        self._instructions: list[Instruction] = []
        self.metadata: dict = {}
        # cached (instruction count, digest) pair; see fingerprint()
        self._fingerprint: tuple[int, str] | None = None

    # -- basic container protocol ------------------------------------------------

    @property
    def instructions(self) -> list[Instruction]:
        return self._instructions

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index):
        return self._instructions[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self._instructions == other._instructions
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self)}, depth={self.depth()})"
        )

    # -- construction --------------------------------------------------------------

    def append(
        self,
        gate: Gate | str,
        qubits: Sequence[int],
        params: Sequence[float] = (),
        clbits: Sequence[int] = (),
    ) -> "QuantumCircuit":
        """Append a gate to the circuit.

        ``gate`` may be a :class:`Gate` instance or a gate name (in which case
        ``params`` supplies its parameters).
        """
        if isinstance(gate, str):
            gate = Gate(gate, tuple(params))
        instr = Instruction(gate, tuple(qubits), tuple(clbits))
        for q in instr.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"qubit index {q} out of range for circuit with "
                    f"{self.num_qubits} qubits"
                )
        for c in instr.clbits:
            if not 0 <= c < self.num_clbits:
                raise ValueError(
                    f"clbit index {c} out of range for circuit with "
                    f"{self.num_clbits} clbits"
                )
        self._instructions.append(instr)
        self._fingerprint = None
        return self

    def append_instruction(self, instruction: Instruction) -> "QuantumCircuit":
        """Append an already-constructed instruction."""
        return self.append(instruction.gate, instruction.qubits, clbits=instruction.clbits)

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        for instr in instructions:
            self.append_instruction(instr)
        return self

    # -- convenience gate constructors ---------------------------------------------

    def i(self, q: int):
        return self.append("id", [q])

    def x(self, q: int):
        return self.append("x", [q])

    def y(self, q: int):
        return self.append("y", [q])

    def z(self, q: int):
        return self.append("z", [q])

    def h(self, q: int):
        return self.append("h", [q])

    def s(self, q: int):
        return self.append("s", [q])

    def sdg(self, q: int):
        return self.append("sdg", [q])

    def t(self, q: int):
        return self.append("t", [q])

    def tdg(self, q: int):
        return self.append("tdg", [q])

    def sx(self, q: int):
        return self.append("sx", [q])

    def sxdg(self, q: int):
        return self.append("sxdg", [q])

    def rx(self, theta: float, q: int):
        return self.append("rx", [q], [theta])

    def ry(self, theta: float, q: int):
        return self.append("ry", [q], [theta])

    def rz(self, phi: float, q: int):
        return self.append("rz", [q], [phi])

    def p(self, lam: float, q: int):
        return self.append("p", [q], [lam])

    def u(self, theta: float, phi: float, lam: float, q: int):
        return self.append("u", [q], [theta, phi, lam])

    def cx(self, control: int, target: int):
        return self.append("cx", [control, target])

    def cy(self, control: int, target: int):
        return self.append("cy", [control, target])

    def cz(self, control: int, target: int):
        return self.append("cz", [control, target])

    def ch(self, control: int, target: int):
        return self.append("ch", [control, target])

    def cp(self, lam: float, control: int, target: int):
        return self.append("cp", [control, target], [lam])

    def crx(self, theta: float, control: int, target: int):
        return self.append("crx", [control, target], [theta])

    def cry(self, theta: float, control: int, target: int):
        return self.append("cry", [control, target], [theta])

    def crz(self, theta: float, control: int, target: int):
        return self.append("crz", [control, target], [theta])

    def cu(self, theta: float, phi: float, lam: float, gamma: float, control: int, target: int):
        return self.append("cu", [control, target], [theta, phi, lam, gamma])

    def swap(self, a: int, b: int):
        return self.append("swap", [a, b])

    def iswap(self, a: int, b: int):
        return self.append("iswap", [a, b])

    def ecr(self, a: int, b: int):
        return self.append("ecr", [a, b])

    def rxx(self, theta: float, a: int, b: int):
        return self.append("rxx", [a, b], [theta])

    def ryy(self, theta: float, a: int, b: int):
        return self.append("ryy", [a, b], [theta])

    def rzz(self, theta: float, a: int, b: int):
        return self.append("rzz", [a, b], [theta])

    def rzx(self, theta: float, a: int, b: int):
        return self.append("rzx", [a, b], [theta])

    def ccx(self, c1: int, c2: int, target: int):
        return self.append("ccx", [c1, c2, target])

    def ccz(self, c1: int, c2: int, target: int):
        return self.append("ccz", [c1, c2, target])

    def cswap(self, control: int, a: int, b: int):
        return self.append("cswap", [control, a, b])

    def measure(self, qubit: int, clbit: int | None = None):
        return self.append("measure", [qubit], clbits=[qubit if clbit is None else clbit])

    def measure_all(self):
        for q in range(self.num_qubits):
            self.measure(q, q)
        return self

    def reset(self, qubit: int):
        return self.append("reset", [qubit])

    def barrier(self, *qubits: int):
        gate = Gate("barrier")
        qs = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        self._instructions.append(Instruction(gate, qs))
        self._fingerprint = None
        return self

    # -- identity ---------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of the circuit (qubit count, gate sequence, parameters).

        The digest identifies the circuit *structurally* — the name and metadata
        do not contribute — which makes it usable as a cache key for analysis
        results (:class:`repro.pipeline.AnalysisCache`) and, combined with the
        name, for the batch-compilation LRU cache.

        The hash is cached on the instance and invalidated by the mutating
        construction methods (``append`` and friends).  Code that reaches into
        ``_instructions`` directly is also covered as long as it changes the
        instruction count; in-place same-length edits of the private list are
        not detected.
        """
        cached = self._fingerprint
        if cached is not None and cached[0] == len(self._instructions):
            return cached[1]
        hasher = hashlib.sha1()
        hasher.update(str(self.num_qubits).encode())
        for instr in self._instructions:
            params = ",".join(f"{p:.12g}" for p in instr.params)
            hasher.update(f";{instr.name}@{instr.qubits}/{instr.clbits}({params})".encode())
        digest = hasher.hexdigest()
        self._fingerprint = (len(self._instructions), digest)
        return digest

    # -- metrics --------------------------------------------------------------------

    def depth(self, *, only_2q: bool = False) -> int:
        """Circuit depth: length of the longest gate chain over any qubit.

        With ``only_2q=True``, only multi-qubit gates contribute to the depth
        (single-qubit gates are transparent), matching the "two-qubit depth"
        used by the critical-depth metric.
        """
        levels = [0] * max(self.num_qubits, 1)
        clevels = [0] * max(self.num_clbits, 1)
        for instr in self._instructions:
            if instr.name == "barrier":
                continue
            counts = only_2q and len(instr.qubits) < 2
            involved = [levels[q] for q in instr.qubits]
            involved += [clevels[c] for c in instr.clbits]
            new_level = max(involved, default=0) + (0 if counts else 1)
            for q in instr.qubits:
                levels[q] = new_level
            for c in instr.clbits:
                clevels[c] = new_level
        return max(levels + clevels, default=0)

    def count_ops(self) -> Counter:
        """Histogram of gate names."""
        return Counter(instr.name for instr in self._instructions)

    def size(self) -> int:
        """Number of operations excluding barriers."""
        return sum(1 for instr in self._instructions if instr.name != "barrier")

    def num_gates(self, *, min_qubits: int = 1) -> int:
        """Number of unitary gates acting on at least ``min_qubits`` qubits."""
        return sum(
            1
            for instr in self._instructions
            if instr.gate.is_unitary and len(instr.qubits) >= min_qubits
        )

    def num_two_qubit_gates(self) -> int:
        return self.num_gates(min_qubits=2)

    def num_parameters(self) -> int:
        return sum(len(instr.params) for instr in self._instructions)

    def active_qubits(self) -> set[int]:
        """Qubits touched by at least one non-barrier instruction."""
        used: set[int] = set()
        for instr in self._instructions:
            if instr.name != "barrier":
                used.update(instr.qubits)
        return used

    def gate_names(self) -> set[str]:
        """Set of gate names appearing in the circuit (excluding barriers/measures)."""
        return {
            instr.name
            for instr in self._instructions
            if instr.name not in ("barrier", "measure", "reset")
        }

    def two_qubit_interactions(self) -> set[tuple[int, int]]:
        """Unordered qubit pairs coupled by at least one multi-qubit gate."""
        pairs: set[tuple[int, int]] = set()
        for instr in self._instructions:
            if instr.name == "barrier" or len(instr.qubits) < 2:
                continue
            qs = instr.qubits
            for i in range(len(qs)):
                for j in range(i + 1, len(qs)):
                    pairs.add((min(qs[i], qs[j]), max(qs[i], qs[j])))
        return pairs

    # -- transformations --------------------------------------------------------------

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        out._instructions = list(self._instructions)
        out.metadata = dict(self.metadata)
        out._fingerprint = self._fingerprint
        return out

    def compose(self, other: "QuantumCircuit", qubits: Sequence[int] | None = None) -> "QuantumCircuit":
        """Return a new circuit with ``other`` appended after ``self``.

        ``qubits`` maps the other circuit's qubit *i* onto ``qubits[i]`` of
        this circuit (identity mapping by default).
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise ValueError("qubit mapping length must match other.num_qubits")
        out = self.copy()
        mapping = {i: int(q) for i, q in enumerate(qubits)}
        for instr in other:
            if instr.name == "barrier":
                out._instructions.append(
                    Instruction(instr.gate, tuple(mapping[q] for q in instr.qubits))
                )
            else:
                out.append(instr.gate, [mapping[q] for q in instr.qubits], clbits=instr.clbits)
        return out

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (reversed order, inverted gates)."""
        out = QuantumCircuit(self.num_qubits, self.num_clbits, f"{self.name}_dg")
        for instr in reversed(self._instructions):
            if instr.name == "barrier":
                out._instructions.append(instr)
                continue
            if not instr.gate.is_unitary:
                raise ValueError("cannot invert a circuit containing measurements/resets")
            out.append(instr.gate.inverse(), instr.qubits)
        return out

    def remap_qubits(self, mapping: dict[int, int], num_qubits: int | None = None) -> "QuantumCircuit":
        """Return a copy with every qubit index rewritten through ``mapping``."""
        n = num_qubits if num_qubits is not None else self.num_qubits
        out = QuantumCircuit(n, self.num_clbits, self.name)
        out.metadata = dict(self.metadata)
        for instr in self._instructions:
            out._instructions.append(instr.remap({q: mapping[q] for q in instr.qubits}))
        return out

    def without_final_measurements(self) -> "QuantumCircuit":
        """Return a copy with trailing measurement/barrier operations removed."""
        out = self.copy()
        while out._instructions and out._instructions[-1].name in ("measure", "barrier"):
            out._instructions.pop()
        return out

    def without_measurements(self) -> "QuantumCircuit":
        """Return a copy with every measurement and reset removed.

        Useful for computing the pre-measurement state of a circuit whose
        measurements are terminal on each wire but interleaved with gates on
        other wires (the usual situation after compilation).
        """
        out = self.copy()
        out._instructions = [
            instr for instr in self._instructions if instr.name not in ("measure", "reset")
        ]
        return out

    def without_ancillas(self) -> tuple["QuantumCircuit", dict[int, int]]:
        """Compact the circuit onto its active qubits.

        Returns the compacted circuit and the old-index → new-index mapping.
        """
        used = sorted(self.active_qubits())
        mapping = {old: new for new, old in enumerate(used)}
        out = QuantumCircuit(len(used), self.num_clbits, self.name)
        out.metadata = dict(self.metadata)
        for instr in self._instructions:
            if instr.name == "barrier":
                qs = tuple(mapping[q] for q in instr.qubits if q in mapping)
                out._instructions.append(Instruction(instr.gate, qs))
            else:
                out._instructions.append(instr.remap({q: mapping[q] for q in instr.qubits}))
        return out, mapping

    # -- pretty printing ---------------------------------------------------------------

    def summary(self) -> str:
        """One-paragraph human-readable summary of the circuit."""
        ops = ", ".join(f"{name}:{count}" for name, count in sorted(self.count_ops().items()))
        return (
            f"{self.name}: {self.num_qubits} qubits, {self.size()} ops, "
            f"depth {self.depth()}, 2q-gates {self.num_two_qubit_gates()} [{ops}]"
        )
