"""Random circuit generation used by tests, fuzzing, and micro-benchmarks."""

from __future__ import annotations

import numpy as np

from .circuit import QuantumCircuit

__all__ = ["random_circuit", "random_clifford_circuit"]

_ONE_Q_GATES = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx")
_ONE_Q_PARAM_GATES = ("rx", "ry", "rz", "p")
_TWO_Q_GATES = ("cx", "cz", "swap", "ch", "cy")
_TWO_Q_PARAM_GATES = ("cp", "crz", "rzz", "rxx", "crx", "cry")
_CLIFFORD_1Q = ("x", "y", "z", "h", "s", "sdg", "sx", "sxdg")
_CLIFFORD_2Q = ("cx", "cz", "swap")


def random_circuit(
    num_qubits: int,
    depth: int,
    *,
    seed: int | None = None,
    two_qubit_prob: float = 0.4,
    parametrised_prob: float = 0.5,
    measure: bool = False,
) -> QuantumCircuit:
    """Generate a random circuit with roughly ``depth`` layers.

    Each layer pairs up a random subset of qubits for two-qubit gates (with
    probability ``two_qubit_prob`` per available pair) and fills the rest
    with single-qubit gates.
    """
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}q")
    for _ in range(depth):
        qubits = list(rng.permutation(num_qubits))
        while len(qubits) >= 2 and rng.random() < two_qubit_prob:
            a, b = int(qubits.pop()), int(qubits.pop())
            if rng.random() < parametrised_prob:
                gate = str(rng.choice(_TWO_Q_PARAM_GATES))
                circuit.append(gate, [a, b], [float(rng.uniform(0, 2 * np.pi))])
            else:
                circuit.append(str(rng.choice(_TWO_Q_GATES)), [a, b])
        for q in qubits:
            if rng.random() < parametrised_prob:
                gate = str(rng.choice(_ONE_Q_PARAM_GATES))
                circuit.append(gate, [int(q)], [float(rng.uniform(0, 2 * np.pi))])
            else:
                circuit.append(str(rng.choice(_ONE_Q_GATES)), [int(q)])
    if measure:
        circuit.measure_all()
    return circuit


def random_clifford_circuit(
    num_qubits: int, depth: int, *, seed: int | None = None
) -> QuantumCircuit:
    """Generate a random circuit containing only Clifford gates."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"clifford_{num_qubits}q")
    for _ in range(depth):
        qubits = list(rng.permutation(num_qubits))
        while len(qubits) >= 2 and rng.random() < 0.4:
            a, b = int(qubits.pop()), int(qubits.pop())
            circuit.append(str(rng.choice(_CLIFFORD_2Q)), [a, b])
        for q in qubits:
            circuit.append(str(rng.choice(_CLIFFORD_1Q)), [int(q)])
    return circuit
