"""Plain-text rendering of quantum circuits.

A lightweight column-per-instruction ASCII drawer, handy for inspecting
small circuits in examples, logs, and debugging sessions::

    q0: ─[h]──●──────M
              │
    q1: ──────X──●───M
                 │
    q2: ─────────X───M
"""

from __future__ import annotations

from .circuit import QuantumCircuit
from .gates import Instruction

__all__ = ["draw"]

_MAX_COLUMNS = 400


def _gate_label(instruction: Instruction) -> str:
    if instruction.params:
        args = ",".join(f"{p:.2g}" for p in instruction.params)
        return f"{instruction.name}({args})"
    return instruction.name


def draw(circuit: QuantumCircuit, *, max_width: int = 120) -> str:
    """Render ``circuit`` as an ASCII diagram (one row per qubit).

    Instructions are placed into the earliest column in which all of their
    qubits are free, so parallel gates share a column.  Output is truncated
    (with an ellipsis marker) once ``max_width`` characters per row are
    reached.
    """
    n = circuit.num_qubits
    if n == 0:
        return "(empty circuit)"
    # column index where each qubit wire is currently free
    free_at = [0] * n
    columns: list[dict[int, str]] = []

    def place(instruction: Instruction) -> None:
        qubits = instruction.qubits or tuple(range(n))
        start = max(free_at[q] for q in qubits)
        while len(columns) <= start:
            columns.append({})
        cells = columns[start]
        label = _render_cells(instruction)
        for qubit, text in label.items():
            cells[qubit] = text
        low, high = min(qubits), max(qubits)
        for qubit in range(low, high + 1):
            cells.setdefault(qubit, "│")
            free_at[qubit] = start + 1

    for instruction in circuit:
        if len(columns) > _MAX_COLUMNS:
            break
        place(instruction)

    rows = []
    for qubit in range(n):
        parts = [f"q{qubit}: "]
        for cells in columns:
            text = cells.get(qubit, "─")
            parts.append(f"─{text}─" if text not in ("─", "│") else f"─{text}─")
        row = "".join(parts)
        if len(row) > max_width:
            row = row[: max_width - 1] + "…"
        rows.append(row)
    return "\n".join(rows)


def _render_cells(instruction: Instruction) -> dict[int, str]:
    """Choose the per-qubit symbols for one instruction."""
    name = instruction.name
    qubits = instruction.qubits
    if name == "barrier":
        return {q: "░" for q in qubits}
    if name == "measure":
        return {qubits[0]: "M"}
    if name == "reset":
        return {qubits[0]: "|0>"}
    if len(qubits) == 1:
        return {qubits[0]: f"[{_gate_label(instruction)}]"}
    if name in ("cx", "cy", "cz", "ch", "cp", "crx", "cry", "crz", "cu", "csx"):
        control, target = qubits
        symbol = "X" if name == "cx" else f"[{_gate_label(instruction)}]"
        if name == "cz":
            symbol = "●"
        return {control: "●", target: symbol}
    if name == "swap":
        return {qubits[0]: "x", qubits[1]: "x"}
    if name in ("ccx", "ccz"):
        return {qubits[0]: "●", qubits[1]: "●", qubits[2]: "X" if name == "ccx" else "●"}
    if name == "cswap":
        return {qubits[0]: "●", qubits[1]: "x", qubits[2]: "x"}
    label = f"[{_gate_label(instruction)}]"
    return {q: label for q in qubits}
