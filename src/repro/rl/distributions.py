"""Masked categorical action distribution used by the PPO policy."""

from __future__ import annotations

import numpy as np

__all__ = ["MaskedCategorical"]

_NEG_INF = -1e9


class MaskedCategorical:
    """Categorical distribution over logits with invalid actions masked out."""

    def __init__(self, logits: np.ndarray, mask: np.ndarray | None = None):
        logits = np.atleast_2d(np.asarray(logits, dtype=np.float64))
        if mask is not None:
            mask = np.atleast_2d(np.asarray(mask, dtype=bool))
            if mask.shape != logits.shape:
                raise ValueError("mask shape must match logits shape")
            if not np.all(mask.any(axis=1)):
                raise ValueError("every sample needs at least one valid action")
            logits = np.where(mask, logits, _NEG_INF)
        self.mask = mask
        self.logits = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(self.logits)
        self.probs = exp / exp.sum(axis=1, keepdims=True)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        cumulative = np.cumsum(self.probs, axis=1)
        draws = rng.random((self.probs.shape[0], 1))
        return (draws < cumulative).argmax(axis=1)

    def mode(self) -> np.ndarray:
        return self.probs.argmax(axis=1)

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        actions = np.asarray(actions, dtype=int)
        rows = np.arange(self.probs.shape[0])
        return np.log(self.probs[rows, actions] + 1e-12)

    def entropy(self) -> np.ndarray:
        safe = np.where(self.probs > 1e-12, self.probs, 1.0)
        return -(self.probs * np.log(safe)).sum(axis=1)

    def log_prob_grad_logits(self, actions: np.ndarray) -> np.ndarray:
        """d log p(a) / d logits for each sample: one_hot(a) - probs (0 on masked)."""
        actions = np.asarray(actions, dtype=int)
        grad = -self.probs.copy()
        rows = np.arange(self.probs.shape[0])
        grad[rows, actions] += 1.0
        if self.mask is not None:
            grad = np.where(self.mask, grad, 0.0)
        return grad

    def entropy_grad_logits(self) -> np.ndarray:
        """d H / d logits = -p * (log p + H)."""
        safe = np.where(self.probs > 1e-12, self.probs, 1.0)
        log_probs = np.log(safe)
        entropy = self.entropy()[:, None]
        grad = -self.probs * (log_probs + entropy)
        if self.mask is not None:
            grad = np.where(self.mask, grad, 0.0)
        return grad
