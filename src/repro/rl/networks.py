"""Small fully-connected networks with manual backpropagation.

Stable-Baselines3's PPO uses two-hidden-layer tanh MLPs for the policy and
value function; this module provides the same architecture in plain NumPy,
together with an Adam optimiser, so that training runs without any deep
learning framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MLP", "Adam"]


@dataclass
class _ForwardCache:
    """Intermediate activations needed for the backward pass."""

    inputs: np.ndarray
    pre_activations: list[np.ndarray] = field(default_factory=list)
    activations: list[np.ndarray] = field(default_factory=list)


class MLP:
    """A tanh multi-layer perceptron with a linear output layer."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        hidden_sizes: tuple[int, ...] = (64, 64),
        *,
        seed: int = 0,
        output_scale: float = 0.01,
    ):
        rng = np.random.default_rng(seed)
        sizes = [input_dim, *hidden_sizes, output_dim]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for i in range(len(sizes) - 1):
            fan_in, fan_out = sizes[i], sizes[i + 1]
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            if i == len(sizes) - 2:
                scale *= output_scale
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # -- inference ----------------------------------------------------------------

    def forward(self, inputs: np.ndarray) -> tuple[np.ndarray, _ForwardCache]:
        """Compute outputs for a batch; return (outputs, cache for backward)."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        cache = _ForwardCache(inputs=inputs)
        activation = inputs
        last = len(self.weights) - 1
        for i, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            pre = activation @ weight + bias
            cache.pre_activations.append(pre)
            activation = pre if i == last else np.tanh(pre)
            cache.activations.append(activation)
        return activation, cache

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        outputs, _ = self.forward(inputs)
        return outputs

    # -- training ------------------------------------------------------------------

    def backward(
        self, cache: _ForwardCache, grad_output: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Backpropagate ``grad_output`` (dLoss/dOutput); return per-layer (dW, db)."""
        grads: list[tuple[np.ndarray, np.ndarray]] = [None] * len(self.weights)  # type: ignore[list-item]
        grad = np.atleast_2d(grad_output)
        last = len(self.weights) - 1
        for i in range(last, -1, -1):
            if i != last:
                grad = grad * (1.0 - cache.activations[i] ** 2)
            previous = cache.inputs if i == 0 else cache.activations[i - 1]
            grad_w = previous.T @ grad
            grad_b = grad.sum(axis=0)
            grads[i] = (grad_w, grad_b)
            grad = grad @ self.weights[i].T
        return grads

    # -- parameter access -----------------------------------------------------------

    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for weight, bias in zip(self.weights, self.biases):
            params.extend((weight, bias))
        return params

    def set_parameters(self, params: list[np.ndarray]) -> None:
        if len(params) != 2 * len(self.weights):
            raise ValueError("parameter list length mismatch")
        for i in range(len(self.weights)):
            self.weights[i] = np.array(params[2 * i], dtype=np.float64)
            self.biases[i] = np.array(params[2 * i + 1], dtype=np.float64)

    def flatten_grads(self, grads: list[tuple[np.ndarray, np.ndarray]]) -> list[np.ndarray]:
        flat: list[np.ndarray] = []
        for grad_w, grad_b in grads:
            flat.extend((grad_w, grad_b))
        return flat

    def state_dict(self) -> dict:
        return {
            "weights": [w.tolist() for w in self.weights],
            "biases": [b.tolist() for b in self.biases],
        }

    def load_state_dict(self, state: dict) -> None:
        self.weights = [np.array(w, dtype=np.float64) for w in state["weights"]]
        self.biases = [np.array(b, dtype=np.float64) for b in state["biases"]]


class Adam:
    """Adam optimiser over a list of parameter arrays (updated in place)."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        learning_rate: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.step_count = 0
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]

    def step(self, grads: list[np.ndarray]) -> None:
        if len(grads) != len(self.parameters):
            raise ValueError("gradient list length mismatch")
        self.step_count += 1
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for param, grad, m, v in zip(self.parameters, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
