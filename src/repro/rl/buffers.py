"""Rollout storage and generalised advantage estimation for PPO.

The buffer is shaped ``(n_steps, n_envs, ...)`` so one instance serves both
the single-environment loop (``n_envs=1``) and vectorised rollouts collected
from a :class:`~repro.rl.vecenv.VectorEnv` fleet.

Episode ends are stored as two separate flags per step:

* ``terminated`` — the MDP reached a terminal state; the value of the
  successor state is zero by definition.
* ``truncated`` — the episode was cut short (e.g. a ``max_steps`` limit);
  the successor state is *not* terminal, so its value must be bootstrapped
  into the return.  ``bootstrap_values`` carries ``V(s_final)`` for exactly
  these steps.

Conflating the two (the pre-vectorisation behaviour) biases the GAE targets
of every episode that hits the step limit: the return of the final step was
``r`` instead of ``r + gamma * V(s_final)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RolloutBuffer", "RolloutBatch"]


@dataclass
class RolloutBatch:
    """A minibatch of flattened rollout data."""

    observations: np.ndarray
    actions: np.ndarray
    old_log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray
    action_masks: np.ndarray


class RolloutBuffer:
    """Fixed-size on-policy buffer with GAE-lambda advantage computation.

    ``add`` accepts per-step data for all ``n_envs`` environments at once;
    scalars are broadcast, so single-env callers can keep passing plain
    floats/ints.
    """

    def __init__(
        self,
        buffer_size: int,
        observation_dim: int,
        num_actions: int,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        n_envs: int = 1,
    ):
        if n_envs < 1:
            raise ValueError("n_envs must be at least 1")
        self.buffer_size = buffer_size
        self.n_envs = n_envs
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self.observations = np.zeros((buffer_size, n_envs, observation_dim))
        self.actions = np.zeros((buffer_size, n_envs), dtype=int)
        self.rewards = np.zeros((buffer_size, n_envs))
        self.terminated = np.zeros((buffer_size, n_envs), dtype=bool)
        self.truncated = np.zeros((buffer_size, n_envs), dtype=bool)
        self.values = np.zeros((buffer_size, n_envs))
        self.log_probs = np.zeros((buffer_size, n_envs))
        self.action_masks = np.ones((buffer_size, n_envs, num_actions), dtype=bool)
        #: V(s_final) for steps where the episode was truncated (0 elsewhere)
        self.bootstrap_values = np.zeros((buffer_size, n_envs))
        self.advantages = np.zeros((buffer_size, n_envs))
        self.returns = np.zeros((buffer_size, n_envs))
        self.position = 0

    @property
    def full(self) -> bool:
        return self.position >= self.buffer_size

    def reset(self) -> None:
        self.position = 0

    def add(
        self,
        observations: np.ndarray,
        actions,
        rewards,
        terminated,
        truncated,
        values,
        log_probs,
        action_masks: np.ndarray,
        bootstrap_values=0.0,
    ) -> None:
        """Record one transition per environment (scalars broadcast to ``n_envs``)."""
        if self.full:
            raise RuntimeError("rollout buffer is full")
        index = self.position
        self.observations[index] = np.reshape(observations, (self.n_envs, -1))
        self.actions[index] = actions
        self.rewards[index] = rewards
        self.terminated[index] = terminated
        self.truncated[index] = truncated
        self.values[index] = values
        self.log_probs[index] = log_probs
        self.action_masks[index] = np.reshape(action_masks, (self.n_envs, -1))
        self.bootstrap_values[index] = bootstrap_values
        self.position += 1

    def compute_returns_and_advantages(self, last_values) -> None:
        """GAE-lambda advantages and discounted returns (SB3 convention).

        ``last_values`` are the value estimates of the observations the
        rollout stopped at (one per env), used to bootstrap episodes that
        are still running when the buffer fills.  Episodes that ended inside
        the buffer are handled per step: terminal steps contribute no
        successor value, truncated steps bootstrap the recorded
        ``bootstrap_values`` (the truncated state's value).
        """
        last_values = np.broadcast_to(
            np.asarray(last_values, dtype=float), (self.n_envs,)
        )
        last_gae = np.zeros(self.n_envs)
        for step in reversed(range(self.position)):
            ended = self.terminated[step] | self.truncated[step]
            next_non_terminal = 1.0 - ended
            if step == self.position - 1:
                next_values = last_values
            else:
                next_values = self.values[step + 1]
            # Truncated steps: the chain of future rewards is cut, but the
            # truncated state's value stands in for them.
            successor = next_values * next_non_terminal + self.bootstrap_values[step]
            delta = self.rewards[step] + self.gamma * successor - self.values[step]
            last_gae = delta + self.gamma * self.gae_lambda * next_non_terminal * last_gae
            self.advantages[step] = last_gae
        self.returns[: self.position] = (
            self.advantages[: self.position] + self.values[: self.position]
        )

    def minibatches(self, batch_size: int, rng: np.random.Generator):
        """Yield shuffled minibatches over all collected (step, env) samples."""
        total = self.position * self.n_envs
        flat = lambda array: array[: self.position].reshape(total, *array.shape[2:])  # noqa: E731
        observations = flat(self.observations)
        actions = flat(self.actions)
        log_probs = flat(self.log_probs)
        advantages = flat(self.advantages)
        returns = flat(self.returns)
        action_masks = flat(self.action_masks)
        indices = rng.permutation(total)
        for start in range(0, total, batch_size):
            batch = indices[start : start + batch_size]
            yield RolloutBatch(
                observations=observations[batch],
                actions=actions[batch],
                old_log_probs=log_probs[batch],
                advantages=advantages[batch],
                returns=returns[batch],
                action_masks=action_masks[batch],
            )
