"""Rollout storage and generalised advantage estimation for PPO."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RolloutBuffer", "RolloutBatch"]


@dataclass
class RolloutBatch:
    """A minibatch of flattened rollout data."""

    observations: np.ndarray
    actions: np.ndarray
    old_log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray
    action_masks: np.ndarray


class RolloutBuffer:
    """Fixed-size on-policy buffer with GAE-lambda advantage computation."""

    def __init__(
        self,
        buffer_size: int,
        observation_dim: int,
        num_actions: int,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
    ):
        self.buffer_size = buffer_size
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self.observations = np.zeros((buffer_size, observation_dim))
        self.actions = np.zeros(buffer_size, dtype=int)
        self.rewards = np.zeros(buffer_size)
        self.episode_starts = np.zeros(buffer_size, dtype=bool)
        self.values = np.zeros(buffer_size)
        self.log_probs = np.zeros(buffer_size)
        self.action_masks = np.ones((buffer_size, num_actions), dtype=bool)
        self.advantages = np.zeros(buffer_size)
        self.returns = np.zeros(buffer_size)
        self.position = 0

    @property
    def full(self) -> bool:
        return self.position >= self.buffer_size

    def reset(self) -> None:
        self.position = 0

    def add(
        self,
        observation: np.ndarray,
        action: int,
        reward: float,
        episode_start: bool,
        value: float,
        log_prob: float,
        action_mask: np.ndarray,
    ) -> None:
        if self.full:
            raise RuntimeError("rollout buffer is full")
        index = self.position
        self.observations[index] = observation
        self.actions[index] = action
        self.rewards[index] = reward
        self.episode_starts[index] = episode_start
        self.values[index] = value
        self.log_probs[index] = log_prob
        self.action_masks[index] = action_mask
        self.position += 1

    def compute_returns_and_advantages(self, last_value: float, done: bool) -> None:
        """GAE-lambda advantages and discounted returns (SB3 convention)."""
        last_gae = 0.0
        for step in reversed(range(self.position)):
            if step == self.position - 1:
                next_non_terminal = 0.0 if done else 1.0
                next_value = last_value
            else:
                next_non_terminal = 0.0 if self.episode_starts[step + 1] else 1.0
                next_value = self.values[step + 1]
            delta = (
                self.rewards[step]
                + self.gamma * next_value * next_non_terminal
                - self.values[step]
            )
            last_gae = delta + self.gamma * self.gae_lambda * next_non_terminal * last_gae
            self.advantages[step] = last_gae
        self.returns[: self.position] = (
            self.advantages[: self.position] + self.values[: self.position]
        )

    def minibatches(self, batch_size: int, rng: np.random.Generator):
        """Yield shuffled minibatches over the collected steps."""
        indices = rng.permutation(self.position)
        for start in range(0, self.position, batch_size):
            batch = indices[start : start + batch_size]
            yield RolloutBatch(
                observations=self.observations[batch],
                actions=self.actions[batch],
                old_log_probs=self.log_probs[batch],
                advantages=self.advantages[batch],
                returns=self.returns[batch],
                action_masks=self.action_masks[batch],
            )
