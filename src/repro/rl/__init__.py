"""Reinforcement-learning substrate: env API, vectorised fleets, networks, PPO."""

from .buffers import RolloutBatch, RolloutBuffer
from .distributions import MaskedCategorical
from .env import Env
from .networks import MLP, Adam
from .ppo import PPO, PPOConfig, TrainingSummary
from .spaces import Box, Discrete
from .vecenv import AsyncVectorEnv, SyncVectorEnv, VectorEnv, make_compilation_vec_env

__all__ = [
    "Env",
    "VectorEnv",
    "SyncVectorEnv",
    "AsyncVectorEnv",
    "make_compilation_vec_env",
    "Box",
    "Discrete",
    "MLP",
    "Adam",
    "MaskedCategorical",
    "RolloutBuffer",
    "RolloutBatch",
    "PPO",
    "PPOConfig",
    "TrainingSummary",
]
