"""Reinforcement-learning substrate: env API, networks, and PPO."""

from .buffers import RolloutBatch, RolloutBuffer
from .distributions import MaskedCategorical
from .env import Env
from .networks import MLP, Adam
from .ppo import PPO, PPOConfig, TrainingSummary
from .spaces import Box, Discrete

__all__ = [
    "Env",
    "Box",
    "Discrete",
    "MLP",
    "Adam",
    "MaskedCategorical",
    "RolloutBuffer",
    "RolloutBatch",
    "PPO",
    "PPOConfig",
    "TrainingSummary",
]
