"""Minimal reinforcement-learning environment interface (OpenAI-Gym style).

The paper builds its compilation MDP on the OpenAI Gym API; this module
provides the same ``reset`` / ``step`` contract (plus an ``action_masks``
hook for invalid-action masking, which the compilation environment relies on
to restrict actions to those valid in the current MDP state).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .spaces import Box, Discrete

__all__ = ["Env"]


class Env(ABC):
    """Abstract episodic environment with a Box observation and Discrete actions."""

    observation_space: Box
    action_space: Discrete

    @abstractmethod
    def reset(self, *, seed: int | None = None) -> tuple[np.ndarray, dict]:
        """Start a new episode; return the initial observation and an info dict."""

    @abstractmethod
    def step(self, action: int) -> tuple[np.ndarray, float, bool, bool, dict]:
        """Apply ``action``; return (observation, reward, terminated, truncated, info)."""

    def action_masks(self) -> np.ndarray:
        """Boolean mask of currently valid actions (default: all valid)."""
        return np.ones(self.action_space.n, dtype=bool)

    def close(self) -> None:  # pragma: no cover - nothing to clean up by default
        """Release any resources held by the environment."""
