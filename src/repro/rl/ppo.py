"""Proximal Policy Optimization with invalid-action masking (NumPy).

A from-scratch implementation of the PPO algorithm (Schulman et al., 2017)
matching the behaviour of Stable-Baselines3's ``MaskablePPO``: clipped
surrogate objective, GAE-lambda advantages, entropy bonus, value-function
loss, minibatch Adam updates, and boolean action masks supplied by the
environment at every step.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from .buffers import RolloutBuffer
from .distributions import MaskedCategorical
from .env import Env
from .networks import MLP, Adam
from .vecenv import SyncVectorEnv, VectorEnv

__all__ = ["PPOConfig", "PPO", "TrainingSummary"]


@dataclass
class PPOConfig:
    """Hyperparameters (defaults follow Stable-Baselines3's PPO defaults)."""

    learning_rate: float = 3e-4
    n_steps: int = 256
    batch_size: int = 64
    n_epochs: int = 10
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_range: float = 0.2
    ent_coef: float = 0.01
    vf_coef: float = 0.5
    max_grad_norm: float = 0.5
    hidden_sizes: tuple[int, ...] = (64, 64)


@dataclass
class TrainingSummary:
    """Aggregate statistics returned by :meth:`PPO.learn`."""

    total_timesteps: int
    episodes: int
    mean_episode_reward: float
    mean_episode_length: float
    reward_history: list[float]


class PPO:
    """PPO agent over a (maskable) environment or a vectorised fleet of them.

    A plain :class:`~repro.rl.env.Env` is wrapped into a single-member
    :class:`~repro.rl.vecenv.SyncVectorEnv`, so the single-environment path
    is literally the ``n_envs=1`` special case of the vectorised rollout
    loop: training on a raw env and on a one-member fleet consumes the same
    RNG stream and produces byte-identical updates.  (Episode resets happen
    inside the fleet now — unseeded, continuing each env's own RNG — so
    trajectories are *not* comparable with the pre-vectorisation loop, which
    drew a fresh reset seed from the agent's RNG per episode.)
    """

    def __init__(self, env: "Env | VectorEnv", config: PPOConfig | None = None, seed: int = 0):
        self.env = env
        self.vec_env = env if isinstance(env, VectorEnv) else SyncVectorEnv.from_envs([env])
        self.config = config or PPOConfig()
        self.rng = np.random.default_rng(seed)
        obs_dim = int(np.prod(self.vec_env.observation_space.shape))
        n_actions = self.vec_env.action_space.n
        self.policy_net = MLP(obs_dim, n_actions, self.config.hidden_sizes, seed=seed)
        self.value_net = MLP(obs_dim, 1, self.config.hidden_sizes, seed=seed + 1, output_scale=1.0)
        self.policy_optimizer = Adam(self.policy_net.parameters(), self.config.learning_rate)
        self.value_optimizer = Adam(self.value_net.parameters(), self.config.learning_rate)
        self.num_timesteps = 0
        self._episode_rewards: list[float] = []
        self._episode_lengths: list[int] = []

    # -- acting --------------------------------------------------------------------

    def predict(
        self,
        observation: np.ndarray,
        action_mask: np.ndarray | None = None,
        deterministic: bool = True,
    ) -> int:
        """Pick an action for ``observation`` (greedy by default)."""
        logits = self.policy_net(observation)
        dist = MaskedCategorical(logits, None if action_mask is None else action_mask[None, :])
        if deterministic:
            return int(dist.mode()[0])
        return int(dist.sample(self.rng)[0])

    def value(self, observation: np.ndarray) -> float:
        return float(self.value_net(observation)[0, 0])

    # -- learning -------------------------------------------------------------------

    def learn(self, total_timesteps: int, log_callback=None) -> TrainingSummary:
        """Run PPO training for ``total_timesteps`` environment steps.

        Rollouts are collected from all fleet members at once: one batched
        policy/value forward per fleet step, ``n_envs`` environment steps per
        iteration.  Episodes that hit a time limit (``truncated`` without
        ``terminated``) bootstrap the value of their final observation into
        the GAE targets instead of being treated as terminal.
        """
        config = self.config
        vec = self.vec_env
        n_envs = vec.num_envs
        obs_dim = int(np.prod(vec.observation_space.shape))
        buffer = RolloutBuffer(
            config.n_steps,
            obs_dim,
            vec.action_space.n,
            config.gamma,
            config.gae_lambda,
            n_envs=n_envs,
        )
        observations, _ = vec.reset(seed=int(self.rng.integers(2**31 - 1)))
        episode_rewards = np.zeros(n_envs)
        episode_lengths = np.zeros(n_envs, dtype=int)

        while self.num_timesteps < total_timesteps:
            buffer.reset()
            while not buffer.full and self.num_timesteps < total_timesteps:
                masks = vec.action_masks()
                logits = self.policy_net(observations)
                dist = MaskedCategorical(logits, masks)
                actions = dist.sample(self.rng)
                log_probs = dist.log_prob(actions)
                values = self.value_net(observations)[:, 0]

                next_observations, rewards, terminated, truncated, infos = vec.step(actions)
                # Time-limit bootstrapping: the truncated state is not
                # terminal, so its value stands in for the cut-off future.
                bootstrap_values = np.zeros(n_envs)
                for i in np.flatnonzero(truncated & ~terminated):
                    final_obs = infos["final_observation"][i]
                    if final_obs is not None:
                        bootstrap_values[i] = self.value(final_obs)
                buffer.add(
                    observations,
                    actions,
                    rewards,
                    terminated,
                    truncated,
                    values,
                    log_probs,
                    masks,
                    bootstrap_values,
                )
                self.num_timesteps += n_envs
                episode_rewards += rewards
                episode_lengths += 1
                for i in np.flatnonzero(terminated | truncated):
                    self._episode_rewards.append(float(episode_rewards[i]))
                    self._episode_lengths.append(int(episode_lengths[i]))
                    if log_callback is not None:
                        log_callback(
                            self.num_timesteps,
                            float(episode_rewards[i]),
                            int(episode_lengths[i]),
                        )
                    episode_rewards[i] = 0.0
                    episode_lengths[i] = 0
                observations = next_observations
            last_values = self.value_net(observations)[:, 0]
            buffer.compute_returns_and_advantages(last_values)
            self._update(buffer)

        return TrainingSummary(
            total_timesteps=self.num_timesteps,
            episodes=len(self._episode_rewards),
            mean_episode_reward=float(np.mean(self._episode_rewards[-100:]))
            if self._episode_rewards
            else 0.0,
            mean_episode_length=float(np.mean(self._episode_lengths[-100:]))
            if self._episode_lengths
            else 0.0,
            reward_history=list(self._episode_rewards),
        )

    def _update(self, buffer: RolloutBuffer) -> None:
        config = self.config
        for _ in range(config.n_epochs):
            for batch in buffer.minibatches(config.batch_size, self.rng):
                advantages = batch.advantages
                if advantages.size > 1 and advantages.std() > 1e-8:
                    advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

                # --- policy update ---
                logits, policy_cache = self.policy_net.forward(batch.observations)
                dist = MaskedCategorical(logits, batch.action_masks)
                log_probs = dist.log_prob(batch.actions)
                ratio = np.exp(log_probs - batch.old_log_probs)
                unclipped = ratio * advantages
                clipped = np.clip(ratio, 1.0 - config.clip_range, 1.0 + config.clip_range) * advantages

                # gradient of -min(unclipped, clipped) w.r.t. log-prob
                use_unclipped = unclipped <= clipped
                within_clip = (ratio > 1.0 - config.clip_range) & (ratio < 1.0 + config.clip_range)
                active = use_unclipped | within_clip
                batch_size = len(batch.actions)
                grad_log_prob = -(advantages * ratio * active) / batch_size

                grad_logits = grad_log_prob[:, None] * dist.log_prob_grad_logits(batch.actions)
                grad_logits += -(config.ent_coef / batch_size) * dist.entropy_grad_logits()
                policy_grads = self.policy_net.backward(policy_cache, grad_logits)
                flat_policy = self.policy_net.flatten_grads(policy_grads)
                _clip_grads(flat_policy, config.max_grad_norm)
                self.policy_optimizer.step(flat_policy)

                # --- value update ---
                values, value_cache = self.value_net.forward(batch.observations)
                value_error = values[:, 0] - batch.returns
                grad_values = (config.vf_coef * value_error / batch_size)[:, None]
                value_grads = self.value_net.backward(value_cache, grad_values)
                flat_value = self.value_net.flatten_grads(value_grads)
                _clip_grads(flat_value, config.max_grad_norm)
                self.value_optimizer.step(flat_value)

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise policy/value weights and config to a JSON file."""
        payload = {
            "config": asdict(self.config),
            "policy": self.policy_net.state_dict(),
            "value": self.value_net.state_dict(),
            "num_timesteps": self.num_timesteps,
        }
        Path(path).write_text(json.dumps(payload))

    def load(self, path: str | Path) -> None:
        """Restore weights previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        self.policy_net.load_state_dict(payload["policy"])
        self.value_net.load_state_dict(payload["value"])
        self.num_timesteps = int(payload.get("num_timesteps", 0))


def _clip_grads(grads: list[np.ndarray], max_norm: float) -> None:
    total = float(np.sqrt(sum(float(np.sum(g**2)) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
