"""Minimal observation/action space descriptions (OpenAI-Gym style)."""

from __future__ import annotations

import numpy as np

__all__ = ["Box", "Discrete"]


class Box:
    """A bounded continuous space of fixed shape."""

    def __init__(self, low: float, high: float, shape: tuple[int, ...]):
        self.low = float(low)
        self.high = float(high)
        self.shape = tuple(shape)

    def contains(self, value: np.ndarray) -> bool:
        value = np.asarray(value)
        return (
            value.shape == self.shape
            and bool(np.all(value >= self.low - 1e-9))
            and bool(np.all(value <= self.high + 1e-9))
        )

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=self.shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Box({self.low}, {self.high}, shape={self.shape})"


class Discrete:
    """A finite set of actions {0, ..., n-1}."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("Discrete space needs at least one action")
        self.n = int(n)

    def contains(self, value: int) -> bool:
        return 0 <= int(value) < self.n

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Discrete({self.n})"
