"""Vectorised environment fleets: step N environments through one API.

Training throughput of the RL compiler is bounded by how fast rollouts are
collected, and a single :class:`~repro.core.environment.CompilationEnv` steps
one circuit at a time.  This module adds the fleet layer:

* :class:`SyncVectorEnv` steps N environments in-process.  For compilation
  fleets built through :func:`make_compilation_vec_env` the members share one
  :class:`~repro.pipeline.AnalysisCache` *and* one
  :class:`~repro.pipeline.TransformCache`, and derive pass seeds from the
  circuit state (``seed_mode="state"``), so any member applying an action to
  a circuit state the fleet has seen before reuses the compiled result
  instead of re-running the pass.  Training rollouts revisit the same
  (state, action) pairs constantly — the same initial circuits every epoch,
  converging policies replaying the same flows — which is where the fleet's
  aggregate env-steps/sec multiplier comes from on a single core.
* :class:`AsyncVectorEnv` runs each environment in its own worker process
  (GIL-free stepping) behind the same API.  Worker processes cannot share
  in-memory caches; on multi-core machines they trade cache sharing for true
  parallelism.

Both implement the :class:`VectorEnv` contract: batched ``reset`` /
``step`` / ``action_masks`` with **auto-reset** semantics — when a member's
episode ends, the member is reset immediately and the *initial* observation
of the next episode is returned, while the final observation and info of the
finished episode are surfaced in ``infos["final_observation"]`` /
``infos["final_info"]``.  PPO needs the final observation to bootstrap the
value of truncated states.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from .env import Env
from .spaces import Box, Discrete

__all__ = [
    "VectorEnv",
    "SyncVectorEnv",
    "AsyncVectorEnv",
    "make_compilation_vec_env",
]


class VectorEnv(ABC):
    """N environments behind one batched reset/step/action_masks API.

    ``observation_space`` and ``action_space`` describe a *single* member
    environment; batched arrays carry a leading ``num_envs`` axis.
    """

    num_envs: int
    observation_space: Box
    action_space: Discrete

    @abstractmethod
    def reset(self, *, seed: int | None = None) -> tuple[np.ndarray, list[dict]]:
        """Reset every member; member ``i`` is seeded with ``seed + i``."""

    @abstractmethod
    def step(
        self, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, dict]:
        """Step every member with its action; auto-reset finished episodes.

        Returns ``(observations, rewards, terminated, truncated, infos)``
        with arrays of shape ``(num_envs, ...)``.  ``infos`` is a dict with
        per-env lists under ``"infos"``, and — for members whose episode just
        ended — the pre-reset observation/info under ``"final_observation"``
        and ``"final_info"`` (``None`` elsewhere).
        """

    @abstractmethod
    def action_masks(self) -> np.ndarray:
        """Stacked ``(num_envs, n_actions)`` boolean masks of valid actions."""

    def close(self) -> None:  # pragma: no cover - nothing to clean up by default
        """Release member environments and any worker processes."""


class SyncVectorEnv(VectorEnv):
    """In-process fleet: steps its members sequentially in one loop."""

    def __init__(self, env_fns: Sequence[Callable[[], Env]]):
        if not env_fns:
            raise ValueError("SyncVectorEnv needs at least one environment")
        self.envs: list[Env] = [fn() for fn in env_fns]
        self.num_envs = len(self.envs)
        self.observation_space = self.envs[0].observation_space
        self.action_space = self.envs[0].action_space

    @classmethod
    def from_envs(cls, envs: Sequence[Env]) -> "SyncVectorEnv":
        """Wrap already-constructed environments (used for the n_envs=1 path)."""
        return cls([(lambda env=env: env) for env in envs])

    def reset(self, *, seed: int | None = None) -> tuple[np.ndarray, list[dict]]:
        observations = []
        infos = []
        for i, env in enumerate(self.envs):
            obs, info = env.reset(seed=None if seed is None else seed + i)
            observations.append(obs)
            infos.append(info)
        return np.stack(observations), infos

    def step(self, actions) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, dict]:
        actions = np.asarray(actions)
        if actions.shape != (self.num_envs,):
            raise ValueError(f"expected {self.num_envs} actions, got shape {actions.shape}")
        observations = []
        rewards = np.zeros(self.num_envs)
        terminated = np.zeros(self.num_envs, dtype=bool)
        truncated = np.zeros(self.num_envs, dtype=bool)
        infos: dict = {
            "infos": [None] * self.num_envs,
            "final_observation": [None] * self.num_envs,
            "final_info": [None] * self.num_envs,
        }
        for i, env in enumerate(self.envs):
            obs, reward, term, trunc, info = env.step(int(actions[i]))
            if term or trunc:
                infos["final_observation"][i] = obs
                infos["final_info"][i] = info
                obs, _ = env.reset()
            observations.append(obs)
            rewards[i] = reward
            terminated[i] = term
            truncated[i] = trunc
            infos["infos"][i] = info
        return np.stack(observations), rewards, terminated, truncated, infos

    def action_masks(self) -> np.ndarray:
        return np.stack([env.action_masks() for env in self.envs])

    def close(self) -> None:
        for env in self.envs:
            env.close()


def _async_worker(remote, parent_remote, env_fn) -> None:
    """Worker loop: owns one environment, serves commands over a pipe.

    Environment exceptions are caught and sent back as ``("error", text)``
    replies — the worker stays alive, the parent re-raises with the worker's
    traceback — so a bad action surfaces like it would in-process instead of
    killing the pipe.
    """
    parent_remote.close()
    env = env_fn()
    try:
        while True:
            command, data = remote.recv()
            if command == "close":
                remote.send(("ok", None))
                break
            try:
                if command == "reset":
                    payload = env.reset(seed=data)
                elif command == "step":
                    obs, reward, term, trunc, info = env.step(data)
                    final_obs = final_info = None
                    if term or trunc:
                        final_obs, final_info = obs, info
                        obs, _ = env.reset()
                    payload = (obs, reward, term, trunc, info, final_obs, final_info)
                elif command == "masks":
                    payload = env.action_masks()
                elif command == "spaces":
                    payload = (env.observation_space, env.action_space)
                else:
                    raise RuntimeError(f"unknown worker command {command!r}")
            except Exception:  # noqa: BLE001 - forwarded to the parent
                remote.send(("error", traceback.format_exc()))
                continue
            remote.send(("ok", payload))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        pass
    finally:
        env.close()
        remote.close()


class AsyncVectorEnv(VectorEnv):
    """Process-backed fleet: one worker process per member, stepped in parallel.

    All members receive their command before any result is collected, so the
    wall time of one fleet step is the *maximum* of the member step times
    (plus IPC), not their sum — the GIL does not serialise env stepping.

    With the default ``fork`` start method the environment factories may be
    closures; under ``spawn`` they must be picklable (module-level functions
    or ``functools.partial``).  Worker processes cannot share in-memory
    caches with each other or the parent.
    """

    def __init__(self, env_fns: Sequence[Callable[[], Env]], *, context: str | None = None):
        if not env_fns:
            raise ValueError("AsyncVectorEnv needs at least one environment")
        ctx = mp.get_context(context)
        self.num_envs = len(env_fns)
        self._remotes = []
        self._processes = []
        for env_fn in env_fns:
            remote, worker_remote = ctx.Pipe()
            process = ctx.Process(
                target=_async_worker, args=(worker_remote, remote, env_fn), daemon=True
            )
            process.start()
            worker_remote.close()
            self._remotes.append(remote)
            self._processes.append(process)
        self._closed = False
        # Ask the first worker for the (single-env) spaces rather than
        # building a throwaway member in the parent.
        self._remotes[0].send(("spaces", None))
        self.observation_space, self.action_space = self._collect([self._remotes[0]])[0]

    def _collect(self, remotes) -> list:
        """Receive one reply per remote; drain all pipes before raising.

        Draining keeps the fleet synchronised even when one worker reports
        an error — no stale replies are left behind to corrupt the next
        command round.
        """
        replies = [remote.recv() for remote in remotes]
        errors = [payload for status, payload in replies if status == "error"]
        if errors:
            raise RuntimeError(
                "AsyncVectorEnv worker failed:\n" + "\n".join(errors)
            )
        return [payload for _status, payload in replies]

    def reset(self, *, seed: int | None = None) -> tuple[np.ndarray, list[dict]]:
        for i, remote in enumerate(self._remotes):
            remote.send(("reset", None if seed is None else seed + i))
        observations, infos = zip(*self._collect(self._remotes))
        return np.stack(observations), list(infos)

    def step(self, actions) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, dict]:
        actions = np.asarray(actions)
        if actions.shape != (self.num_envs,):
            raise ValueError(f"expected {self.num_envs} actions, got shape {actions.shape}")
        for remote, action in zip(self._remotes, actions):
            remote.send(("step", int(action)))
        observations = []
        rewards = np.zeros(self.num_envs)
        terminated = np.zeros(self.num_envs, dtype=bool)
        truncated = np.zeros(self.num_envs, dtype=bool)
        infos: dict = {
            "infos": [None] * self.num_envs,
            "final_observation": [None] * self.num_envs,
            "final_info": [None] * self.num_envs,
        }
        for i, payload in enumerate(self._collect(self._remotes)):
            obs, reward, term, trunc, info, final_obs, final_info = payload
            observations.append(obs)
            rewards[i] = reward
            terminated[i] = term
            truncated[i] = trunc
            infos["infos"][i] = info
            infos["final_observation"][i] = final_obs
            infos["final_info"][i] = final_info
        return np.stack(observations), rewards, terminated, truncated, infos

    def action_masks(self) -> np.ndarray:
        for remote in self._remotes:
            remote.send(("masks", None))
        return np.stack(self._collect(self._remotes))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for remote in self._remotes:
            try:
                remote.send(("close", None))
                remote.recv()
            except (BrokenPipeError, EOFError):  # pragma: no cover - worker gone
                pass
            remote.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


class _CompilationEnvFactory:
    """Picklable factory building one fleet member (used by the async path).

    ``shared_store``, when given, is a picklable
    :class:`~repro.pipeline.CacheStore` client (e.g. a
    :class:`~repro.service.SharedCacheStore`): the member's
    ``TransformCache`` is built over it *inside the worker process*, so every
    member of the fleet — each in its own process — shares one set of pass
    memos through the cache server.
    """

    def __init__(self, circuits, kwargs, shared_store=None):
        self.circuits = circuits
        self.kwargs = kwargs
        self.shared_store = shared_store

    def __call__(self) -> Env:
        from ..core.environment import CompilationEnv
        from ..pipeline import TransformCache

        kwargs = dict(self.kwargs)
        if self.shared_store is not None:
            kwargs["transform_cache"] = TransformCache(store=self.shared_store)
            kwargs["seed_mode"] = "state"
        return CompilationEnv(self.circuits, **kwargs)


def make_compilation_vec_env(
    circuits,
    n_envs: int,
    *,
    backend: str = "sync",
    reward: str = "fidelity",
    device_name: str | None = None,
    max_steps: int = 30,
    seed: int = 0,
    share_work: bool = True,
    shared_store=None,
) -> VectorEnv:
    """Build a fleet of N :class:`~repro.core.environment.CompilationEnv`\\ s.

    All members train on the same circuit list; decorrelation comes from the
    per-member reset seeds (:meth:`VectorEnv.reset` seeds member ``i`` with
    ``seed + i``), which drive each member's independent per-epoch shuffle of
    the episode order — members cover different circuits at any instant while
    every member still sees the whole list each epoch.

    With ``share_work=True`` (sync fleets only) the members share one
    :class:`~repro.pipeline.AnalysisCache` and one
    :class:`~repro.pipeline.TransformCache` and use state-keyed pass seeds
    (``seed_mode="state"``): applying a pass to a circuit state is done once
    per fleet, not once per member.  Async fleets live in separate processes
    and build private in-memory caches — *unless* ``shared_store`` is given.

    ``shared_store`` (a picklable :class:`~repro.pipeline.CacheStore` client,
    typically :meth:`repro.service.CacheServer.store`) opts a fleet into the
    server-backed ``TransformCache``: every member keys pass applications by
    state (``seed_mode="state"``) and memoises them in the cache server, so
    process fleets share pass results across process boundaries the way sync
    fleets share them in memory.  Worth it when pass applications are
    expensive relative to one round trip to the cache server.
    """
    if n_envs < 1:
        raise ValueError("n_envs must be at least 1")
    circuits = list(circuits)
    if not circuits:
        raise ValueError("make_compilation_vec_env needs at least one circuit")

    def member_kwargs() -> dict:
        return {
            "reward": reward,
            "device_name": device_name,
            "max_steps": max_steps,
            "seed": seed,
        }

    if backend == "async":
        factories = [
            _CompilationEnvFactory(circuits, member_kwargs(), shared_store=shared_store)
            for _ in range(n_envs)
        ]
        return AsyncVectorEnv(factories)
    if backend != "sync":
        raise ValueError(f"unknown vecenv backend {backend!r} (use 'sync' or 'async')")

    from ..core.environment import CompilationEnv
    from ..pipeline import AnalysisCache, TransformCache

    shared_kwargs = member_kwargs()
    if shared_store is not None:
        # Each member wraps the same server-backed store; the entries (and
        # the hit/miss counters) live in the cache server.
        shared_kwargs["analysis_cache"] = AnalysisCache()
        shared_kwargs["seed_mode"] = "state"
        shared_kwargs["analysis_cache"].warm_features(circuits)
        envs = [
            CompilationEnv(
                circuits,
                **shared_kwargs,
                transform_cache=TransformCache(store=shared_store),
            )
            for _ in range(n_envs)
        ]
        return SyncVectorEnv.from_envs(envs)
    if share_work:
        shared_kwargs["analysis_cache"] = AnalysisCache()
        shared_kwargs["transform_cache"] = TransformCache()
        shared_kwargs["seed_mode"] = "state"
        # Pre-warm the fleet's shared cache with one batched feature sweep:
        # every member's first observation of every training circuit is a
        # cache hit instead of a cold per-circuit extraction.
        shared_kwargs["analysis_cache"].warm_features(circuits)
    envs = [CompilationEnv(circuits, **shared_kwargs) for _ in range(n_envs)]
    return SyncVectorEnv.from_envs(envs)
