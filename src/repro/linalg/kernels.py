"""Batched numeric kernels for the compile hot path.

The scalar pipeline builds one 2x2 numpy array per gate, multiplies them one
``@`` at a time, and verifies every candidate decomposition with its own
``np.allclose`` — thousands of tiny-array allocations per pass invocation.
These kernels do the same arithmetic over *stacks*: all gate matrices of a
circuit land in one ``(N, 2, 2)`` array, all run products come out of a
handful of batched ``np.matmul`` calls, and all candidate verifications are
one vectorised reduction.

Bit-exactness contract
----------------------
``Optimize1qGatesDecomposition`` output is pinned byte-for-byte by the golden
preset traces, so every batched step here must reproduce the scalar float
semantics exactly, not merely closely.  What this file relies on (verified on
this numpy build):

* ``np.cos`` / ``np.sin`` / ``np.exp`` (complex), ``np.linalg.det`` on
  ``(N, 2, 2)`` stacks, batched ``np.matmul`` and elementwise complex
  multiply/divide are bit-identical to their per-element scalar equivalents.
* ``np.arctan2`` and ``np.abs`` (complex) are SIMD-vectorised and differ from
  ``math.atan2`` / scalar ``abs`` by one ulp on a few percent of inputs — so
  phases, magnitudes and ``atan2`` calls that feed *emitted gate parameters*
  go through small per-run Python loops over the exact scalar functions.
  Runs are far fewer than gates, so these loops are off the critical path.
* Identity padding is exact: ``I @ G`` and ``G @ I`` reproduce ``G``'s
  entries bit-for-bit, which lets variable-length runs share one batched
  product without affecting the result.
"""

from __future__ import annotations

import cmath
import math
from typing import Sequence

import numpy as np

from ..circuit.gates import _INTERNED_MATRICES, Gate, gate_matrix
from ..profiling import profiled
from .decompositions import (
    OneQubitDecomposition,
    _drop_trivial,
    synthesize_1q,
    u3_angles,
)

__all__ = [
    "gate_matrices_batch",
    "run_products_batch",
    "allclose_up_to_global_phase_batch",
    "u3_angles_batch",
    "synthesize_1q_batch",
]

_ATOL = 1e-9  # matches decompositions._ATOL
_RTOL = 1e-5  # np.allclose default rtol, replicated by the batched checks


# ---------------------------------------------------------------------------
# Batched gate-matrix construction
# ---------------------------------------------------------------------------


def gate_matrices_batch(gates: Sequence[Gate]) -> np.ndarray:
    """Evaluate all single-qubit gate matrices into one ``(N, 2, 2)`` array.

    Parameterless gates come from the interned matrix table; the parametrised
    families (``rz``/``p``/``u1``, ``rx``, ``ry``, ``u``/``u3``, ``u2``) are
    built with vectorised trig over grouped parameter arrays.  Every entry is
    bit-identical to ``gate_matrix(gate)`` for the same gate.
    """
    n = len(gates)
    out = np.empty((n, 2, 2), dtype=complex)
    by_name: dict[str, list[int]] = {}
    for i, gate in enumerate(gates):
        by_name.setdefault(gate.name, []).append(i)
    for name, indices in by_name.items():
        interned = _INTERNED_MATRICES.get(name)
        if interned is not None:
            if interned.shape != (2, 2):
                raise ValueError(f"gate {name!r} is not single-qubit")
            out[indices] = interned
            continue
        idx = np.asarray(indices)
        if name in ("rz",):
            phi = np.array([gates[i].params[0] for i in indices])
            out[idx, 0, 0] = np.exp(-1j * phi / 2)
            out[idx, 0, 1] = 0.0
            out[idx, 1, 0] = 0.0
            out[idx, 1, 1] = np.exp(1j * phi / 2)
        elif name in ("p", "u1"):
            lam = np.array([gates[i].params[0] for i in indices])
            out[idx, 0, 0] = 1.0
            out[idx, 0, 1] = 0.0
            out[idx, 1, 0] = 0.0
            out[idx, 1, 1] = np.exp(1j * lam)
        elif name == "rx":
            theta = np.array([gates[i].params[0] for i in indices])
            c, s = np.cos(theta / 2), np.sin(theta / 2)
            out[idx, 0, 0] = c
            out[idx, 0, 1] = -1j * s
            out[idx, 1, 0] = -1j * s
            out[idx, 1, 1] = c
        elif name == "ry":
            theta = np.array([gates[i].params[0] for i in indices])
            c, s = np.cos(theta / 2), np.sin(theta / 2)
            out[idx, 0, 0] = c
            out[idx, 0, 1] = -s
            out[idx, 1, 0] = s
            out[idx, 1, 1] = c
        elif name in ("u", "u3", "u2"):
            if name == "u2":
                phi = np.array([gates[i].params[0] for i in indices])
                lam = np.array([gates[i].params[1] for i in indices])
                theta = np.full(len(indices), math.pi / 2)
            else:
                theta = np.array([gates[i].params[0] for i in indices])
                phi = np.array([gates[i].params[1] for i in indices])
                lam = np.array([gates[i].params[2] for i in indices])
            out[idx] = _u_matrices(theta, phi, lam)
        else:
            # Unknown parametrised family: fall back to the scalar constructor.
            for i in indices:
                mat = gate_matrix(gates[i])
                if mat.shape != (2, 2):
                    raise ValueError(f"gate {name!r} is not single-qubit")
                out[i] = mat
    return out


def _u_matrices(theta: np.ndarray, phi: np.ndarray, lam: np.ndarray) -> np.ndarray:
    """Stacked U3 matrices, bit-identical to ``_mat_u`` per element."""
    n = len(theta)
    out = np.empty((n, 2, 2), dtype=complex)
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    out[:, 0, 0] = c
    out[:, 0, 1] = -np.exp(1j * lam) * s
    out[:, 1, 0] = np.exp(1j * phi) * s
    out[:, 1, 1] = np.exp(1j * (phi + lam)) * c
    return out


# ---------------------------------------------------------------------------
# Batched products and global-phase comparison
# ---------------------------------------------------------------------------


def run_products_batch(matrices: np.ndarray, lengths: Sequence[int]) -> np.ndarray:
    """Per-run products ``G_{L-1} ... G_1 G_0`` over a flat matrix stack.

    ``matrices`` holds the concatenated gate matrices of all runs (run ``r``
    occupies ``matrices[starts[r]:starts[r]+lengths[r]]`` in application
    order); the result is one ``(num_runs, 2, 2)`` stack.  Runs are sorted by
    length so each batched ``np.matmul`` step only touches the prefix of runs
    that still have gates left — total work is ``sum(lengths)`` matmuls, the
    same as the sequential loop, with none of its per-gate dispatch.
    """
    lengths = np.asarray(lengths, dtype=int)
    n = len(lengths)
    if n == 0:
        return np.empty((0, 2, 2), dtype=complex)
    starts = np.zeros(n, dtype=int)
    np.cumsum(lengths[:-1], out=starts[1:])
    order = np.argsort(-lengths, kind="stable")
    sorted_lengths = lengths[order]
    sorted_starts = starts[order]
    total = np.broadcast_to(np.eye(2, dtype=complex), (n, 2, 2)).copy()
    max_len = int(sorted_lengths[0])
    neg_lengths = -sorted_lengths
    for step in range(max_len):
        k = int(np.searchsorted(neg_lengths, -step, side="left"))
        factors = matrices[sorted_starts[:k] + step]
        np.matmul(factors, total[:k], out=total[:k])
    out = np.empty_like(total)
    out[order] = total
    return out


def allclose_up_to_global_phase_batch(
    a: np.ndarray, b: np.ndarray, tol: float = 1e-7
) -> np.ndarray:
    """Vectorised ``allclose_up_to_global_phase`` over ``(N, 2, 2)`` stacks.

    ``b`` may be a single ``(2, 2)`` matrix, broadcast against every ``a``.
    Replicates the scalar check exactly: phase fit at ``argmax |b|``,
    unit-modulus gate on the fitted ratio, then ``np.allclose`` semantics
    (``|a - z b| <= atol + rtol |z b|`` with the default ``rtol=1e-5``).
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if b.ndim == 2:
        b = np.broadcast_to(b, a.shape)
    af = a.reshape(len(a), -1)
    bf = b.reshape(len(b), -1)
    rows = np.arange(len(af))
    idx = np.abs(bf).argmax(axis=1)
    bmax = bf[rows, idx]
    degenerate = np.abs(bmax) < 1e-12
    safe_bmax = np.where(degenerate, 1.0, bmax)
    z = af[rows, idx] / safe_bmax
    zb = z[:, None] * bf
    close = np.all(np.abs(af - zb) <= tol + _RTOL * np.abs(zb), axis=1)
    close &= np.abs(np.abs(z) - 1.0) <= 1e-5
    plain = np.all(np.abs(af - bf) <= tol + _RTOL * np.abs(bf), axis=1)
    return np.where(degenerate, plain, close)


def _phases_between(target: np.ndarray, product: np.ndarray) -> np.ndarray:
    """Batched ``_phase_between``: phase of ``target/product`` at argmax |product|."""
    tf = target.reshape(len(target), -1)
    pf = product.reshape(len(product), -1)
    rows = np.arange(len(pf))
    idx = np.abs(pf).argmax(axis=1)
    ratios = tf[rows, idx] / pf[rows, idx]
    # cmath.phase == atan2(imag, real); looped to match libm bit-for-bit.
    return np.array([math.atan2(r.imag, r.real) for r in ratios])


# ---------------------------------------------------------------------------
# Batched Euler decomposition
# ---------------------------------------------------------------------------


def u3_angles_batch(
    matrices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched ``u3_angles``: ``(theta, phi, lam, phase)`` arrays over a stack.

    The determinant, SU(2) rescale, and the final verification run as stacked
    array ops; the ``atan2``/``abs`` extractions that produce emitted angles
    run through the scalar libm functions per run (see module docstring).
    Items failing the batched verification are recomputed with the scalar
    ``u3_angles`` so the degenerate fallback path matches exactly.
    """
    m = np.ascontiguousarray(matrices, dtype=complex)
    n = len(m)
    dets = np.linalg.det(m)
    phase = np.empty(n)
    for i in range(n):
        d = dets[i]
        phase[i] = math.atan2(d.imag, d.real) / 2.0
    su = m * np.exp(-1j * phase)[:, None, None]

    theta = np.empty(n)
    phi = np.empty(n)
    lam = np.empty(n)
    su00, su10, su11 = su[:, 0, 0], su[:, 1, 0], su[:, 1, 1]
    for i in range(n):
        a00, a10 = abs(su00[i]), abs(su10[i])
        theta[i] = 2.0 * math.atan2(a10, a00)
        if a00 < _ATOL:
            phi_plus_lam = 0.0
            phi_minus_lam = 2.0 * cmath.phase(su10[i])
        elif a10 < _ATOL:
            phi_plus_lam = 2.0 * cmath.phase(su11[i])
            phi_minus_lam = 0.0
        else:
            phi_plus_lam = 2.0 * cmath.phase(su11[i])
            phi_minus_lam = 2.0 * cmath.phase(su10[i])
        phi[i] = (phi_plus_lam + phi_minus_lam) / 2.0
        lam[i] = (phi_plus_lam - phi_minus_lam) / 2.0
    total_phase = phase - (phi + lam) / 2.0

    reconstructed = np.exp(1j * total_phase)[:, None, None] * _u_matrices(theta, phi, lam)
    ok = np.all(
        np.abs(reconstructed - m) <= 1e-7 + _RTOL * np.abs(m), axis=(1, 2)
    )
    for i in np.flatnonzero(~ok):
        theta[i], phi[i], lam[i], total_phase[i] = u3_angles(m[i])
    return theta, phi, lam, total_phase


def synthesize_1q_batch(
    matrices: np.ndarray, basis: str = "rz_sx"
) -> list[OneQubitDecomposition]:
    """Batched ``synthesize_1q`` over an ``(N, 2, 2)`` stack of unitaries.

    Returns one :class:`OneQubitDecomposition` per input with gates identical
    to the per-matrix scalar call (global phases can differ by ulps when an
    argmax tie falls on a different element).  Candidate forms are tried in
    the scalar order, each evaluated for all still-unresolved items at once.
    """
    m = np.asarray(matrices, dtype=complex)
    if m.ndim == 2:
        m = m[None]
    n = len(m)
    if n == 0:
        return []
    with profiled("kernel.synthesize_1q_batch", items=n):
        return _synthesize_1q_batch(m, basis)


def _synthesize_1q_batch(m: np.ndarray, basis: str) -> list[OneQubitDecomposition]:
    n = len(m)
    theta, phi, lam, phase = u3_angles_batch(m)

    if basis == "u3":
        return [
            OneQubitDecomposition(
                (Gate("u", (theta[i], phi[i], lam[i])),), float(phase[i])
            )
            for i in range(n)
        ]

    if basis == "rz_ry":
        candidate_lists = [
            (
                _drop_trivial([Gate("rz", (phi[i] + lam[i],))]),
                _drop_trivial(
                    [Gate("rz", (lam[i],)), Gate("ry", (theta[i],)), Gate("rz", (phi[i],))]
                ),
            )
            for i in range(n)
        ]
    elif basis in ("rz_sx", "rz_rx"):
        sx_gate = Gate("sx") if basis == "rz_sx" else Gate("rx", (math.pi / 2,))
        half_pi = math.pi / 2
        candidate_lists = [
            (
                _drop_trivial([Gate("rz", (phi[i] + lam[i],))]),
                _drop_trivial(
                    [Gate("rz", (lam[i] - half_pi,)), sx_gate, Gate("rz", (phi[i] + half_pi,))]
                ),
                _drop_trivial(
                    [
                        Gate("rz", (lam[i],)),
                        sx_gate,
                        Gate("rz", (theta[i] + math.pi,)),
                        sx_gate,
                        Gate("rz", (phi[i] + math.pi,)),
                    ]
                ),
            )
            for i in range(n)
        ]
    else:
        raise ValueError(f"unknown single-qubit basis {basis!r}")

    decomps: list[OneQubitDecomposition | None] = [None] * n
    unresolved = list(range(n))
    num_forms = len(candidate_lists[0])
    for form in range(num_forms):
        if not unresolved:
            break
        gate_lists = [candidate_lists[i][form] for i in unresolved]
        flat = [g for gates in gate_lists for g in gates]
        products = run_products_batch(
            gate_matrices_batch(flat), [len(gates) for gates in gate_lists]
        )
        targets = m[unresolved]
        ok = allclose_up_to_global_phase_batch(products, targets)
        accepted = np.flatnonzero(ok)
        if len(accepted):
            phases = _phases_between(targets[accepted], products[accepted])
            for out_pos, pos in enumerate(accepted):
                i = unresolved[pos]
                decomps[i] = OneQubitDecomposition(
                    tuple(gate_lists[pos]), float(phases[out_pos])
                )
        unresolved = [unresolved[pos] for pos in np.flatnonzero(~ok)]
    for i in unresolved:
        # No candidate verified — defer to the scalar path, which raises the
        # same RuntimeError (or recovers if the batch check was borderline).
        decomps[i] = synthesize_1q(m[i], basis)
    return decomps  # type: ignore[return-value]
