"""Linear-algebra utilities: unitaries, equivalence checks, and decompositions."""

from .decompositions import (
    OneQubitDecomposition,
    WeylDecomposition,
    cnot_count_required,
    kron_factor,
    synthesize_1q,
    synthesize_2q,
    u3_angles,
    weyl_decompose,
    zyz_angles,
)
from .kernels import (
    allclose_up_to_global_phase_batch,
    gate_matrices_batch,
    run_products_batch,
    synthesize_1q_batch,
    u3_angles_batch,
)
from .unitaries import (
    allclose_up_to_global_phase,
    circuit_unitary,
    embed_unitary,
    global_phase_between,
    instruction_unitary,
    is_unitary_matrix,
)

__all__ = [
    "OneQubitDecomposition",
    "WeylDecomposition",
    "cnot_count_required",
    "kron_factor",
    "synthesize_1q",
    "synthesize_2q",
    "u3_angles",
    "weyl_decompose",
    "zyz_angles",
    "allclose_up_to_global_phase",
    "allclose_up_to_global_phase_batch",
    "gate_matrices_batch",
    "run_products_batch",
    "synthesize_1q_batch",
    "u3_angles_batch",
    "circuit_unitary",
    "embed_unitary",
    "global_phase_between",
    "instruction_unitary",
    "is_unitary_matrix",
]
