"""Unitary-matrix utilities.

These helpers turn circuits and instructions into explicit matrices (for
small qubit counts) and compare operators up to global phase.  They are the
backbone of the equivalence checks used throughout the test-suite and of the
block re-synthesis passes (``ConsolidateBlocks``, ``FullPeepholeOptimise``).

Convention: qubit 0 is the *most significant* bit of the basis-state index,
i.e. the basis is ordered ``|q0 q1 ... q_{n-1}>``.
"""

from __future__ import annotations

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Instruction, gate_matrix

__all__ = [
    "embed_unitary",
    "instruction_unitary",
    "circuit_unitary",
    "allclose_up_to_global_phase",
    "is_unitary_matrix",
    "global_phase_between",
]

_MAX_DENSE_QUBITS = 12


def is_unitary_matrix(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Check that ``matrix`` is unitary within ``tol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    product = matrix.conj().T @ matrix
    return bool(np.allclose(product, np.eye(matrix.shape[0]), atol=tol))


def embed_unitary(matrix: np.ndarray, qubits: tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Embed a k-qubit unitary acting on ``qubits`` into an ``num_qubits``-qubit space."""
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise ValueError("matrix dimension does not match number of qubits")
    if num_qubits > _MAX_DENSE_QUBITS:
        raise ValueError(
            f"refusing to build a dense unitary on {num_qubits} qubits "
            f"(limit {_MAX_DENSE_QUBITS})"
        )
    others = [q for q in range(num_qubits) if q not in qubits]
    order = list(qubits) + others
    full = np.kron(matrix, np.eye(2 ** (num_qubits - k), dtype=complex))

    dim = 2**num_qubits
    perm = np.zeros(dim, dtype=int)
    for x in range(dim):
        bits = [(x >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        y = 0
        for q in order:
            y = (y << 1) | bits[q]
        perm[x] = y
    # ``full`` acts on vectors expressed in the permuted qubit ordering; conjugate
    # with the basis-permutation to express it in the natural ordering.
    natural = np.empty_like(full)
    natural[np.ix_(np.argsort(perm), np.argsort(perm))] = full
    return natural


def instruction_unitary(instruction: Instruction, num_qubits: int) -> np.ndarray:
    """Full-space unitary of a single instruction."""
    if not instruction.gate.is_unitary:
        raise ValueError(f"instruction {instruction.name!r} is not unitary")
    return embed_unitary(gate_matrix(instruction.gate), instruction.qubits, num_qubits)


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Compute the unitary of a circuit (barriers ignored, no measurements allowed)."""
    n = circuit.num_qubits
    if n > _MAX_DENSE_QUBITS:
        raise ValueError(
            f"circuit too large for dense simulation ({n} > {_MAX_DENSE_QUBITS} qubits)"
        )
    total = np.eye(2**n, dtype=complex)
    for instr in circuit:
        if instr.name == "barrier":
            continue
        if not instr.gate.is_unitary:
            raise ValueError(
                f"cannot compute unitary of circuit containing {instr.name!r}"
            )
        total = instruction_unitary(instr, n) @ total
    return total


def global_phase_between(a: np.ndarray, b: np.ndarray) -> complex | None:
    """Return the phase ``z`` (|z|=1) with ``a ≈ z * b``, or None if not proportional."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return None
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < 1e-12:
        return None
    z = a[idx] / b[idx]
    if abs(abs(z) - 1.0) > 1e-6:
        return None
    if np.allclose(a, z * b, atol=1e-7):
        return z
    return None


def allclose_up_to_global_phase(a: np.ndarray, b: np.ndarray, tol: float = 1e-7) -> bool:
    """Check whether two operators are equal up to a global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < 1e-12:
        return bool(np.allclose(a, b, atol=tol))
    z = a[idx] / b[idx]
    if abs(abs(z) - 1.0) > 1e-5:
        return False
    return bool(np.allclose(a, z * b, atol=tol))
