"""Single- and two-qubit unitary decompositions.

The 1q Euler decompositions drive ``Optimize1qGatesDecomposition`` (fusing a
run of single-qubit gates and re-emitting it in a device's native basis),
and the 2q Weyl (KAK) decomposition drives ``ConsolidateBlocks`` and the
TKET-style peephole passes (fusing a two-qubit block and re-synthesising it
when the fused operator needs fewer entangling gates).

All decompositions are *exact up to global phase* and are verified against
the original matrix before being returned, so callers can trust the output
even in numerically degenerate corners.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

import numpy as np

from ..circuit.gates import Gate, gate_matrix
from .unitaries import allclose_up_to_global_phase

__all__ = [
    "OneQubitDecomposition",
    "u3_angles",
    "zyz_angles",
    "synthesize_1q",
    "kron_factor",
    "WeylDecomposition",
    "weyl_decompose",
    "cnot_count_required",
    "synthesize_2q",
]

_ATOL = 1e-9


# ---------------------------------------------------------------------------
# Single-qubit decompositions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OneQubitDecomposition:
    """Result of a single-qubit Euler decomposition."""

    gates: tuple[Gate, ...]
    global_phase: float

    def matrix(self) -> np.ndarray:
        total = np.eye(2, dtype=complex)
        for gate in self.gates:
            total = gate_matrix(gate) @ total
        return cmath.exp(1j * self.global_phase) * total


def _to_su2(matrix: np.ndarray) -> tuple[np.ndarray, float]:
    """Rescale a 2x2 unitary to determinant one; return (su2, phase)."""
    det = np.linalg.det(matrix)
    phase = cmath.phase(det) / 2.0
    return matrix * cmath.exp(-1j * phase), phase


def u3_angles(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Return ``(theta, phi, lam, phase)`` with ``matrix = e^{i phase} U3(theta, phi, lam)``."""
    su, phase = _to_su2(np.asarray(matrix, dtype=complex))
    theta = 2.0 * math.atan2(abs(su[1, 0]), abs(su[0, 0]))
    if abs(su[0, 0]) < _ATOL:
        phi_plus_lam = 0.0
        phi_minus_lam = 2.0 * cmath.phase(su[1, 0])
    elif abs(su[1, 0]) < _ATOL:
        phi_plus_lam = 2.0 * cmath.phase(su[1, 1])
        phi_minus_lam = 0.0
    else:
        phi_plus_lam = 2.0 * cmath.phase(su[1, 1])
        phi_minus_lam = 2.0 * cmath.phase(su[1, 0])
    phi = (phi_plus_lam + phi_minus_lam) / 2.0
    lam = (phi_plus_lam - phi_minus_lam) / 2.0
    # U3(theta, phi, lam) = e^{i(phi+lam)/2} Rz(phi) Ry(theta) Rz(lam); the SU(2)
    # part above equals Rz(phi) Ry(theta) Rz(lam), so correct the phase.
    total_phase = phase - (phi + lam) / 2.0
    reconstructed = cmath.exp(1j * total_phase) * gate_matrix(Gate("u", (theta, phi, lam)))
    if not np.allclose(reconstructed, matrix, atol=1e-7):
        # Fall back to a direct phase fit against the largest element.
        u3 = gate_matrix(Gate("u", (theta, phi, lam)))
        idx = np.unravel_index(np.argmax(np.abs(u3)), u3.shape)
        total_phase = cmath.phase(matrix[idx] / u3[idx])
    return theta, phi, lam, total_phase


def zyz_angles(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Return ``(theta, phi, lam, phase)`` with ``matrix = e^{i phase} Rz(phi) Ry(theta) Rz(lam)``."""
    theta, phi, lam, phase = u3_angles(matrix)
    return theta, phi, lam, phase + (phi + lam) / 2.0


def _candidate_matrix(gates: list[Gate]) -> np.ndarray:
    total = np.eye(2, dtype=complex)
    for gate in gates:
        total = gate_matrix(gate) @ total
    return total


def synthesize_1q(matrix: np.ndarray, basis: str = "rz_sx") -> OneQubitDecomposition:
    """Decompose a single-qubit unitary into gates from ``basis``.

    Supported bases:
      * ``"rz_sx"`` — IBM/OQC style: RZ and SX (ZXZXZ Euler form).
      * ``"rz_rx"`` — Rigetti style: RZ and RX(±pi/2).
      * ``"rz_ry"`` — IonQ style: RZ and RY (ZYZ Euler form).
      * ``"u3"``    — a single U gate.

    Gates whose angles vanish are dropped, and shorter candidate forms (one
    RZ, or RZ-SX-RZ) are used whenever they reproduce the matrix.
    """
    matrix = np.asarray(matrix, dtype=complex)
    theta, phi, lam, phase = u3_angles(matrix)

    if basis == "u3":
        gates = [Gate("u", (theta, phi, lam))]
        return OneQubitDecomposition(tuple(gates), phase)

    if basis == "rz_ry":
        candidates = [
            _drop_trivial([Gate("rz", (phi + lam,))]),
            _drop_trivial([Gate("rz", (lam,)), Gate("ry", (theta,)), Gate("rz", (phi,))]),
        ]
        for gates in candidates:
            product = _candidate_matrix(gates)
            if allclose_up_to_global_phase(product, matrix, tol=1e-7):
                return OneQubitDecomposition(tuple(gates), _phase_between(matrix, product))
        raise RuntimeError("single-qubit synthesis failed to verify (numerical issue)")

    if basis in ("rz_sx", "rz_rx"):
        sx_gate = Gate("sx") if basis == "rz_sx" else Gate("rx", (math.pi / 2,))
        candidates: list[list[Gate]] = []
        # theta ~ 0: a single RZ suffices.
        candidates.append(_drop_trivial([Gate("rz", (phi + lam,))]))
        # theta ~ pi/2 region: RZ - SX - RZ.
        candidates.append(
            _drop_trivial(
                [Gate("rz", (lam - math.pi / 2,)), sx_gate, Gate("rz", (phi + math.pi / 2,))]
            )
        )
        # General ZXZXZ form.
        candidates.append(
            _drop_trivial(
                [
                    Gate("rz", (lam,)),
                    sx_gate,
                    Gate("rz", (theta + math.pi,)),
                    sx_gate,
                    Gate("rz", (phi + math.pi,)),
                ]
            )
        )
        for gates in candidates:
            product = _candidate_matrix(gates)
            if allclose_up_to_global_phase(product, matrix, tol=1e-7):
                phase_fix = _phase_between(matrix, product)
                return OneQubitDecomposition(tuple(gates), phase_fix)
        raise RuntimeError("single-qubit synthesis failed to verify (numerical issue)")

    raise ValueError(f"unknown single-qubit basis {basis!r}")


def _drop_trivial(gates: list[Gate]) -> list[Gate]:
    """Remove rotation gates whose angle is a multiple of 2*pi."""
    out = []
    for gate in gates:
        if gate.name in ("rz", "rx", "ry", "p") and abs(_mod_2pi(gate.params[0])) < 1e-10:
            continue
        out.append(gate)
    return out


def _mod_2pi(angle: float) -> float:
    """Map an angle to the interval (-pi, pi]."""
    wrapped = math.fmod(angle, 2 * math.pi)
    if wrapped > math.pi:
        wrapped -= 2 * math.pi
    elif wrapped <= -math.pi:
        wrapped += 2 * math.pi
    return wrapped


def _phase_between(target: np.ndarray, product: np.ndarray) -> float:
    idx = np.unravel_index(np.argmax(np.abs(product)), product.shape)
    return cmath.phase(target[idx] / product[idx])


# ---------------------------------------------------------------------------
# Two-qubit decompositions
# ---------------------------------------------------------------------------

_MAGIC = (1.0 / math.sqrt(2.0)) * np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=complex,
)

_XX = np.kron(gate_matrix(Gate("x")), gate_matrix(Gate("x")))
_YY = np.kron(gate_matrix(Gate("y")), gate_matrix(Gate("y")))
_ZZ = np.kron(gate_matrix(Gate("z")), gate_matrix(Gate("z")))

# Diagonals of XX / YY / ZZ in the magic basis (all three are diagonal there).
_DIAG_XX = np.real(np.diag(_MAGIC.conj().T @ _XX @ _MAGIC))
_DIAG_YY = np.real(np.diag(_MAGIC.conj().T @ _YY @ _MAGIC))
_DIAG_ZZ = np.real(np.diag(_MAGIC.conj().T @ _ZZ @ _MAGIC))


def kron_factor(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, float] | None:
    """Factor a 4x4 unitary as ``e^{i phase} A (x) B`` if possible.

    Returns ``(A, B, phase)`` with A, B unitary 2x2 matrices, or ``None`` if
    the operator is entangling.
    """
    matrix = np.asarray(matrix, dtype=complex)
    # Rearrange so that a Kronecker product becomes a rank-1 matrix.
    rearranged = np.zeros((4, 4), dtype=complex)
    for i in range(2):
        for j in range(2):
            block = matrix[2 * i : 2 * i + 2, 2 * j : 2 * j + 2]
            rearranged[2 * i + j, :] = block.reshape(4)
    u, s, vh = np.linalg.svd(rearranged)
    if s[1] > 1e-7:
        return None
    a = u[:, 0].reshape(2, 2) * math.sqrt(s[0])
    b = vh[0, :].reshape(2, 2) * math.sqrt(s[0])
    # Normalise both factors to unitaries.
    det_a = np.linalg.det(a)
    det_b = np.linalg.det(b)
    if abs(det_a) < 1e-12 or abs(det_b) < 1e-12:
        return None
    a = a / cmath.sqrt(det_a)
    b = b / cmath.sqrt(det_b)
    product = np.kron(a, b)
    idx = np.unravel_index(np.argmax(np.abs(product)), product.shape)
    phase = cmath.phase(matrix[idx] / product[idx])
    if not np.allclose(cmath.exp(1j * phase) * product, matrix, atol=1e-6):
        return None
    return a, b, phase


@dataclass(frozen=True)
class WeylDecomposition:
    """KAK decomposition ``U = e^{i phase} (K1l (x) K1r) N(c) (K2l (x) K2r)``.

    ``N(c) = exp(i (c_x XX + c_y YY + c_z ZZ))`` is the canonical two-qubit
    interaction; K1/K2 are the single-qubit "local" factors.
    """

    k1l: np.ndarray
    k1r: np.ndarray
    k2l: np.ndarray
    k2r: np.ndarray
    c: tuple[float, float, float]
    global_phase: float

    def canonical_matrix(self) -> np.ndarray:
        generator = self.c[0] * _XX + self.c[1] * _YY + self.c[2] * _ZZ
        eigvals, eigvecs = np.linalg.eigh(generator)
        return eigvecs @ np.diag(np.exp(1j * eigvals)) @ eigvecs.conj().T

    def matrix(self) -> np.ndarray:
        return (
            cmath.exp(1j * self.global_phase)
            * np.kron(self.k1l, self.k1r)
            @ self.canonical_matrix()
            @ np.kron(self.k2l, self.k2r)
        )


def _orthogonal_diagonalize(m2: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Find a real orthogonal P with P^T M2 P diagonal (M2 unitary symmetric)."""
    re, im = np.real(m2), np.imag(m2)
    for _ in range(24):
        angle = rng.uniform(0, math.pi)
        combo = math.cos(angle) * re + math.sin(angle) * im
        _, p = np.linalg.eigh(combo)
        check = p.T @ m2 @ p
        if np.allclose(check - np.diag(np.diag(check)), 0, atol=1e-8):
            return p
    raise RuntimeError("failed to simultaneously diagonalise the Weyl matrix")


def weyl_decompose(matrix: np.ndarray, *, seed: int = 7) -> WeylDecomposition:
    """Compute the Weyl/KAK decomposition of a two-qubit unitary."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (4, 4):
        raise ValueError("weyl_decompose expects a 4x4 matrix")
    rng = np.random.default_rng(seed)

    det = np.linalg.det(matrix)
    global_phase = cmath.phase(det) / 4.0
    u_su = matrix * cmath.exp(-1j * global_phase)

    up = _MAGIC.conj().T @ u_su @ _MAGIC
    m2 = up.T @ up
    p = _orthogonal_diagonalize(m2, rng)
    if np.linalg.det(p) < 0:
        p = p.copy()
        p[:, 0] = -p[:, 0]
    d = np.diag(p.T @ m2 @ p)
    theta = np.angle(d) / 2.0

    d_half_inv = np.diag(np.exp(-1j * theta))
    q = up @ p @ d_half_inv
    if np.linalg.det(np.real(q)) < 0:
        theta = theta.copy()
        theta[0] += math.pi
        d_half_inv = np.diag(np.exp(-1j * theta))
        q = up @ p @ d_half_inv
    q = np.real(q)

    # Solve theta = c_x * DIAG_XX + c_y * DIAG_YY + c_z * DIAG_ZZ + c_0 * 1.
    basis = np.stack([_DIAG_XX, _DIAG_YY, _DIAG_ZZ, np.ones(4)], axis=1)
    coeffs, *_ = np.linalg.lstsq(basis, theta, rcond=None)
    cx, cy, cz, c0 = (float(v) for v in coeffs)

    k1 = _MAGIC @ q @ _MAGIC.conj().T
    k2 = _MAGIC @ p.T @ _MAGIC.conj().T

    f1 = kron_factor(k1)
    f2 = kron_factor(k2)
    if f1 is None or f2 is None:
        raise RuntimeError("Weyl local factors are not separable (numerical issue)")
    k1l, k1r, phase1 = f1
    k2l, k2r, phase2 = f2

    decomp = WeylDecomposition(
        k1l, k1r, k2l, k2r, (cx, cy, cz), global_phase + c0 + phase1 + phase2
    )
    if not allclose_up_to_global_phase(decomp.matrix(), matrix, tol=1e-5):
        raise RuntimeError("Weyl decomposition failed verification")
    # Align the tracked phase exactly with the input matrix.
    reconstructed = decomp.matrix()
    correction = _phase_between(matrix, reconstructed * cmath.exp(-1j * decomp.global_phase))
    return WeylDecomposition(k1l, k1r, k2l, k2r, (cx, cy, cz), correction)


def _axis_class(value: float) -> str:
    """Classify a canonical coordinate modulo the pi/2 lattice."""
    reduced = math.fmod(value, math.pi / 2.0)
    if reduced < 0:
        reduced += math.pi / 2.0
    dist = min(reduced, math.pi / 2.0 - reduced)
    if dist < 1e-7:
        return "trivial"
    if abs(dist - math.pi / 4.0) < 1e-7:
        return "cnot"
    return "generic"


def cnot_count_required(matrix: np.ndarray) -> int:
    """Lower bound on the number of CNOTs needed to implement a 4x4 unitary.

    Uses the Weyl-chamber coordinates: 0 for local operators, 1 for the CNOT
    class, 2 when one coordinate is trivial, 3 otherwise.
    """
    if kron_factor(np.asarray(matrix, dtype=complex)) is not None:
        return 0
    decomp = weyl_decompose(matrix)
    classes = sorted(_axis_class(v) for v in decomp.c)
    nontrivial = [c for c in classes if c != "trivial"]
    if not nontrivial:
        return 0
    if nontrivial == ["cnot"]:
        return 1
    if len(nontrivial) <= 2:
        return 2
    return 3


def _emit_local(gates: list[tuple[Gate, int]], matrix: np.ndarray, qubit: int, basis: str) -> float:
    """Append the synthesis of a local 2x2 unitary; return its global phase."""
    decomp = synthesize_1q(matrix, basis)
    for gate in decomp.gates:
        gates.append((gate, qubit))
    return decomp.global_phase


def synthesize_2q(
    matrix: np.ndarray, *, basis_1q: str = "rz_sx"
) -> tuple[list[tuple[Gate, tuple[int, ...]]], float]:
    """Synthesise an arbitrary two-qubit unitary into CX + single-qubit gates.

    Returns ``(ops, global_phase)`` where each op is ``(gate, qubit_indices)``
    with indices in {0, 1} referring to the two qubits of ``matrix`` (qubit 0
    most significant).  The emitted sequence is exact up to global phase and
    uses two CX gates per non-trivial canonical axis (at most six), dropping
    axes whose interaction is trivial or purely local.
    """
    matrix = np.asarray(matrix, dtype=complex)
    factored = kron_factor(matrix)
    ops: list[tuple[Gate, tuple[int, ...]]] = []
    phase = 0.0
    if factored is not None:
        a, b, phase = factored
        local_ops: list[tuple[Gate, int]] = []
        phase += _emit_local(local_ops, a, 0, basis_1q)
        phase += _emit_local(local_ops, b, 1, basis_1q)
        return [(g, (q,)) for g, q in local_ops], phase

    decomp = weyl_decompose(matrix)
    phase = decomp.global_phase

    pre: list[tuple[Gate, int]] = []
    phase += _emit_local(pre, decomp.k2l, 0, basis_1q)
    phase += _emit_local(pre, decomp.k2r, 1, basis_1q)
    ops.extend((g, (q,)) for g, q in pre)

    canonical_ops, canonical_phase = _synthesize_canonical(decomp.c)
    ops.extend(canonical_ops)
    phase += canonical_phase

    post: list[tuple[Gate, int]] = []
    phase += _emit_local(post, decomp.k1l, 0, basis_1q)
    phase += _emit_local(post, decomp.k1r, 1, basis_1q)
    ops.extend((g, (q,)) for g, q in post)
    return ops, phase


def _synthesize_canonical(
    c: tuple[float, float, float]
) -> tuple[list[tuple[Gate, tuple[int, ...]]], float]:
    """Emit ``exp(i (c_x XX + c_y YY + c_z ZZ))`` as CX/1q gates (exact)."""
    ops: list[tuple[Gate, tuple[int, ...]]] = []
    phase = 0.0
    pauli_gate = {"x": Gate("x"), "y": Gate("y"), "z": Gate("z")}
    rotations = (("x", c[0]), ("y", c[1]), ("z", c[2]))
    for axis, value in rotations:
        reduced = _mod_2pi(value)
        if abs(reduced) < 1e-10:
            continue
        if abs(abs(reduced) - math.pi) < 1e-10:
            # exp(+-i pi P (x) P) = -I : a pure global phase.
            phase += math.pi
            continue
        if abs(abs(reduced) - math.pi / 2.0) < 1e-10:
            # exp(+-i pi/2 P (x) P) = +-i * P (x) P : a purely local operator.
            ops.append((pauli_gate[axis], (0,)))
            ops.append((pauli_gate[axis], (1,)))
            phase += math.copysign(math.pi / 2.0, reduced)
            continue
        theta = -2.0 * reduced  # exp(i c PP) == Rpp(-2c)
        if axis == "z":
            ops.append((Gate("cx"), (0, 1)))
            ops.append((Gate("rz", (theta,)), (1,)))
            ops.append((Gate("cx"), (0, 1)))
        elif axis == "x":
            ops.append((Gate("h"), (0,)))
            ops.append((Gate("h"), (1,)))
            ops.append((Gate("cx"), (0, 1)))
            ops.append((Gate("rz", (theta,)), (1,)))
            ops.append((Gate("cx"), (0, 1)))
            ops.append((Gate("h"), (0,)))
            ops.append((Gate("h"), (1,)))
        else:  # axis == "y"
            ops.append((Gate("rx", (math.pi / 2.0,)), (0,)))
            ops.append((Gate("rx", (math.pi / 2.0,)), (1,)))
            ops.append((Gate("cx"), (0, 1)))
            ops.append((Gate("rz", (theta,)), (1,)))
            ops.append((Gate("cx"), (0, 1)))
            ops.append((Gate("rx", (-math.pi / 2.0,)), (0,)))
            ops.append((Gate("rx", (-math.pi / 2.0,)), (1,)))
    return ops, phase
