"""The compilation MDP as a reinforcement-learning environment.

``CompilationEnv`` wires everything together: the action registry, the state
machine of Fig. 2, the seven-feature observations, and the sparse reward
(zero until the episode terminates in the "Done" state, then the value of
the chosen optimization objective for the final circuit).

The environment supports invalid-action masking: at every step only those
actions that are meaningful in the current MDP state are exposed to the
agent (platform selection only at the start, device selection only after a
platform is chosen, synthesis/mapping only once a device is known, the
terminate action only once the circuit is executable).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..devices.library import get_device
from ..features.extraction import FEATURE_NAMES, feature_vector
from ..passes.base import PassContext
from ..pipeline import AnalysisCache, PassRunner, TransformCache
from ..reward.functions import reward_function
from ..rl.env import Env
from ..rl.spaces import Box, Discrete
from .actions import Action, ActionKind, build_action_registry
from .state import CompilationState, CompilationStatus

__all__ = ["CompilationEnv"]


class CompilationEnv(Env):
    """Gym-style environment for learning quantum compilation flows.

    Args:
        circuits: the training circuits; one is picked per episode.  The
            episode order is re-shuffled at every epoch boundary (once all
            circuits have been visited) by the environment's seeded RNG, so
            training does not see the circuits in a fixed round-robin order
            while the sequence stays reproducible under the reset seed.
            Single-circuit environments skip the shuffle entirely.
        reward: ``"fidelity"``, ``"critical_depth"`` or ``"combination"``.
        device_name: if given, the platform/device are fixed up front and the
            corresponding selection actions are removed from the MDP, which is
            how the paper's evaluation against a single target device works.
        max_steps: episode truncation limit (no reward if exceeded).
        seed: base RNG seed for stochastic passes.
        use_analysis_cache: serve the per-step feature extraction and
            executability checks from a shared :class:`AnalysisCache` (kept
            across steps *and* episodes).  This is the hottest loop of the
            framework — every PPO step runs these analyses — and the cache
            only changes how often they are computed, never their values.
            Disable for benchmarking the uncached baseline.
        analysis_cache: an explicit :class:`AnalysisCache` to use instead of
            a private one — vectorised fleets pass one instance to every
            member so analyses are computed once per fleet.
        transform_cache: optional :class:`TransformCache` memoising whole
            pass applications; only effective together with
            ``seed_mode="state"`` (stream-drawn seeds never repeat, so the
            memo would never hit across episodes).
        seed_mode: ``"stream"`` (default) draws a fresh seed for every
            stochastic pass application from the environment's RNG stream;
            ``"state"`` derives it deterministically from (base seed, circuit
            fingerprint, action name), which makes a pass application a pure
            function of the visible state — the property that lets fleet
            members share transform results.
    """

    def __init__(
        self,
        circuits: list[QuantumCircuit],
        reward: str = "fidelity",
        *,
        device_name: str | None = None,
        max_steps: int = 30,
        seed: int = 0,
        use_analysis_cache: bool = True,
        analysis_cache: AnalysisCache | None = None,
        transform_cache: TransformCache | None = None,
        seed_mode: str = "stream",
    ):
        if not circuits:
            raise ValueError("CompilationEnv needs at least one training circuit")
        if seed_mode not in ("stream", "state"):
            raise ValueError(f"unknown seed_mode {seed_mode!r} (use 'stream' or 'state')")
        self.circuits = list(circuits)
        self.reward_name = reward
        self._reward_fn = reward_function(reward)
        self.fixed_device = get_device(device_name) if device_name else None
        self.max_steps = max_steps
        self.base_seed = seed
        self.seed_mode = seed_mode
        if analysis_cache is not None:
            self.analysis_cache = analysis_cache
        else:
            self.analysis_cache = AnalysisCache() if use_analysis_cache else None
        self.transform_cache = transform_cache
        self._runner = PassRunner(self.analysis_cache, transform_cache)

        platforms = [self.fixed_device.platform] if self.fixed_device else None
        self.actions: list[Action] = build_action_registry(platforms)
        self.action_space = Discrete(len(self.actions))
        self.observation_space = Box(0.0, 1.0, (len(FEATURE_NAMES),))

        self._episode = 0
        self._rng = np.random.default_rng(seed)
        self._order = np.arange(len(self.circuits))
        self._state: CompilationState | None = None
        self._steps = 0

    # -- gym API -------------------------------------------------------------------

    def reset(self, *, seed: int | None = None) -> tuple[np.ndarray, dict]:
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        index = self._episode % len(self.circuits)
        if index == 0 and len(self.circuits) > 1:
            # New epoch: visit the circuits in a fresh seeded order.
            self._order = self._rng.permutation(len(self.circuits))
        circuit = self.circuits[int(self._order[index])]
        self._episode += 1
        self._steps = 0
        self._state = CompilationState(circuit.copy(), analysis=self.analysis_cache)
        if self.fixed_device is not None:
            self._state.platform = self.fixed_device.platform
            self._state.device = self.fixed_device
        info = {"circuit": circuit.name, "status": self._state.status.value}
        return self._observation(), info

    def step(self, action_index: int) -> tuple[np.ndarray, float, bool, bool, dict]:
        if self._state is None:
            raise RuntimeError("call reset() before step()")
        if not 0 <= action_index < len(self.actions):
            raise ValueError(f"action index {action_index} out of range")
        action = self.actions[action_index]
        state = self._state
        mask = self.action_masks()
        info: dict = {"action": action.name, "status": state.status.value}
        self._steps += 1

        if not mask[action_index]:
            # Invalid action chosen (only possible without masking support):
            # no state change, small negative reward to discourage it.
            info["invalid"] = True
            truncated = self._steps >= self.max_steps
            return self._observation(), -0.01, False, truncated, info

        terminated = False
        reward = 0.0
        applied = True
        if action.kind == ActionKind.TERMINATE:
            terminated = True
            reward = self._final_reward()
            info["final_reward"] = reward
        elif action.kind == ActionKind.PLATFORM:
            state.platform = str(action.payload)
        elif action.kind == ActionKind.DEVICE:
            state.device = get_device(str(action.payload))
        else:
            # Every pass action flows through the shared runner so analysis
            # results declared preserved by the pass migrate to the new
            # circuit's cache entry instead of being recomputed.
            context = PassContext(
                device=state.device,
                seed=self._pass_seed(action, state.circuit),
            )
            try:
                state.circuit = self._runner.apply(action.payload, state.circuit, context)
            except Exception as error:  # noqa: BLE001 - surfaced via info, episode continues
                info["error"] = f"{type(error).__name__}: {error}"
                info["failed_action"] = action.name
                applied = False
        if applied:
            # Only successfully applied passes enter the recorded trace;
            # replaying it must reproduce the episode's actual circuit flow.
            state.applied_actions.append(action.name)

        truncated = not terminated and self._steps >= self.max_steps
        info["status"] = state.status.value
        return self._observation(), reward, terminated, truncated, info

    def action_masks(self) -> np.ndarray:
        state = self._state
        if state is None:
            raise RuntimeError("call reset() before action_masks()")
        status = state.status
        mask = np.zeros(len(self.actions), dtype=bool)
        for action in self.actions:
            mask[action.index] = self._is_valid(action, state, status)
        if not mask.any():
            # Safety net: never present an empty action set.
            mask[:] = True
        return mask

    # -- helpers -------------------------------------------------------------------

    def _pass_seed(self, action: Action, circuit: QuantumCircuit) -> int:
        """Seed for one stochastic pass application.

        ``"stream"`` mode draws from the environment's RNG (the historical
        behaviour); ``"state"`` mode hashes (base seed, circuit fingerprint,
        action name) so the same action on the same circuit state always
        runs with the same seed — in any fleet member, in any process.
        """
        if self.seed_mode == "state":
            digest = hashlib.blake2b(
                f"{self.base_seed}|{circuit.fingerprint()}|{action.name}".encode(),
                digest_size=4,
            ).digest()
            return int.from_bytes(digest, "big") % (2**31 - 1)
        return int(self._rng.integers(0, 2**31 - 1))

    def _active_width(self, circuit: QuantumCircuit) -> int:
        """Number of active qubits (cached; at least 1 for gateless circuits)."""
        if self.analysis_cache is not None:
            active = self.analysis_cache.active_qubits(circuit)
        else:
            active = circuit.active_qubits()
        return len(active) if active else 1

    def _is_valid(self, action: Action, state: CompilationState, status: CompilationStatus) -> bool:
        if action.kind == ActionKind.PLATFORM:
            if status != CompilationStatus.START:
                return False
            # Only offer platforms that have at least one large-enough device.
            from ..devices.library import devices_for_platform

            width = self._active_width(state.circuit)
            return any(d.num_qubits >= width for d in devices_for_platform(str(action.payload)))
        if action.kind == ActionKind.DEVICE:
            if status != CompilationStatus.PLATFORM_CHOSEN:
                return False
            device = get_device(str(action.payload))
            if device.platform != state.platform:
                return False
            return self._active_width(state.circuit) <= device.num_qubits
        if action.kind == ActionKind.SYNTHESIS:
            return status in (CompilationStatus.DEVICE_CHOSEN, CompilationStatus.NATIVE_GATES)
        if action.kind == ActionKind.MAPPING:
            # Mapping needs native (<=2 qubit) gates, exactly as in Fig. 2.
            return status == CompilationStatus.NATIVE_GATES
        if action.kind == ActionKind.OPTIMIZATION:
            return status != CompilationStatus.PLATFORM_CHOSEN
        if action.kind == ActionKind.TERMINATE:
            return status == CompilationStatus.DONE
        return False

    def _observation(self) -> np.ndarray:
        assert self._state is not None
        if self.analysis_cache is not None:
            return self.analysis_cache.feature_vector(self._state.circuit)
        return feature_vector(self._state.circuit)

    def _final_reward(self) -> float:
        state = self._state
        assert state is not None
        if state.device is None or not state.is_done:
            return 0.0
        if self.analysis_cache is not None:
            # Terminal rewards are fingerprint-keyed: episodes that terminate
            # in the same circuit on the same device (common once a policy
            # starts converging) evaluate the reward function once.
            return self.analysis_cache.reward(
                state.circuit, state.device, self.reward_name, self._reward_fn
            )
        return float(self._reward_fn(state.circuit, state.device))

    # -- introspection ---------------------------------------------------------------

    @property
    def state(self) -> CompilationState:
        if self._state is None:
            raise RuntimeError("call reset() first")
        return self._state

    def action_by_name(self, name: str) -> Action:
        for action in self.actions:
            if action.name == name:
                return action
        raise KeyError(f"unknown action {name!r}")
