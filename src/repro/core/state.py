"""Compilation MDP state: circuit + platform/device choice + derived status.

The MDP of the paper (Fig. 2) has five named states; which one the process
is in can always be derived from what has been chosen so far and from two
efficiently checkable constraints on the current circuit:

1. *native gates*: the circuit only contains gates native to the platform;
2. *mapping*: every two-qubit gate respects the device's coupling map.

``CompilationStatus`` enumerates the states; :class:`CompilationState`
bundles the circuit with the choices and computes the status.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device
from ..pipeline.properties import AnalysisCache

__all__ = ["CompilationStatus", "CompilationState"]


class CompilationStatus(Enum):
    """The five states of the compilation MDP (Fig. 2 of the paper)."""

    START = "start"
    PLATFORM_CHOSEN = "platform_chosen"
    DEVICE_CHOSEN = "device_chosen"
    NATIVE_GATES = "only_native_gates"
    DONE = "done"


@dataclass
class CompilationState:
    """Mutable state carried through one compilation episode."""

    circuit: QuantumCircuit
    platform: str | None = None
    device: Device | None = None
    applied_actions: list[str] = field(default_factory=list)
    #: when set, the executability checks behind :attr:`status` are served
    #: from this cache (shared across steps and episodes by the environment)
    analysis: AnalysisCache | None = field(default=None, repr=False, compare=False)

    @property
    def status(self) -> CompilationStatus:
        if self.platform is None:
            return CompilationStatus.START
        if self.device is None:
            return CompilationStatus.PLATFORM_CHOSEN
        if self.analysis is not None:
            native = self.analysis.gates_native(self.circuit, self.device)
            mapped = self.analysis.mapping_satisfied(self.circuit, self.device)
        else:
            native = self.device.gates_native(self.circuit)
            mapped = self.device.mapping_satisfied(self.circuit)
        if native and mapped:
            return CompilationStatus.DONE
        if native:
            return CompilationStatus.NATIVE_GATES
        return CompilationStatus.DEVICE_CHOSEN

    @property
    def is_done(self) -> bool:
        return self.status == CompilationStatus.DONE

    def describe(self) -> str:
        """Human-readable one-line summary of the state."""
        parts = [f"status={self.status.value}"]
        if self.platform:
            parts.append(f"platform={self.platform}")
        if self.device:
            parts.append(f"device={self.device.name}")
        parts.append(self.circuit.summary())
        return ", ".join(parts)
