"""Training helpers: reproduce the paper's three-model training setup.

The paper trains one model per reward function (expected fidelity, critical
depth, combination) on 200 MQT-Bench circuits with 2-20 qubits for 100 000
PPO timesteps each.  :func:`train_all_models` reproduces that setup with
configurable budgets so the full pipeline also runs at laptop/test scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..circuit.circuit import QuantumCircuit
from ..reward.functions import REWARD_FUNCTIONS
from ..rl.ppo import PPOConfig
from .predictor import Predictor

__all__ = ["TrainingConfig", "train_all_models", "train_model"]


@dataclass
class TrainingConfig:
    """Budget and environment settings for model training."""

    total_timesteps: int = 100_000
    max_steps: int = 30
    seed: int = 0
    device_name: str | None = None
    #: rollout-collection fleet size (1 = the classic single-env loop;
    #: >1 trains on a synchronised vectorised fleet, see repro.rl.vecenv)
    n_envs: int = 1
    ppo: PPOConfig = field(default_factory=lambda: PPOConfig(n_steps=128, batch_size=64, n_epochs=6))


def train_model(
    reward: str,
    circuits: list[QuantumCircuit],
    config: TrainingConfig | None = None,
) -> Predictor:
    """Train a single Predictor for the given reward function."""
    config = config or TrainingConfig()
    predictor = Predictor(
        reward=reward,
        device_name=config.device_name,
        max_steps=config.max_steps,
        ppo_config=config.ppo,
        seed=config.seed,
        n_envs=config.n_envs,
    )
    predictor.train(circuits, total_timesteps=config.total_timesteps)
    return predictor


def train_all_models(
    circuits: list[QuantumCircuit],
    config: TrainingConfig | None = None,
    save_dir: str | Path | None = None,
) -> dict[str, Predictor]:
    """Train one model per reward function (fidelity, critical depth, combination)."""
    config = config or TrainingConfig()
    models: dict[str, Predictor] = {}
    for reward in REWARD_FUNCTIONS:
        predictor = train_model(reward, circuits, config)
        models[reward] = predictor
        if save_dir is not None:
            directory = Path(save_dir)
            directory.mkdir(parents=True, exist_ok=True)
            predictor.save(directory / f"model_{reward}.json")
    return models
