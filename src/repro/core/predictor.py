"""High-level Predictor API: train an RL compiler and compile circuits with it.

This is the user-facing entry point of the framework, mirroring the role of
``mqt.predictor`` in the paper's released implementation::

    predictor = Predictor(reward="fidelity")
    predictor.train(total_timesteps=10_000)
    result = predictor.compile(circuit)
    result.circuit      # the compiled, executable circuit
    result.device       # the device the agent selected
    result.reward       # the achieved value of the optimization objective
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from time import perf_counter

import numpy as np

from ..api.result import CompilationResult, score_circuit
from ..circuit.circuit import QuantumCircuit
from ..features.extraction import feature_vector
from ..reward.functions import reward_function
from ..rl.ppo import PPO, PPOConfig, TrainingSummary
from .environment import CompilationEnv
from .state import CompilationState

# CompilationResult used to be defined here; it now lives in repro.api.result
# as the unified result type shared by every compiler backend, and is
# re-exported for backwards compatibility.
__all__ = ["CompilationResult", "Predictor"]


class Predictor:
    """An RL-optimized quantum compiler for a chosen optimization objective."""

    def __init__(
        self,
        reward: str = "fidelity",
        *,
        device_name: str | None = None,
        max_steps: int = 30,
        ppo_config: PPOConfig | None = None,
        seed: int = 0,
        n_envs: int = 1,
    ):
        if n_envs < 1:
            raise ValueError("n_envs must be at least 1")
        self.reward_name = reward
        self.device_name = device_name
        self.max_steps = max_steps
        self.seed = seed
        self.n_envs = n_envs
        self.ppo_config = ppo_config or PPOConfig(n_steps=128, batch_size=64, n_epochs=6)
        self._agent: PPO | None = None
        self._training_circuits: list[QuantumCircuit] | None = None
        self.training_summary: TrainingSummary | None = None

    # -- training -------------------------------------------------------------------

    def train(
        self,
        circuits: list[QuantumCircuit] | None = None,
        total_timesteps: int = 10_000,
        log_callback=None,
    ) -> TrainingSummary:
        """Train the PPO policy on ``circuits`` (default: the MQT-Bench-style suite)."""
        if circuits is None:
            from ..bench.suite import benchmark_suite

            circuits = benchmark_suite(min_qubits=2, max_qubits=8)
        self._training_circuits = list(circuits)
        if self.n_envs > 1:
            # Rollouts come from a synchronised fleet sharing one analysis
            # cache and one transform cache (see repro.rl.vecenv).
            from ..rl.vecenv import make_compilation_vec_env

            env = make_compilation_vec_env(
                self._training_circuits,
                self.n_envs,
                reward=self.reward_name,
                device_name=self.device_name,
                max_steps=self.max_steps,
                seed=self.seed,
            )
        else:
            env = self._make_env(self._training_circuits)
        self._agent = PPO(env, self.ppo_config, seed=self.seed)
        self.training_summary = self._agent.learn(total_timesteps, log_callback=log_callback)
        return self.training_summary

    def _make_env(self, circuits: list[QuantumCircuit]) -> CompilationEnv:
        return CompilationEnv(
            circuits,
            reward=self.reward_name,
            device_name=self.device_name,
            max_steps=self.max_steps,
            seed=self.seed,
        )

    @property
    def is_trained(self) -> bool:
        return self._agent is not None

    # -- inference -------------------------------------------------------------------

    def compile(
        self,
        circuit: QuantumCircuit,
        *,
        deterministic: bool = True,
        max_steps: int | None = None,
        analysis_cache=None,
    ) -> CompilationResult:
        """Compile one circuit by greedily following the learned policy.

        ``analysis_cache``, when given, is the
        :class:`~repro.pipeline.AnalysisCache` the inference episode reads its
        observations and executability checks from — batch callers (see
        :meth:`PredictorBackend.compile_batch <repro.api.backends.PredictorBackend.compile_batch>`)
        pass one pre-warmed instance so repeated circuit states across the
        batch are analysed once.
        """
        if self._agent is None:
            raise RuntimeError("the Predictor must be trained (or loaded) before compiling")
        start = perf_counter()
        env = CompilationEnv(
            [circuit],
            reward=self.reward_name,
            device_name=self.device_name,
            max_steps=max_steps or self.max_steps,
            seed=self.seed,
            analysis_cache=analysis_cache,
        )
        observation, _ = env.reset(seed=self.seed)
        terminated = truncated = False
        reward = 0.0
        while not (terminated or truncated):
            mask = env.action_masks()
            action = self._agent.predict(observation, mask, deterministic=deterministic)
            if not mask[action]:
                valid = np.flatnonzero(mask)
                action = int(valid[0])
            observation, reward, terminated, truncated, _info = env.step(action)
        if not terminated and not env.state.is_done:
            # The policy ran out of steps without finishing the flow; complete it
            # deterministically so that compile() always returns an executable circuit.
            reward = self._complete_compilation(env)
            terminated = env.state.is_done
        elif not terminated and env.state.is_done:
            reward = self._fallback_reward(env.state)
        state: CompilationState = env.state
        succeeded = state.is_done and state.device is not None
        return CompilationResult(
            circuit=state.circuit,
            device=state.device,
            reward=float(reward),
            reward_name=self.reward_name,
            actions=list(state.applied_actions),
            reached_done=state.is_done,
            backend="rl",
            scores=score_circuit(state.circuit, state.device) if succeeded else {},
            wall_time=perf_counter() - start,
            succeeded=succeeded,
            error=None if succeeded else f"policy did not finish compilation ({state.describe()})",
        )

    def evaluate(self, circuit: QuantumCircuit, reward: str | None = None) -> float:
        """Compile ``circuit`` and score it under ``reward`` (default: own objective).

        Returns 0.0 — with a :class:`RuntimeWarning` — when the policy fails to
        produce an executable circuit, so unfinished compilations no longer
        collapse silently into the score distribution.
        """
        result = self.compile(circuit)
        if not result.succeeded:
            warnings.warn(
                f"compilation of {circuit.name!r} did not finish ({result.error}); "
                "scoring it as 0.0",
                RuntimeWarning,
                stacklevel=2,
            )
            return 0.0
        metric = reward_function(reward or self.reward_name)
        return float(metric(result.circuit, result.device))

    def as_backend(self, name: str = "rl"):
        """Wrap this trained predictor as a registrable compiler backend."""
        from ..api.backends import PredictorBackend

        return PredictorBackend(self, name=name)

    def _complete_compilation(self, env: CompilationEnv) -> float:
        """Finish an unfinished episode with a fixed, always-valid action sequence.

        Used as a safety net when the learned policy does not reach the "Done"
        state within the step budget: select a platform/device that fits the
        circuit, synthesise, map with SABRE, and terminate.
        """
        state = env.state
        width = len(state.circuit.active_qubits() or {0})
        if state.platform is None:
            from ..devices.library import devices_for_platform, list_platforms

            for platform in ("ibm", "ionq", "rigetti", "oqc"):
                if platform not in list_platforms():
                    continue
                if any(d.num_qubits >= width for d in devices_for_platform(platform)):
                    state.platform = platform
                    break
        if state.device is None and state.platform is not None:
            from ..devices.library import devices_for_platform

            candidates = [
                d for d in devices_for_platform(state.platform) if d.num_qubits >= width
            ]
            state.device = min(candidates, key=lambda d: d.num_qubits)
        context_actions = [
            "synthesis_basis_translator",
            "map_sabre_layout_sabre_routing",
            "synthesis_basis_translator",
        ]
        from ..passes.base import PassContext

        for name in context_actions:
            if state.is_done:
                break
            action = env.action_by_name(name)
            try:
                state.circuit = action.payload(
                    state.circuit, PassContext(device=state.device, seed=self.seed)
                )
                state.applied_actions.append(name)
            except Exception:  # noqa: BLE001 - fall through, reward stays 0
                break
        return self._fallback_reward(state)

    def _fallback_reward(self, state: CompilationState) -> float:
        if state.device is not None and state.is_done:
            return float(reward_function(self.reward_name)(state.circuit, state.device))
        return 0.0

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the trained policy and predictor settings to ``path`` (JSON)."""
        if self._agent is None:
            raise RuntimeError("nothing to save: the Predictor has not been trained")
        path = Path(path)
        payload = {
            "reward": self.reward_name,
            "device_name": self.device_name,
            "max_steps": self.max_steps,
            "seed": self.seed,
            "policy": self._agent.policy_net.state_dict(),
            "value": self._agent.value_net.state_dict(),
        }
        path.write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "Predictor":
        """Restore a Predictor previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        predictor = cls(
            reward=payload["reward"],
            device_name=payload.get("device_name"),
            max_steps=payload.get("max_steps", 30),
            seed=payload.get("seed", 0),
        )
        placeholder = QuantumCircuit(2, name="placeholder")
        placeholder.h(0)
        placeholder.cx(0, 1)
        env = predictor._make_env([placeholder])
        agent = PPO(env, predictor.ppo_config, seed=predictor.seed)
        agent.policy_net.load_state_dict(payload["policy"])
        agent.value_net.load_state_dict(payload["value"])
        predictor._agent = agent
        return predictor

    # -- introspection ----------------------------------------------------------------

    def policy_feature_importance(self, circuit: QuantumCircuit) -> dict[str, float]:
        """Rough sensitivity of the policy to each observation feature.

        Computes the change in the policy's greedy-action logit when each
        feature is perturbed by +0.05; useful for inspecting what the trained
        model pays attention to.
        """
        if self._agent is None:
            raise RuntimeError("the Predictor must be trained first")
        from ..features.extraction import FEATURE_NAMES

        base = feature_vector(circuit)
        logits = self._agent.policy_net(base)[0]
        top = int(np.argmax(logits))
        importances = {}
        for i, name in enumerate(FEATURE_NAMES):
            perturbed = base.copy()
            perturbed[i] = min(1.0, perturbed[i] + 0.05)
            new_logits = self._agent.policy_net(perturbed)[0]
            importances[name] = float(abs(new_logits[top] - logits[top]))
        return importances
