"""Core of the framework: the compilation MDP, environment, and Predictor API."""

from .actions import Action, ActionKind, build_action_registry
from .environment import CompilationEnv
from .predictor import CompilationResult, Predictor
from .state import CompilationState, CompilationStatus
from .training import TrainingConfig, train_all_models, train_model

__all__ = [
    "Action",
    "ActionKind",
    "build_action_registry",
    "CompilationEnv",
    "CompilationState",
    "CompilationStatus",
    "CompilationResult",
    "Predictor",
    "TrainingConfig",
    "train_all_models",
    "train_model",
]
