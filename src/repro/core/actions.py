"""The action registry of the compilation MDP.

Five kinds of actions are distinguished, exactly as in the paper's Fig. 2:

* **platform selection** — fix the native gate set (IBM / Rigetti / IonQ / OQC);
* **device selection** — fix qubit count and topology (one action per device
  of the chosen platform);
* **synthesis** — translate to the native gate set (Qiskit's BasisTranslator);
* **mapping** — one action per (layout, routing) combination, covering
  Qiskit's Trivial/Dense/Sabre layouts and Basic/Stochastic/Sabre/TKET routers;
* **optimization** — the twelve device-independent/-dependent optimization
  passes from Qiskit and TKET listed in Section IV-A.

Every action exposes the same ``apply(circuit, context) -> circuit``
interface, which is what makes passes from different SDK styles composable
inside one learned compilation flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..circuit.circuit import QuantumCircuit
from ..devices.library import devices_for_platform, list_platforms
from ..passes.base import BasePass, PassContext
from ..passes.layout import DenseLayout, SabreLayout, TrivialLayout
from ..passes.optimization import (
    CliffordSimp,
    Collect2qBlocksConsolidate,
    CommutativeCancellation,
    CommutativeInverseCancellation,
    CXCancellation,
    FullPeepholeOptimise,
    InverseCancellation,
    Optimize1qGatesDecomposition,
    OptimizeCliffords,
    PeepholeOptimise2Q,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveRedundancies,
)
from ..passes.routing import BasicSwap, SabreSwap, StochasticSwap, TketRouting
from ..passes.synthesis import BasisTranslator

__all__ = [
    "Action",
    "ActionKind",
    "build_action_registry",
    "TERMINATE_ACTION_NAME",
]


TERMINATE_ACTION_NAME = "terminate"


class ActionKind:
    """String constants naming the five kinds of MDP actions (plus terminate)."""

    PLATFORM = "platform_selection"
    DEVICE = "device_selection"
    SYNTHESIS = "synthesis"
    MAPPING = "mapping"
    OPTIMIZATION = "optimization"
    TERMINATE = "terminate"


@dataclass(frozen=True)
class Action:
    """One discrete action of the MDP."""

    index: int
    name: str
    kind: str
    origin: str
    #: payload interpreted by the environment: platform name, device name, or
    #: a callable applying the pass(es).
    payload: object

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Action({self.index}, {self.name!r}, kind={self.kind!r})"


def _pass_applier(pass_: BasePass) -> Callable[[QuantumCircuit, PassContext], QuantumCircuit]:
    def apply(circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        return pass_.run(circuit, context)

    return apply


def _mapping_applier(
    layout_cls, routing_cls
) -> Callable[[QuantumCircuit, PassContext], QuantumCircuit]:
    def apply(circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        placed = layout_cls().run(circuit, context)
        return routing_cls(seed=context.seed).run(placed, context)

    return apply


_OPTIMIZATION_PASSES: list[BasePass] = [
    Optimize1qGatesDecomposition(),
    CXCancellation(),
    CommutativeCancellation(),
    CommutativeInverseCancellation(),
    RemoveDiagonalGatesBeforeMeasure(),
    InverseCancellation(),
    OptimizeCliffords(),
    Collect2qBlocksConsolidate(),
    PeepholeOptimise2Q(),
    CliffordSimp(),
    FullPeepholeOptimise(),
    RemoveRedundancies(),
]

_LAYOUTS = [("trivial", TrivialLayout), ("dense", DenseLayout), ("sabre", SabreLayout)]
_ROUTERS = [
    ("basic", BasicSwap),
    ("stochastic", StochasticSwap),
    ("sabre", SabreSwap),
    ("tket", TketRouting),
]


def build_action_registry(
    platforms: list[str] | None = None,
    *,
    include_terminate: bool = True,
) -> list[Action]:
    """Build the full, ordered list of actions of the MDP.

    ``platforms`` restricts platform/device selection actions (default: all
    registered platforms).  The optimization, synthesis and mapping actions
    are always included.
    """
    platforms = list(platforms) if platforms is not None else list_platforms()
    actions: list[Action] = []

    def add(name: str, kind: str, origin: str, payload: object) -> None:
        actions.append(Action(len(actions), name, kind, origin, payload))

    for platform in platforms:
        add(f"select_platform_{platform}", ActionKind.PLATFORM, "repro", platform)
    for platform in platforms:
        for device in devices_for_platform(platform):
            add(f"select_device_{device.name}", ActionKind.DEVICE, "repro", device.name)

    add("synthesis_basis_translator", ActionKind.SYNTHESIS, "qiskit", _pass_applier(BasisTranslator()))

    for layout_name, layout_cls in _LAYOUTS:
        for router_name, router_cls in _ROUTERS:
            add(
                f"map_{layout_name}_layout_{router_name}_routing",
                ActionKind.MAPPING,
                "qiskit" if router_name != "tket" else "tket",
                _mapping_applier(layout_cls, router_cls),
            )

    for pass_ in _OPTIMIZATION_PASSES:
        add(f"optimize_{pass_.name}", ActionKind.OPTIMIZATION, pass_.origin, _pass_applier(pass_))

    if include_terminate:
        add(TERMINATE_ACTION_NAME, ActionKind.TERMINATE, "repro", None)
    return actions
