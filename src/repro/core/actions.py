"""The action registry of the compilation MDP.

Five kinds of actions are distinguished, exactly as in the paper's Fig. 2:

* **platform selection** — fix the native gate set (IBM / Rigetti / IonQ / OQC);
* **device selection** — fix qubit count and topology (one action per device
  of the chosen platform);
* **synthesis** — translate to the native gate set (Qiskit's BasisTranslator);
* **mapping** — one action per (layout, routing) combination, covering
  Qiskit's Trivial/Dense/Sabre layouts and Basic/Stochastic/Sabre/TKET routers;
* **optimization** — the twelve device-independent/-dependent optimization
  passes from Qiskit and TKET listed in Section IV-A.

Every action exposes the same ``apply(circuit, context) -> circuit``
interface, which is what makes passes from different SDK styles composable
inside one learned compilation flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from ..devices.library import devices_for_platform, list_platforms
from ..passes.base import BasePass, PassContext
from ..passes.layout import DenseLayout, SabreLayout, TrivialLayout
from ..passes.optimization import (
    CliffordSimp,
    Collect2qBlocksConsolidate,
    CommutativeCancellation,
    CommutativeInverseCancellation,
    CXCancellation,
    FullPeepholeOptimise,
    InverseCancellation,
    Optimize1qGatesDecomposition,
    OptimizeCliffords,
    PeepholeOptimise2Q,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveRedundancies,
)
from ..passes.routing import BasicSwap, SabreSwap, StochasticSwap, TketRouting
from ..passes.synthesis import BasisTranslator

__all__ = [
    "Action",
    "ActionKind",
    "MappingPass",
    "build_action_registry",
    "TERMINATE_ACTION_NAME",
]


TERMINATE_ACTION_NAME = "terminate"


class ActionKind:
    """String constants naming the five kinds of MDP actions (plus terminate)."""

    PLATFORM = "platform_selection"
    DEVICE = "device_selection"
    SYNTHESIS = "synthesis"
    MAPPING = "mapping"
    OPTIMIZATION = "optimization"
    TERMINATE = "terminate"


@dataclass(frozen=True)
class Action:
    """One discrete action of the MDP."""

    index: int
    name: str
    kind: str
    origin: str
    #: payload interpreted by the environment: platform name, device name, or
    #: the :class:`BasePass` to apply.  Pass payloads are callable
    #: (``payload(circuit, context)``) and expose ``preserves`` so the
    #: environment's pass runner can keep its analysis cache consistent.
    payload: object

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Action({self.index}, {self.name!r}, kind={self.kind!r})"


class MappingPass(BasePass):
    """One mapping action: a layout strategy followed by a routing strategy.

    The router draws its seed from the :class:`PassContext` at run time, so a
    single instance serves every episode of an RL training run.
    """

    requires_device = True

    def __init__(self, layout_cls, routing_cls, name: str, origin: str):
        self.layout_cls = layout_cls
        self.routing_cls = routing_cls
        self.name = name
        self.origin = origin

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        placed = self.layout_cls().run(circuit, context)
        return self.routing_cls(seed=context.seed).run(placed, context)


_OPTIMIZATION_PASSES: list[BasePass] = [
    Optimize1qGatesDecomposition(),
    CXCancellation(),
    CommutativeCancellation(),
    CommutativeInverseCancellation(),
    RemoveDiagonalGatesBeforeMeasure(),
    InverseCancellation(),
    OptimizeCliffords(),
    Collect2qBlocksConsolidate(),
    PeepholeOptimise2Q(),
    CliffordSimp(),
    FullPeepholeOptimise(),
    RemoveRedundancies(),
]

_LAYOUTS = [("trivial", TrivialLayout), ("dense", DenseLayout), ("sabre", SabreLayout)]
_ROUTERS = [
    ("basic", BasicSwap),
    ("stochastic", StochasticSwap),
    ("sabre", SabreSwap),
    ("tket", TketRouting),
]


def build_action_registry(
    platforms: list[str] | None = None,
    *,
    include_terminate: bool = True,
) -> list[Action]:
    """Build the full, ordered list of actions of the MDP.

    ``platforms`` restricts platform/device selection actions (default: all
    registered platforms).  The optimization, synthesis and mapping actions
    are always included.
    """
    platforms = list(platforms) if platforms is not None else list_platforms()
    actions: list[Action] = []

    def add(name: str, kind: str, origin: str, payload: object) -> None:
        actions.append(Action(len(actions), name, kind, origin, payload))

    for platform in platforms:
        add(f"select_platform_{platform}", ActionKind.PLATFORM, "repro", platform)
    for platform in platforms:
        for device in devices_for_platform(platform):
            add(f"select_device_{device.name}", ActionKind.DEVICE, "repro", device.name)

    add("synthesis_basis_translator", ActionKind.SYNTHESIS, "qiskit", BasisTranslator())

    for layout_name, layout_cls in _LAYOUTS:
        for router_name, router_cls in _ROUTERS:
            name = f"map_{layout_name}_layout_{router_name}_routing"
            origin = "qiskit" if router_name != "tket" else "tket"
            add(name, ActionKind.MAPPING, origin, MappingPass(layout_cls, router_cls, name, origin))

    for pass_ in _OPTIMIZATION_PASSES:
        add(f"optimize_{pass_.name}", ActionKind.OPTIMIZATION, pass_.origin, pass_)

    if include_terminate:
        add(TERMINATE_ACTION_NAME, ActionKind.TERMINATE, "repro", None)
    return actions
