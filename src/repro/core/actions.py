"""The action registry of the compilation MDP, derived from the pass registry.

Five kinds of actions are distinguished, exactly as in the paper's Fig. 2:

* **platform selection** — fix the native gate set (IBM / Rigetti / IonQ / OQC);
* **device selection** — fix qubit count and topology (one action per device
  of the chosen platform);
* **synthesis** — one action per registered synthesis pass (Qiskit's
  BasisTranslator in the base instantiation);
* **mapping** — one action per (layout, routing) combination of the
  registered layout and routing passes;
* **optimization** — one action per registered optimization pass (the twelve
  device-independent/-dependent passes of Section IV-A in the base
  instantiation).

The pass-derived actions come straight from the pass registry
(:mod:`repro.passes.registry`): registering a new pass makes it an action
with no change here.  Action *numbering* is protected by a frozen index map
(:data:`FROZEN_ACTION_ORDER`) pinning the base instantiation's ordering —
saved predictor checkpoints keep their action indices, while newly
registered passes append strictly after the existing actions (after
``terminate``).

Every pass action exposes the same ``payload(circuit, context) -> circuit``
interface, which is what makes passes from different SDK styles composable
inside one learned compilation flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from ..devices.library import devices_for_platform, list_platforms
from ..passes import PassRole, pass_catalog, pass_factory, resolve_pass
from ..passes.base import BasePass, PassContext

__all__ = [
    "Action",
    "ActionKind",
    "FROZEN_ACTION_ORDER",
    "MappingPass",
    "build_action_registry",
    "TERMINATE_ACTION_NAME",
]


TERMINATE_ACTION_NAME = "terminate"


class ActionKind:
    """String constants naming the five kinds of MDP actions (plus terminate)."""

    PLATFORM = "platform_selection"
    DEVICE = "device_selection"
    SYNTHESIS = "synthesis"
    MAPPING = "mapping"
    OPTIMIZATION = "optimization"
    TERMINATE = "terminate"


@dataclass(frozen=True)
class Action:
    """One discrete action of the MDP."""

    index: int
    name: str
    kind: str
    origin: str
    #: payload interpreted by the environment: platform name, device name, or
    #: the :class:`BasePass` to apply.  Pass payloads are callable
    #: (``payload(circuit, context)``) and expose ``preserves`` so the
    #: environment's pass runner can keep its analysis cache consistent.
    payload: object

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Action({self.index}, {self.name!r}, kind={self.kind!r})"


class MappingPass(BasePass):
    """One mapping action: a layout strategy followed by a routing strategy.

    The router draws its seed from the :class:`PassContext` at run time, so a
    single instance serves every episode of an RL training run.  Both
    factories come from the pass registry; any registered routing pass must
    therefore accept a ``seed`` keyword.
    """

    requires_device = True

    def __init__(self, layout_cls, routing_cls, name: str, origin: str):
        self.layout_cls = layout_cls
        self.routing_cls = routing_cls
        self.name = name
        self.origin = origin

    def run(self, circuit: QuantumCircuit, context: PassContext) -> QuantumCircuit:
        placed = self.layout_cls().run(circuit, context)
        return self.routing_cls(seed=context.seed).run(placed, context)


def _short_name(registry_name: str) -> str:
    """Strip the role suffix from a registry name for mapping-action labels.

    ``trivial_layout`` → ``trivial``, ``basic_swap`` → ``basic``,
    ``tket_routing`` → ``tket`` — the vocabulary the historical
    ``map_<layout>_layout_<router>_routing`` action names are built from.
    """
    for suffix in ("_layout", "_swap", "_routing"):
        if registry_name.endswith(suffix):
            return registry_name[: -len(suffix)]
    return registry_name


#: The action ordering of the paper's base instantiation, frozen.  Candidate
#: pass actions are stable-sorted by their rank here; names not listed (passes
#: registered after this map was frozen) rank *after* every listed action, so
#: saved predictor checkpoints keep their action numbering and new passes
#: append as new trailing actions.
FROZEN_ACTION_ORDER: tuple[str, ...] = (
    "synthesis_basis_translator",
    # 3 layouts x 4 routers, layout-major, in the registry order of the base set
    "map_trivial_layout_basic_routing",
    "map_trivial_layout_stochastic_routing",
    "map_trivial_layout_sabre_routing",
    "map_trivial_layout_tket_routing",
    "map_dense_layout_basic_routing",
    "map_dense_layout_stochastic_routing",
    "map_dense_layout_sabre_routing",
    "map_dense_layout_tket_routing",
    "map_sabre_layout_basic_routing",
    "map_sabre_layout_stochastic_routing",
    "map_sabre_layout_sabre_routing",
    "map_sabre_layout_tket_routing",
    # the twelve optimization passes of Section IV-A, paper order
    "optimize_optimize_1q_gates",
    "optimize_cx_cancellation",
    "optimize_commutative_cancellation",
    "optimize_commutative_inverse_cancellation",
    "optimize_remove_diagonal_before_measure",
    "optimize_inverse_cancellation",
    "optimize_optimize_cliffords",
    "optimize_consolidate_blocks",
    "optimize_peephole_optimise_2q",
    "optimize_clifford_simp",
    "optimize_full_peephole_optimise",
    "optimize_remove_redundancies",
    TERMINATE_ACTION_NAME,
)

_FROZEN_RANK = {name: rank for rank, name in enumerate(FROZEN_ACTION_ORDER)}


def _pass_action_candidates() -> list[tuple[str, str, str, object]]:
    """Derive (name, kind, origin, payload) candidates from the pass registry."""
    catalog = pass_catalog()  # registration-ordered: deterministic for new passes
    candidates: list[tuple[str, str, str, object]] = []

    for entry in catalog:
        if entry["role"] == PassRole.SYNTHESIS:
            candidates.append(
                (
                    f"synthesis_{entry['name']}",
                    ActionKind.SYNTHESIS,
                    entry["origin"],
                    resolve_pass(entry["name"]),
                )
            )

    layouts = [e for e in catalog if e["role"] == PassRole.LAYOUT]
    routers = [e for e in catalog if e["role"] == PassRole.ROUTING]
    for layout in layouts:
        for router in routers:
            name = f"map_{_short_name(layout['name'])}_layout_{_short_name(router['name'])}_routing"
            origin = router["origin"]
            candidates.append(
                (
                    name,
                    ActionKind.MAPPING,
                    origin,
                    MappingPass(
                        pass_factory(layout["name"]),
                        pass_factory(router["name"]),
                        name,
                        origin,
                    ),
                )
            )

    for entry in catalog:
        if entry["role"] == PassRole.OPTIMIZATION:
            candidates.append(
                (
                    f"optimize_{entry['name']}",
                    ActionKind.OPTIMIZATION,
                    entry["origin"],
                    resolve_pass(entry["name"]),
                )
            )

    return candidates


def build_action_registry(
    platforms: list[str] | None = None,
    *,
    include_terminate: bool = True,
) -> list[Action]:
    """Build the full, ordered list of actions of the MDP.

    ``platforms`` restricts platform/device selection actions (default: all
    registered platforms).  The synthesis, mapping and optimization actions
    are derived from the pass registry and ordered by the frozen index map —
    the base instantiation's actions always keep their indices; passes
    registered beyond it become new trailing actions.
    """
    platforms = list(platforms) if platforms is not None else list_platforms()
    actions: list[Action] = []

    def add(name: str, kind: str, origin: str, payload: object) -> None:
        actions.append(Action(len(actions), name, kind, origin, payload))

    for platform in platforms:
        add(f"select_platform_{platform}", ActionKind.PLATFORM, "repro", platform)
    for platform in platforms:
        for device in devices_for_platform(platform):
            add(f"select_device_{device.name}", ActionKind.DEVICE, "repro", device.name)

    candidates = _pass_action_candidates()
    if include_terminate:
        candidates.append((TERMINATE_ACTION_NAME, ActionKind.TERMINATE, "repro", None))
    unlisted = len(FROZEN_ACTION_ORDER)
    candidates.sort(key=lambda cand: _FROZEN_RANK.get(cand[0], unlisted))

    for name, kind, origin, payload in candidates:
        add(name, kind, origin, payload)
    return actions
