"""Target device models: native gate sets, coupling maps, calibration data."""

from .device import Calibration, CouplingMap, Device, NativeGateSet
from .library import (
    IBM_GATE_SET,
    IONQ_GATE_SET,
    OQC_GATE_SET,
    RIGETTI_GATE_SET,
    devices_for_platform,
    get_device,
    list_devices,
    list_platforms,
    platform_gate_set,
)
from .topologies import (
    all_to_all_map,
    aspen_map,
    grid_map,
    heavy_hex_map,
    ibm_eagle_127_map,
    ibm_falcon_27_map,
    line_map,
    ring_map,
)

__all__ = [
    "Calibration",
    "CouplingMap",
    "Device",
    "NativeGateSet",
    "get_device",
    "list_devices",
    "list_platforms",
    "devices_for_platform",
    "platform_gate_set",
    "IBM_GATE_SET",
    "RIGETTI_GATE_SET",
    "IONQ_GATE_SET",
    "OQC_GATE_SET",
    "line_map",
    "ring_map",
    "grid_map",
    "all_to_all_map",
    "heavy_hex_map",
    "ibm_falcon_27_map",
    "ibm_eagle_127_map",
    "aspen_map",
]
