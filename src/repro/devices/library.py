"""Concrete device definitions and the device registry.

These mirror the devices used in the paper's feasibility study:

* IBM (superconducting): ``ibmq_montreal`` (27 qubits) and
  ``ibmq_washington`` (127 qubits)
* Rigetti (superconducting): ``rigetti_aspen_m2`` (80 qubits)
* IonQ (trapped ions): ``ionq_harmony`` (11 qubits)
* OQC (superconducting): ``oqc_lucy`` (8 qubits)

Topologies follow the published connectivity style and calibration data is
synthetic but deterministic, with error magnitudes chosen to match typical
published values for each platform (see DESIGN.md).
"""

from __future__ import annotations

from functools import lru_cache

from .device import Calibration, Device, NativeGateSet
from .topologies import (
    all_to_all_map,
    aspen_map,
    ibm_eagle_127_map,
    ibm_falcon_27_map,
    ring_map,
)

__all__ = [
    "get_device",
    "list_devices",
    "list_platforms",
    "devices_for_platform",
    "IBM_GATE_SET",
    "RIGETTI_GATE_SET",
    "IONQ_GATE_SET",
    "OQC_GATE_SET",
]

IBM_GATE_SET = NativeGateSet(("rz", "sx", "x"), ("cx",), basis_1q="rz_sx")
RIGETTI_GATE_SET = NativeGateSet(("rx", "rz"), ("cz",), basis_1q="rz_rx")
IONQ_GATE_SET = NativeGateSet(("rx", "ry", "rz"), ("rxx",), basis_1q="rz_ry")
OQC_GATE_SET = NativeGateSet(("rz", "sx", "x"), ("ecr",), basis_1q="rz_sx")

_PLATFORM_GATE_SETS = {
    "ibm": IBM_GATE_SET,
    "rigetti": RIGETTI_GATE_SET,
    "ionq": IONQ_GATE_SET,
    "oqc": OQC_GATE_SET,
}


@lru_cache(maxsize=None)
def _build_devices() -> dict[str, Device]:
    devices: dict[str, Device] = {}

    montreal_map = ibm_falcon_27_map()
    devices["ibmq_montreal"] = Device(
        name="ibmq_montreal",
        platform="ibm",
        num_qubits=montreal_map.num_qubits,
        gate_set=IBM_GATE_SET,
        coupling_map=montreal_map,
        calibration=Calibration.synthetic(
            montreal_map,
            seed=2701,
            single_qubit_error=3e-4,
            two_qubit_error=9e-3,
            readout_error=2e-2,
            t1_us=120.0,
            t2_us=100.0,
        ),
        description="27-qubit IBM Falcon heavy-hex device",
    )

    washington_map = ibm_eagle_127_map()
    devices["ibmq_washington"] = Device(
        name="ibmq_washington",
        platform="ibm",
        num_qubits=washington_map.num_qubits,
        gate_set=IBM_GATE_SET,
        coupling_map=washington_map,
        calibration=Calibration.synthetic(
            washington_map,
            seed=1271,
            single_qubit_error=4e-4,
            two_qubit_error=1.2e-2,
            readout_error=2.5e-2,
            t1_us=100.0,
            t2_us=95.0,
        ),
        description="127-qubit IBM Eagle heavy-hex device",
    )

    aspen = aspen_map(5, 2)
    devices["rigetti_aspen_m2"] = Device(
        name="rigetti_aspen_m2",
        platform="rigetti",
        num_qubits=aspen.num_qubits,
        gate_set=RIGETTI_GATE_SET,
        coupling_map=aspen,
        calibration=Calibration.synthetic(
            aspen,
            seed=802,
            single_qubit_error=1.5e-3,
            two_qubit_error=2.5e-2,
            readout_error=4e-2,
            t1_us=30.0,
            t2_us=25.0,
        ),
        description="80-qubit Rigetti Aspen-M-2 octagonal lattice",
    )

    harmony = all_to_all_map(11)
    devices["ionq_harmony"] = Device(
        name="ionq_harmony",
        platform="ionq",
        num_qubits=harmony.num_qubits,
        gate_set=IONQ_GATE_SET,
        coupling_map=harmony,
        calibration=Calibration.synthetic(
            harmony,
            seed=111,
            single_qubit_error=4e-4,
            two_qubit_error=6e-3,
            readout_error=5e-3,
            t1_us=10_000.0,
            t2_us=1_000.0,
        ),
        description="11-qubit IonQ Harmony trapped-ion device (all-to-all)",
    )

    lucy = ring_map(8)
    devices["oqc_lucy"] = Device(
        name="oqc_lucy",
        platform="oqc",
        num_qubits=lucy.num_qubits,
        gate_set=OQC_GATE_SET,
        coupling_map=lucy,
        calibration=Calibration.synthetic(
            lucy,
            seed=88,
            single_qubit_error=6e-4,
            two_qubit_error=1.8e-2,
            readout_error=3.5e-2,
            t1_us=40.0,
            t2_us=35.0,
        ),
        description="8-qubit OQC Lucy ring device",
    )
    return devices


def get_device(name: str) -> Device:
    """Look up a device by name (raises ``KeyError`` for unknown names)."""
    devices = _build_devices()
    if name not in devices:
        raise KeyError(
            f"unknown device {name!r}; available: {', '.join(sorted(devices))}"
        )
    return devices[name]


def list_devices() -> list[str]:
    """Names of all registered devices."""
    return sorted(_build_devices())


def list_platforms() -> list[str]:
    """Names of all platforms with at least one registered device."""
    return sorted({d.platform for d in _build_devices().values()})


def devices_for_platform(platform: str) -> list[Device]:
    """All devices belonging to ``platform``."""
    matches = [d for d in _build_devices().values() if d.platform == platform]
    if not matches:
        raise KeyError(f"unknown platform {platform!r}")
    return sorted(matches, key=lambda d: d.name)


def platform_gate_set(platform: str) -> NativeGateSet:
    """The native gate set associated with ``platform``."""
    if platform not in _PLATFORM_GATE_SETS:
        raise KeyError(f"unknown platform {platform!r}")
    return _PLATFORM_GATE_SETS[platform]
